"""In-memory vectorised columnar execution substrate.

This package is the stand-in for the Shark/Spark layer the paper runs on:
a column store (:mod:`repro.engine.table`), vectorised expression
evaluation over SQL ASTs (:mod:`repro.engine.evaluator`), and weighted
aggregate functions with both single-weight-vector and weight-matrix fast
paths (:mod:`repro.engine.aggregates`).
"""

from repro.engine.table import Table, concat_tables
from repro.engine.aggregates import (
    AggregateFunction,
    aggregate_registry,
    get_aggregate,
)

__all__ = [
    "Table",
    "concat_tables",
    "AggregateFunction",
    "aggregate_registry",
    "get_aggregate",
]
