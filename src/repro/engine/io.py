"""CSV import/export for tables.

Keeps downstream users from needing pandas: a small, dependency-free
loader with dtype inference (int → float → string, per column) and a
writer that round-trips what the loader produces.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.engine.table import Table
from repro.errors import SchemaError


def _infer_column(raw: list[str]) -> np.ndarray:
    """Infer int64 → float64 → unicode for one column of strings."""
    try:
        return np.array([int(cell) for cell in raw], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array(
            [float(cell) if cell != "" else np.nan for cell in raw],
            dtype=np.float64,
        )
    except ValueError:
        pass
    return np.array(raw)


def load_csv(
    path: str | Path,
    name: str | None = None,
    delimiter: str = ",",
) -> Table:
    """Load a CSV file with a header row into a :class:`Table`.

    Args:
        path: file to read.
        name: table name; defaults to the file stem.
        delimiter: field separator.

    Raises:
        SchemaError: on an empty file, missing header, or ragged rows.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty") from None
        if not header or any(not column.strip() for column in header):
            raise SchemaError(f"{path} has a missing or blank header")
        columns: list[list[str]] = [[] for __ in header]
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue  # blank line
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{line_number}: expected {len(header)} fields, "
                    f"got {len(row)}"
                )
            for cell, column in zip(row, columns):
                column.append(cell)
    if not columns[0]:
        raise SchemaError(f"{path} has a header but no data rows")
    data = {
        column_name.strip(): _infer_column(raw)
        for column_name, raw in zip(header, columns)
    }
    return Table(data, name=name or path.stem)


def save_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write a table to CSV with a header row."""
    path = Path(path)
    names = table.column_names
    columns = [table.column(column_name) for column_name in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for i in range(table.num_rows):
            writer.writerow([column[i] for column in columns])
