"""Vectorised evaluation of SQL expressions over a columnar table.

:func:`evaluate` maps an AST expression to a NumPy array with one entry
per table row.  Comparison and logical operators produce boolean arrays,
making WHERE-clause evaluation a single call.  Scalar functions and UDFs
resolve through a :class:`~repro.sql.functions.FunctionRegistry`.
"""

from __future__ import annotations

import re

import numpy as np

from repro.engine.table import Table
from repro.errors import ExecutionError
from repro.sql import ast
from repro.sql.functions import FunctionRegistry, default_function_registry


def _broadcast(value: object, num_rows: int) -> np.ndarray:
    """Broadcast a scalar literal to a full column."""
    return np.full(num_rows, value)


_ARITHMETIC_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "%": np.mod,
}

_COMPARISON_OPS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regular expression."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$")


class ExpressionEvaluator:
    """Evaluates expressions against a table with a fixed function registry."""

    def __init__(self, registry: FunctionRegistry | None = None):
        self._registry = registry or default_function_registry()

    def evaluate(self, expr: ast.Expression, table: Table) -> np.ndarray:
        """Evaluate ``expr`` over ``table``, returning one value per row."""
        method = getattr(
            self, f"_eval_{type(expr).__name__.lower()}", None
        )
        if method is None:
            raise ExecutionError(
                f"cannot evaluate expression node {type(expr).__name__}"
            )
        return method(expr, table)

    # -- leaf nodes ----------------------------------------------------------
    def _eval_literal(self, expr: ast.Literal, table: Table) -> np.ndarray:
        if expr.value is None:
            return np.full(table.num_rows, np.nan)
        return _broadcast(expr.value, table.num_rows)

    def _eval_columnref(self, expr: ast.ColumnRef, table: Table) -> np.ndarray:
        return table.column(expr.name)

    def _eval_star(self, expr: ast.Star, table: Table) -> np.ndarray:
        # COUNT(*) counts row existence; represent it as a column of ones.
        return np.ones(table.num_rows, dtype=np.float64)

    # -- operators -------------------------------------------------------------
    def _eval_unaryop(self, expr: ast.UnaryOp, table: Table) -> np.ndarray:
        operand = self.evaluate(expr.operand, table)
        if expr.op == "-":
            return np.negative(operand)
        if expr.op.upper() == "NOT":
            return ~operand.astype(bool)
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _eval_binaryop(self, expr: ast.BinaryOp, table: Table) -> np.ndarray:
        op = expr.op.upper()
        left = self.evaluate(expr.left, table)
        if op == "AND":
            # No short-circuiting is needed: both sides are total functions.
            right = self.evaluate(expr.right, table)
            return left.astype(bool) & right.astype(bool)
        if op == "OR":
            right = self.evaluate(expr.right, table)
            return left.astype(bool) | right.astype(bool)
        right = self.evaluate(expr.right, table)
        if op in _ARITHMETIC_OPS:
            return _ARITHMETIC_OPS[op](left, right)
        if op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.true_divide(left, right)
        if op in _COMPARISON_OPS:
            return _COMPARISON_OPS[op](left, right)
        raise ExecutionError(f"unknown binary operator {expr.op!r}")

    def _eval_inlist(self, expr: ast.InList, table: Table) -> np.ndarray:
        operand = self.evaluate(expr.operand, table)
        result = np.zeros(len(operand), dtype=bool)
        for item in expr.items:
            if not isinstance(item, ast.Literal):
                raise ExecutionError("IN list items must be literals")
            result |= operand == item.value
        return ~result if expr.negated else result

    def _eval_between(self, expr: ast.Between, table: Table) -> np.ndarray:
        operand = self.evaluate(expr.operand, table)
        low = self.evaluate(expr.low, table)
        high = self.evaluate(expr.high, table)
        result = (operand >= low) & (operand <= high)
        return ~result if expr.negated else result

    def _eval_isnull(self, expr: ast.IsNull, table: Table) -> np.ndarray:
        operand = self.evaluate(expr.operand, table)
        if operand.dtype.kind == "f":
            result = np.isnan(operand)
        else:
            result = np.zeros(len(operand), dtype=bool)
        return ~result if expr.negated else result

    def _eval_like(self, expr: ast.Like, table: Table) -> np.ndarray:
        operand = self.evaluate(expr.operand, table)
        regex = _like_to_regex(expr.pattern)
        matcher = np.vectorize(lambda s: regex.match(str(s)) is not None, otypes=[bool])
        result = matcher(operand)
        return ~result if expr.negated else result

    def _eval_casewhen(self, expr: ast.CaseWhen, table: Table) -> np.ndarray:
        if expr.default is not None:
            result = self.evaluate(expr.default, table).astype(np.float64)
        else:
            result = np.full(table.num_rows, np.nan)
        # Apply branches in reverse so that the first matching WHEN wins.
        for condition, value in reversed(expr.branches):
            mask = self.evaluate(condition, table).astype(bool)
            branch_value = self.evaluate(value, table)
            result = np.where(mask, branch_value, result)
        return result

    def _eval_functioncall(self, expr: ast.FunctionCall, table: Table) -> np.ndarray:
        if self._registry.is_aggregate(expr.name):
            raise ExecutionError(
                f"aggregate {expr.name} cannot be evaluated row-wise; "
                "aggregates are handled by the plan's aggregate operator"
            )
        implementation = self._registry.scalar_implementation(expr.name)
        args = [self.evaluate(arg, table) for arg in expr.args]
        try:
            return np.asarray(implementation(*args))
        except Exception as exc:  # surface UDF failures with context
            raise ExecutionError(
                f"scalar function {expr.name} failed: {exc}"
            ) from exc


def evaluate(
    expr: ast.Expression,
    table: Table,
    registry: FunctionRegistry | None = None,
) -> np.ndarray:
    """Evaluate ``expr`` over ``table`` (convenience wrapper)."""
    return ExpressionEvaluator(registry).evaluate(expr, table)


def evaluate_predicate(
    expr: ast.Expression,
    table: Table,
    registry: FunctionRegistry | None = None,
) -> np.ndarray:
    """Evaluate a WHERE/HAVING predicate to a boolean mask."""
    result = evaluate(expr, table, registry)
    if result.dtype != np.bool_:
        result = result.astype(bool)
    return result
