"""Aggregate functions that operate on weighted tuples.

The paper's scan-consolidation optimisation (§5.3.1) requires "modifying
all pre-existing aggregate functions to directly operate on weighted
data".  Every aggregate here therefore supports three evaluation modes:

* ``compute(values)`` — the plain, unweighted statistic;
* ``compute(values, weights)`` — the statistic over a single Poissonized
  resample described by an integer weight per row;
* ``compute_resamples(values, weight_matrix)`` — the statistic over *K*
  resamples at once, where ``weight_matrix`` has shape ``(n, K)``.  This is
  the vectorised fast path that lets one scan serve all bootstrap and
  diagnostic subqueries.

Aggregates also expose a *partial aggregation* protocol
(:meth:`AggregateFunction.make_state` / :meth:`merge_states` /
:meth:`finalize_state`) so that the executor can aggregate each partition
independently and merge, mirroring distributed execution.  Distributive
and algebraic aggregates (COUNT, SUM, AVG, VARIANCE, STDEV, MIN, MAX)
carry O(1) state; holistic ones (PERCENTILE, COUNT DISTINCT, black-box
UDAFs) carry their inputs.

Closed-form (CLT) standard errors (§2.3.2) are provided by
:meth:`AggregateFunction.closed_form_std_error` for the aggregates the
paper lists as closed-form-capable: COUNT, SUM, AVG, VARIANCE and STDEV.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.errors import EstimationError, SamplingError


def _validate_weighted_inputs(
    values: np.ndarray, weights: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray | None]:
    values = np.asarray(values)
    if values.ndim != 1:
        raise SamplingError(
            f"aggregate input must be one-dimensional, got shape {values.shape}"
        )
    if weights is not None:
        weights = np.asarray(weights)
        if weights.shape != values.shape:
            raise SamplingError(
                f"weights shape {weights.shape} does not match values shape "
                f"{values.shape}"
            )
    return values, weights


def _validate_matrix(values: np.ndarray, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != values.shape[0]:
        raise SamplingError(
            f"weight matrix shape {matrix.shape} does not match "
            f"{values.shape[0]} values"
        )
    return values, matrix


def weighted_quantile(
    values: np.ndarray,
    weights: np.ndarray,
    fraction: float,
) -> float:
    """Quantile of ``values`` where each value occurs ``weights`` times.

    Uses the inverted-CDF rule: the smallest value whose cumulative weight
    reaches ``fraction`` of the total.  Equivalent to
    ``np.quantile(np.repeat(values, weights), fraction, method="inverted_cdf")``
    without materialising the expansion.
    """
    if not 0.0 <= fraction <= 1.0:
        raise SamplingError(f"quantile fraction must be in [0, 1], got {fraction}")
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1] if len(cumulative) else 0
    if total <= 0:
        return float("nan")
    # Clamp the target above zero so fraction = 0 lands on the smallest
    # value with positive weight, not on a zero-weight row.
    target = max(fraction * total, np.finfo(np.float64).tiny)
    index = int(np.searchsorted(cumulative, target, side="left"))
    index = min(index, len(sorted_values) - 1)
    return float(sorted_values[index])


class AggregateFunction(abc.ABC):
    """Base class for weighted aggregate functions.

    Attributes:
        name: SQL-visible function name (upper case).
        closed_form_capable: whether a CLT closed-form standard error is
            known for this aggregate (§2.3.2).
        outlier_sensitive: whether the statistic is dominated by rare
            extreme values, the paper's first failure condition for the
            bootstrap (§2.3.1).
        needs_argument: False only for COUNT(*), which aggregates row
            existence rather than a column expression.
    """

    name: str = ""
    closed_form_capable: bool = False
    outlier_sensitive: bool = False
    needs_argument: bool = True

    # -- single evaluation ------------------------------------------------
    @abc.abstractmethod
    def compute(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> float:
        """Evaluate the aggregate over (optionally weighted) values."""

    # -- vectorised resample evaluation -----------------------------------
    @abc.abstractmethod
    def compute_resamples(
        self, values: np.ndarray, weight_matrix: np.ndarray
    ) -> np.ndarray:
        """Evaluate the aggregate on K resamples described by weight columns.

        Args:
            values: array of shape ``(n,)``.
            weight_matrix: array of shape ``(n, K)`` of non-negative
                resampling weights (typically Poisson(1) draws).

        Returns:
            Array of shape ``(K,)`` with one statistic per resample.
        """

    # -- partial aggregation protocol --------------------------------------
    @abc.abstractmethod
    def make_state(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> tuple:
        """Aggregate one partition into a mergeable partial state."""

    @abc.abstractmethod
    def merge_states(self, left: tuple, right: tuple) -> tuple:
        """Merge two partial states."""

    @abc.abstractmethod
    def finalize_state(self, state: tuple) -> float:
        """Turn a merged partial state into the final statistic."""

    # -- closed forms -------------------------------------------------------
    def closed_form_std_error(
        self, values: np.ndarray, total_sample_rows: int | None = None
    ) -> float:
        """CLT estimate of the standard error of this statistic.

        Args:
            values: the aggregate's input values *after* any filters.
            total_sample_rows: the sample size before filtering; required
                by SUM and COUNT, whose randomness includes how many rows
                matched the filter.

        Raises:
            EstimationError: if this aggregate has no known closed form.
        """
        raise EstimationError(
            f"no closed-form standard error is known for {self.name}"
        )

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


def _weight_sums(values: np.ndarray, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return per-resample (Σw, Σw·v) for a weight matrix."""
    weight_totals = matrix.sum(axis=0, dtype=np.float64)
    weighted_value_totals = values.astype(np.float64) @ matrix.astype(np.float64)
    return weight_totals, weighted_value_totals


class CountAggregate(AggregateFunction):
    """COUNT(*) or COUNT(expr): number of (weighted) rows.

    The sample statistic is the matched-row count within the sample; the
    pipeline scales it by ``|D| / |S|`` to estimate the full-data count.
    """

    name = "COUNT"
    closed_form_capable = True
    needs_argument = False

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return float(len(values))
        return float(weights.sum())

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        return weight_matrix.sum(axis=0, dtype=np.float64)

    def make_state(self, values, weights=None):
        return (self.compute(values, weights),)

    def merge_states(self, left, right):
        return (left[0] + right[0],)

    def finalize_state(self, state):
        return float(state[0])

    def closed_form_std_error(self, values, total_sample_rows=None):
        if total_sample_rows is None:
            raise EstimationError(
                "COUNT closed form requires the pre-filter sample size"
            )
        n = int(total_sample_rows)
        if n <= 0:
            raise EstimationError("sample must be non-empty")
        matched_fraction = len(values) / n
        return float(np.sqrt(n * matched_fraction * (1.0 - matched_fraction)))


class SumAggregate(AggregateFunction):
    """SUM(expr) over the (weighted) matched rows of the sample."""

    name = "SUM"
    closed_form_capable = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return float(values.sum(dtype=np.float64))
        return float((values * weights).sum(dtype=np.float64))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        __, weighted_totals = _weight_sums(values, weight_matrix)
        return weighted_totals

    def make_state(self, values, weights=None):
        return (self.compute(values, weights),)

    def merge_states(self, left, right):
        return (left[0] + right[0],)

    def finalize_state(self, state):
        return float(state[0])

    def closed_form_std_error(self, values, total_sample_rows=None):
        if total_sample_rows is None:
            raise EstimationError(
                "SUM closed form requires the pre-filter sample size"
            )
        n = int(total_sample_rows)
        if n <= 0:
            raise EstimationError("sample must be non-empty")
        # Model the sample sum as the sum over all n sample rows of
        # y_i = value_i * matched_i; rows that failed the filter contribute
        # zero.  Var(sum) = n * Var(y).
        values = np.asarray(values, dtype=np.float64)
        mean_y = values.sum() / n
        mean_y2 = (values * values).sum() / n
        variance_y = max(mean_y2 - mean_y * mean_y, 0.0)
        return float(np.sqrt(n * variance_y))


class AvgAggregate(AggregateFunction):
    """AVG(expr) over the (weighted) matched rows."""

    name = "AVG"
    closed_form_capable = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if len(values) == 0:
            return float("nan")
        if weights is None:
            return float(values.mean(dtype=np.float64))
        total_weight = weights.sum()
        if total_weight <= 0:
            return float("nan")
        return float((values * weights).sum(dtype=np.float64) / total_weight)

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        weight_totals, weighted_totals = _weight_sums(values, weight_matrix)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                weight_totals > 0, weighted_totals / weight_totals, np.nan
            )

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return (float(len(values)), float(values.sum(dtype=np.float64)))
        return (
            float(weights.sum(dtype=np.float64)),
            float((values * weights).sum(dtype=np.float64)),
        )

    def merge_states(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finalize_state(self, state):
        weight_total, value_total = state
        return float(value_total / weight_total) if weight_total > 0 else float("nan")

    def closed_form_std_error(self, values, total_sample_rows=None):
        values = np.asarray(values, dtype=np.float64)
        n = len(values)
        if n < 2:
            raise EstimationError("AVG closed form requires at least two rows")
        return float(np.sqrt(values.var(ddof=1) / n))


def _central_moments(values: np.ndarray) -> tuple[float, float, float]:
    """Return (mean, m2, m4): mean and 2nd/4th central moments."""
    values = np.asarray(values, dtype=np.float64)
    mean = values.mean()
    deviations = values - mean
    m2 = float(np.mean(deviations**2))
    m4 = float(np.mean(deviations**4))
    return float(mean), m2, m4


class VarianceAggregate(AggregateFunction):
    """VARIANCE(expr): unbiased sample variance of the matched rows."""

    name = "VARIANCE"
    closed_form_capable = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            if len(values) < 2:
                return float("nan")
            return float(values.var(ddof=1))
        total_weight = weights.sum(dtype=np.float64)
        if total_weight <= 1:
            return float("nan")
        mean = (values * weights).sum(dtype=np.float64) / total_weight
        second_moment = (weights * (values - mean) ** 2).sum(dtype=np.float64)
        return float(second_moment / (total_weight - 1.0))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        values64 = values.astype(np.float64)
        matrix64 = weight_matrix.astype(np.float64)
        weight_totals = matrix64.sum(axis=0)
        weighted_totals = values64 @ matrix64
        weighted_squares = (values64 * values64) @ matrix64
        with np.errstate(divide="ignore", invalid="ignore"):
            means = np.where(weight_totals > 0, weighted_totals / weight_totals, np.nan)
            # The raw-moment form can go slightly negative from floating
            # cancellation on near-constant data; clamp at zero.
            sum_sq_dev = np.maximum(
                weighted_squares - weight_totals * means * means, 0.0
            )
            return np.where(
                weight_totals > 1, sum_sq_dev / (weight_totals - 1.0), np.nan
            )

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        values64 = values.astype(np.float64)
        if weights is None:
            return (
                float(len(values)),
                float(values64.sum()),
                float((values64 * values64).sum()),
            )
        weights64 = weights.astype(np.float64)
        return (
            float(weights64.sum()),
            float((values64 * weights64).sum()),
            float((values64 * values64 * weights64).sum()),
        )

    def merge_states(self, left, right):
        return tuple(a + b for a, b in zip(left, right))

    def finalize_state(self, state):
        weight_total, value_total, square_total = state
        if weight_total <= 1:
            return float("nan")
        mean = value_total / weight_total
        # Clamp: cancellation in the raw-moment form can dip below zero.
        sum_sq_dev = max(square_total - weight_total * mean * mean, 0.0)
        return float(sum_sq_dev / (weight_total - 1.0))

    def closed_form_std_error(self, values, total_sample_rows=None):
        n = len(values)
        if n < 2:
            raise EstimationError("VARIANCE closed form requires at least two rows")
        __, m2, m4 = _central_moments(values)
        # CLT for the sample variance: Var(s^2) ≈ (m4 - m2^2) / n.
        return float(np.sqrt(max(m4 - m2 * m2, 0.0) / n))


class StdevAggregate(VarianceAggregate):
    """STDEV(expr): square root of the unbiased sample variance."""

    name = "STDEV"
    closed_form_capable = True

    def compute(self, values, weights=None):
        variance = super().compute(values, weights)
        return float(np.sqrt(variance)) if variance == variance else float("nan")

    def compute_resamples(self, values, weight_matrix):
        return np.sqrt(super().compute_resamples(values, weight_matrix))

    def finalize_state(self, state):
        variance = super().finalize_state(state)
        return float(np.sqrt(variance)) if variance == variance else float("nan")

    def closed_form_std_error(self, values, total_sample_rows=None):
        n = len(values)
        if n < 2:
            raise EstimationError("STDEV closed form requires at least two rows")
        __, m2, m4 = _central_moments(values)
        if m2 <= 0:
            raise EstimationError("STDEV closed form requires non-degenerate data")
        # Delta method on sqrt: Var(s) ≈ Var(s^2) / (4 m2).
        return float(np.sqrt(max(m4 - m2 * m2, 0.0) / n / (4.0 * m2)))


class _ExtremeAggregate(AggregateFunction):
    """Shared implementation for MIN and MAX."""

    outlier_sensitive = True
    _reducer: Callable[..., np.ndarray]
    _fill: float

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is not None:
            values = values[weights > 0]
        if len(values) == 0:
            return float("nan")
        return float(self._reducer(values))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        present = weight_matrix > 0
        masked = np.where(present, values[:, None].astype(np.float64), self._fill)
        result = self._reducer(masked, axis=0)
        empty = ~present.any(axis=0)
        if empty.any():
            result = np.where(empty, np.nan, result)
        return result

    def make_state(self, values, weights=None):
        return (self.compute(values, weights),)

    def merge_states(self, left, right):
        candidates = [x for x in (left[0], right[0]) if x == x]  # drop NaNs
        if not candidates:
            return (float("nan"),)
        return (float(self._reducer(np.asarray(candidates))),)

    def finalize_state(self, state):
        return float(state[0])


class MinAggregate(_ExtremeAggregate):
    """MIN(expr): bootstrap-hostile, the paper's canonical failure case."""

    name = "MIN"
    _reducer = staticmethod(np.min)
    _fill = float("inf")


class MaxAggregate(_ExtremeAggregate):
    """MAX(expr): bootstrap-hostile, the paper's canonical failure case."""

    name = "MAX"
    _reducer = staticmethod(np.max)
    _fill = float("-inf")


class PercentileAggregate(AggregateFunction):
    """PERCENTILE(expr, fraction): a holistic quantile aggregate.

    Conviva's workload leans on percentiles (§3); they have no simple
    closed form, so the pipeline estimates their error via the bootstrap.
    """

    name = "PERCENTILE"

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise SamplingError(
                f"percentile fraction must be in [0, 1], got {fraction}"
            )
        self.fraction = float(fraction)

    @property
    def outlier_sensitive(self) -> bool:  # type: ignore[override]
        # Extreme quantiles behave like MIN/MAX; central ones are benign.
        return self.fraction < 0.05 or self.fraction > 0.95

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if len(values) == 0:
            return float("nan")
        if weights is None:
            # Same inverted-CDF rule as the weighted path so that unit
            # weights and no weights agree exactly.
            return float(
                np.quantile(values, self.fraction, method="inverted_cdf")
            )
        return weighted_quantile(values, weights, self.fraction)

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        cumulative = np.cumsum(weight_matrix[order], axis=0, dtype=np.float64)
        totals = cumulative[-1] if len(cumulative) else np.zeros(weight_matrix.shape[1])
        results = np.empty(weight_matrix.shape[1], dtype=np.float64)
        for k in range(weight_matrix.shape[1]):
            if totals[k] <= 0:
                results[k] = np.nan
                continue
            target = self.fraction * totals[k]
            index = int(np.searchsorted(cumulative[:, k], target, side="left"))
            results[k] = sorted_values[min(index, len(sorted_values) - 1)]
        return results

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            weights = np.ones(len(values), dtype=np.float64)
        return (np.asarray(values, dtype=np.float64), np.asarray(weights, dtype=np.float64))

    def merge_states(self, left, right):
        return (
            np.concatenate([left[0], right[0]]),
            np.concatenate([left[1], right[1]]),
        )

    def finalize_state(self, state):
        values, weights = state
        if len(values) == 0:
            return float("nan")
        return weighted_quantile(values, weights, self.fraction)

    def __repr__(self) -> str:
        return f"<aggregate PERCENTILE({self.fraction})>"


class CountDistinctAggregate(AggregateFunction):
    """COUNT(DISTINCT expr): a holistic, bootstrap-hostile aggregate.

    Distinct counts on a sample systematically miss rare values; both the
    plug-in estimate and bootstrap error bars are unreliable, which makes
    this a productive test case for the diagnostic.
    """

    name = "COUNT_DISTINCT"
    outlier_sensitive = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is not None:
            values = values[weights > 0]
        return float(len(np.unique(values)))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        present = weight_matrix > 0
        results = np.empty(weight_matrix.shape[1], dtype=np.float64)
        for k in range(weight_matrix.shape[1]):
            results[k] = len(np.unique(values[present[:, k]]))
        return results

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is not None:
            values = values[weights > 0]
        return (np.unique(values),)

    def merge_states(self, left, right):
        return (np.unique(np.concatenate([left[0], right[0]])),)

    def finalize_state(self, state):
        return float(len(state[0]))


class UserDefinedAggregate(AggregateFunction):
    """A black-box user-defined aggregate over a value array.

    UDAFs are 11 % of the Facebook workload and 42 % of Conviva's (§3);
    they have no closed form, so the bootstrap (plus the diagnostic) is
    the only path to error bars.  Weighted evaluation expands weights into
    row repetition, which is exactly the semantics of a with-replacement
    resample.

    Args:
        name: SQL-visible function name.
        fn: callable mapping a 1-D value array to a float.
        weighted_fn: optional fast path mapping ``(values, weights)`` to a
            float; used when provided instead of materialising repeats.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray], float],
        weighted_fn: Callable[[np.ndarray, np.ndarray], float] | None = None,
        outlier_sensitive: bool = False,
    ):
        self.name = name.upper()
        self._fn = fn
        self._weighted_fn = weighted_fn
        self.outlier_sensitive = outlier_sensitive

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return float(self._fn(values))
        if self._weighted_fn is not None:
            return float(self._weighted_fn(values, weights))
        expanded = np.repeat(values, weights.astype(np.int64))
        return float(self._fn(expanded))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        results = np.empty(weight_matrix.shape[1], dtype=np.float64)
        for k in range(weight_matrix.shape[1]):
            results[k] = self.compute(values, weight_matrix[:, k])
        return results

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            weights = np.ones(len(values), dtype=np.float64)
        return (np.asarray(values, dtype=np.float64), np.asarray(weights, dtype=np.float64))

    def merge_states(self, left, right):
        return (
            np.concatenate([left[0], right[0]]),
            np.concatenate([left[1], right[1]]),
        )

    def finalize_state(self, state):
        return self.compute(state[0], state[1])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def _builtin_factories() -> dict[str, Callable[..., AggregateFunction]]:
    return {
        "COUNT": CountAggregate,
        "SUM": SumAggregate,
        "AVG": AvgAggregate,
        "MEAN": AvgAggregate,
        "VARIANCE": VarianceAggregate,
        "VAR": VarianceAggregate,
        "STDEV": StdevAggregate,
        "STDDEV": StdevAggregate,
        "MIN": MinAggregate,
        "MAX": MaxAggregate,
        "PERCENTILE": PercentileAggregate,
        "MEDIAN": lambda: PercentileAggregate(0.5),
        "COUNT_DISTINCT": CountDistinctAggregate,
    }


aggregate_registry: dict[str, Callable[..., AggregateFunction]] = _builtin_factories()


def get_aggregate(name: str, *args: Any) -> AggregateFunction:
    """Instantiate an aggregate function by SQL name.

    Args:
        name: case-insensitive function name, e.g. ``"avg"``.
        *args: constructor arguments (e.g. the percentile fraction).

    Raises:
        EstimationError: if the name is not registered.
    """
    factory = aggregate_registry.get(name.upper())
    if factory is None:
        raise EstimationError(f"unknown aggregate function {name!r}")
    return factory(*args)


def register_aggregate(
    name: str, factory: Callable[..., AggregateFunction]
) -> None:
    """Register a custom aggregate factory under ``name`` (upper-cased)."""
    aggregate_registry[name.upper()] = factory
