"""Aggregate functions that operate on weighted tuples.

The paper's scan-consolidation optimisation (§5.3.1) requires "modifying
all pre-existing aggregate functions to directly operate on weighted
data".  Every aggregate here therefore supports three evaluation modes:

* ``compute(values)`` — the plain, unweighted statistic;
* ``compute(values, weights)`` — the statistic over a single Poissonized
  resample described by an integer weight per row;
* ``compute_resamples(values, weight_matrix)`` — the statistic over *K*
  resamples at once, where ``weight_matrix`` has shape ``(n, K)``.  This is
  the vectorised fast path that lets one scan serve all bootstrap and
  diagnostic subqueries.

Aggregates also expose a *partial aggregation* protocol
(:meth:`AggregateFunction.make_state` / :meth:`merge_states` /
:meth:`finalize_state`) so that the executor can aggregate each partition
independently and merge, mirroring distributed execution.  Distributive
and algebraic aggregates (COUNT, SUM, AVG, VARIANCE, STDEV, MIN, MAX)
carry O(1) state; holistic ones (PERCENTILE, COUNT DISTINCT, black-box
UDAFs) carry their inputs.

Closed-form (CLT) standard errors (§2.3.2) are provided by
:meth:`AggregateFunction.closed_form_std_error` for the aggregates the
paper lists as closed-form-capable: COUNT, SUM, AVG, VARIANCE and STDEV.

GROUP BY execution adds a fourth mode (the §5.3.1 consolidation applied
*across groups*): :meth:`AggregateFunction.compute_grouped` and
:meth:`AggregateFunction.compute_grouped_resamples` evaluate every group
of a factorised :class:`GroupIndex` in one pass.  Decomposable
aggregates (COUNT, SUM, AVG, VARIANCE, STDEV, MIN, MAX) override them
with segmented reductions — sort once by group id, then
``ufunc.reduceat`` over contiguous segments — so the cost is
O(n log n + n·K) regardless of the number of groups.  Non-decomposable
(holistic) aggregates — PERCENTILE, COUNT DISTINCT, black-box UDAFs —
fall back to the base implementation: the same single sort, then one
:meth:`compute_resamples` call per contiguous group segment.  The
fallback still avoids the O(n·G) per-group masking of the naive path
and, because the sort is stable, each segment holds exactly the rows a
per-group boolean mask would select, in the same order — so fallback
results are bit-identical to per-group evaluation.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import EstimationError, SamplingError


@dataclass(frozen=True)
class GroupIndex:
    """Factorised group structure shared by every segmented reduction.

    Built once per (query, spec) from integer group ids; every grouped
    aggregate call then reuses the same stable sort.

    Attributes:
        group_ids: ``(n,)`` integer ids in ``[0, num_groups)``.
        num_groups: total number of groups ``G`` (groups may be empty —
            a WHERE clause can filter every row of a group out).
        order: stable argsort of ``group_ids``; applying it makes each
            group a contiguous segment while preserving original row
            order within the group.
        counts: ``(G,)`` rows per group.
        starts: ``(G,)`` start offset of each group's segment in the
            sorted order (meaningful for empty groups too).
    """

    group_ids: np.ndarray
    num_groups: int
    order: np.ndarray
    counts: np.ndarray
    starts: np.ndarray

    @classmethod
    def from_ids(cls, group_ids: np.ndarray, num_groups: int) -> "GroupIndex":
        group_ids = np.asarray(group_ids)
        if group_ids.ndim != 1:
            raise SamplingError(
                f"group ids must be one-dimensional, got shape "
                f"{group_ids.shape}"
            )
        if num_groups < 0:
            raise SamplingError(
                f"num_groups must be non-negative, got {num_groups}"
            )
        group_ids = group_ids.astype(np.int64, copy=False)
        if len(group_ids) and (
            group_ids.min() < 0 or group_ids.max() >= num_groups
        ):
            raise SamplingError(
                f"group ids must lie in [0, {num_groups}), got range "
                f"[{group_ids.min()}, {group_ids.max()}]"
            )
        order = np.argsort(group_ids, kind="stable")
        counts = np.bincount(group_ids, minlength=num_groups).astype(np.int64)
        starts = np.concatenate(
            ([0], np.cumsum(counts)[:-1])
        ).astype(np.int64) if num_groups else np.empty(0, dtype=np.int64)
        return cls(
            group_ids=group_ids,
            num_groups=num_groups,
            order=order,
            counts=counts,
            starts=starts,
        )

    @classmethod
    def from_parts(
        cls,
        group_ids: np.ndarray,
        num_groups: int,
        order: np.ndarray,
        counts: np.ndarray,
        starts: np.ndarray,
    ) -> "GroupIndex":
        """Rebuild from precomputed arrays (worker processes; no re-sort)."""
        return cls(
            group_ids=np.asarray(group_ids, dtype=np.int64),
            num_groups=int(num_groups),
            order=np.asarray(order, dtype=np.int64),
            counts=np.asarray(counts, dtype=np.int64),
            starts=np.asarray(starts, dtype=np.int64),
        )

    @property
    def num_rows(self) -> int:
        return len(self.group_ids)

    @property
    def nonempty(self) -> np.ndarray:
        """Boolean mask of groups with at least one row."""
        return self.counts > 0

    def take_sorted(self, data: np.ndarray) -> np.ndarray:
        """``data`` rearranged into group-sorted (segment) order."""
        return np.asarray(data)[self.order]

    def segment_sum_sorted(self, data_sorted: np.ndarray) -> np.ndarray:
        """Per-group sums of already group-sorted ``(n,)`` / ``(n, K)`` data.

        Empty groups sum to zero (``np.add.reduceat`` cannot represent
        empty segments, so the reduction runs over non-empty segments
        and scatters into a zero-filled output).
        """
        data_sorted = np.asarray(data_sorted, dtype=np.float64)
        shape = (self.num_groups,) + data_sorted.shape[1:]
        out = np.zeros(shape, dtype=np.float64)
        alive = self.nonempty
        if data_sorted.shape[0] and alive.any():
            out[alive] = np.add.reduceat(
                data_sorted, self.starts[alive], axis=0
            )
        return out

    def segment_sum(self, data: np.ndarray) -> np.ndarray:
        """Per-group sums of ``(n,)`` or ``(n, K)`` data in original order."""
        return self.segment_sum_sorted(
            np.asarray(data, dtype=np.float64)[self.order]
        )

    def segment_reduce_sorted(
        self, data_sorted: np.ndarray, ufunc: np.ufunc, fill: float
    ) -> np.ndarray:
        """Per-group ``ufunc`` reduction of group-sorted data.

        Empty groups receive ``fill`` (the reduction's identity or a
        sentinel such as NaN).
        """
        data_sorted = np.asarray(data_sorted)
        shape = (self.num_groups,) + data_sorted.shape[1:]
        out = np.full(shape, fill, dtype=np.float64)
        alive = self.nonempty
        if data_sorted.shape[0] and alive.any():
            out[alive] = ufunc.reduceat(data_sorted, self.starts[alive], axis=0)
        return out


def _validate_weighted_inputs(
    values: np.ndarray, weights: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray | None]:
    values = np.asarray(values)
    if values.ndim != 1:
        raise SamplingError(
            f"aggregate input must be one-dimensional, got shape {values.shape}"
        )
    if weights is not None:
        weights = np.asarray(weights)
        if weights.shape != values.shape:
            raise SamplingError(
                f"weights shape {weights.shape} does not match values shape "
                f"{values.shape}"
            )
    return values, weights


def _validate_matrix(values: np.ndarray, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values)
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != values.shape[0]:
        raise SamplingError(
            f"weight matrix shape {matrix.shape} does not match "
            f"{values.shape[0]} values"
        )
    return values, matrix


def _validate_grouped(values: np.ndarray, groups: GroupIndex) -> np.ndarray:
    values = np.asarray(values)
    if values.ndim != 1:
        raise SamplingError(
            f"grouped aggregate input must be one-dimensional, got shape "
            f"{values.shape}"
        )
    if len(values) != groups.num_rows:
        raise SamplingError(
            f"grouped aggregate input has {len(values)} rows but the group "
            f"index covers {groups.num_rows}"
        )
    return values


def weighted_quantile(
    values: np.ndarray,
    weights: np.ndarray,
    fraction: float,
) -> float:
    """Quantile of ``values`` where each value occurs ``weights`` times.

    Uses the inverted-CDF rule: the smallest value whose cumulative weight
    reaches ``fraction`` of the total.  Equivalent to
    ``np.quantile(np.repeat(values, weights), fraction, method="inverted_cdf")``
    without materialising the expansion.
    """
    if not 0.0 <= fraction <= 1.0:
        raise SamplingError(f"quantile fraction must be in [0, 1], got {fraction}")
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1] if len(cumulative) else 0
    if total <= 0:
        return float("nan")
    # Clamp the target above zero so fraction = 0 lands on the smallest
    # value with positive weight, not on a zero-weight row.
    target = max(fraction * total, np.finfo(np.float64).tiny)
    index = int(np.searchsorted(cumulative, target, side="left"))
    index = min(index, len(sorted_values) - 1)
    return float(sorted_values[index])


class AggregateFunction(abc.ABC):
    """Base class for weighted aggregate functions.

    Attributes:
        name: SQL-visible function name (upper case).
        closed_form_capable: whether a CLT closed-form standard error is
            known for this aggregate (§2.3.2).
        outlier_sensitive: whether the statistic is dominated by rare
            extreme values, the paper's first failure condition for the
            bootstrap (§2.3.1).
        needs_argument: False only for COUNT(*), which aggregates row
            existence rather than a column expression.
    """

    name: str = ""
    closed_form_capable: bool = False
    outlier_sensitive: bool = False
    needs_argument: bool = True

    # -- single evaluation ------------------------------------------------
    @abc.abstractmethod
    def compute(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> float:
        """Evaluate the aggregate over (optionally weighted) values."""

    # -- vectorised resample evaluation -----------------------------------
    @abc.abstractmethod
    def compute_resamples(
        self, values: np.ndarray, weight_matrix: np.ndarray
    ) -> np.ndarray:
        """Evaluate the aggregate on K resamples described by weight columns.

        Args:
            values: array of shape ``(n,)``.
            weight_matrix: array of shape ``(n, K)`` of non-negative
                resampling weights (typically Poisson(1) draws).

        Returns:
            Array of shape ``(K,)`` with one statistic per resample.
        """

    # -- grouped evaluation -------------------------------------------------
    def compute_grouped(
        self, values: np.ndarray, groups: GroupIndex
    ) -> np.ndarray:
        """Evaluate the aggregate for every group of ``groups`` at once.

        Args:
            values: array of shape ``(n,)`` in original row order.
            groups: factorised group structure over the same ``n`` rows.

        Returns:
            Array of shape ``(G,)``; empty groups evaluate to the
            aggregate's empty-input result (0 for COUNT-like, NaN for
            value aggregates).

        This base implementation is the documented holistic fallback:
        sort once by group id, then evaluate each contiguous segment
        with :meth:`compute`.  Because the sort is stable, each segment
        holds exactly the rows a per-group boolean mask would select,
        in the same order — the fallback is bit-identical to per-group
        evaluation while avoiding its O(n·G) masking cost.
        Decomposable aggregates override this with segmented
        reductions that need no per-group Python loop at all.
        """
        values = _validate_grouped(values, groups)
        values_sorted = values[groups.order]
        out = np.empty(groups.num_groups, dtype=np.float64)
        for g in range(groups.num_groups):
            start = groups.starts[g]
            segment = values_sorted[start : start + groups.counts[g]]
            out[g] = self.compute(segment)
        return out

    def compute_grouped_resamples(
        self,
        values: np.ndarray,
        groups: GroupIndex,
        weight_matrix: np.ndarray,
    ) -> np.ndarray:
        """Evaluate K resamples of every group from one weight matrix.

        Args:
            values: array of shape ``(n,)`` in original row order.
            groups: factorised group structure over the same ``n`` rows.
            weight_matrix: shape ``(n, K)`` of non-negative resampling
                weights — one shared matrix covering *all* groups, per
                the §5.3.1 consolidation.

        Returns:
            Array of shape ``(G, K)``; row ``g`` holds the K resample
            statistics of group ``g``.  Empty groups get their
            empty-input statistic in every column.

        Base implementation: holistic fallback via one stable sort and
        a per-segment :meth:`compute_resamples` call (see
        :meth:`compute_grouped`).
        """
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        _validate_grouped(values, groups)
        values_sorted = values[groups.order]
        matrix_sorted = weight_matrix[groups.order]
        num_resamples = weight_matrix.shape[1]
        out = np.empty((groups.num_groups, num_resamples), dtype=np.float64)
        for g in range(groups.num_groups):
            count = groups.counts[g]
            if count == 0:
                out[g] = self.compute(values[:0])
                continue
            start = groups.starts[g]
            out[g] = self.compute_resamples(
                values_sorted[start : start + count],
                matrix_sorted[start : start + count],
            )
        return out

    # -- partial aggregation protocol --------------------------------------
    @abc.abstractmethod
    def make_state(
        self, values: np.ndarray, weights: np.ndarray | None = None
    ) -> tuple:
        """Aggregate one partition into a mergeable partial state."""

    @abc.abstractmethod
    def merge_states(self, left: tuple, right: tuple) -> tuple:
        """Merge two partial states."""

    @abc.abstractmethod
    def finalize_state(self, state: tuple) -> float:
        """Turn a merged partial state into the final statistic."""

    # -- closed forms -------------------------------------------------------
    def closed_form_std_error(
        self, values: np.ndarray, total_sample_rows: int | None = None
    ) -> float:
        """CLT estimate of the standard error of this statistic.

        Args:
            values: the aggregate's input values *after* any filters.
            total_sample_rows: the sample size before filtering; required
                by SUM and COUNT, whose randomness includes how many rows
                matched the filter.

        Raises:
            EstimationError: if this aggregate has no known closed form.
        """
        raise EstimationError(
            f"no closed-form standard error is known for {self.name}"
        )

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


def _weight_sums(values: np.ndarray, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return per-resample (Σw, Σw·v) for a weight matrix."""
    weight_totals = matrix.sum(axis=0, dtype=np.float64)
    weighted_value_totals = values.astype(np.float64) @ matrix.astype(np.float64)
    return weight_totals, weighted_value_totals


class CountAggregate(AggregateFunction):
    """COUNT(*) or COUNT(expr): number of (weighted) rows.

    The sample statistic is the matched-row count within the sample; the
    pipeline scales it by ``|D| / |S|`` to estimate the full-data count.
    """

    name = "COUNT"
    closed_form_capable = True
    needs_argument = False

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return float(len(values))
        return float(weights.sum())

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        return weight_matrix.sum(axis=0, dtype=np.float64)

    def compute_grouped(self, values, groups):
        _validate_grouped(values, groups)
        return groups.counts.astype(np.float64)

    def compute_grouped_resamples(self, values, groups, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        _validate_grouped(values, groups)
        return groups.segment_sum(weight_matrix)

    def make_state(self, values, weights=None):
        return (self.compute(values, weights),)

    def merge_states(self, left, right):
        return (left[0] + right[0],)

    def finalize_state(self, state):
        return float(state[0])

    def closed_form_std_error(self, values, total_sample_rows=None):
        if total_sample_rows is None:
            raise EstimationError(
                "COUNT closed form requires the pre-filter sample size"
            )
        n = int(total_sample_rows)
        if n <= 0:
            raise EstimationError("sample must be non-empty")
        matched_fraction = len(values) / n
        return float(np.sqrt(n * matched_fraction * (1.0 - matched_fraction)))


class SumAggregate(AggregateFunction):
    """SUM(expr) over the (weighted) matched rows of the sample."""

    name = "SUM"
    closed_form_capable = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return float(values.sum(dtype=np.float64))
        return float((values * weights).sum(dtype=np.float64))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        __, weighted_totals = _weight_sums(values, weight_matrix)
        return weighted_totals

    def compute_grouped(self, values, groups):
        values = _validate_grouped(values, groups)
        return groups.segment_sum(values)

    def compute_grouped_resamples(self, values, groups, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        _validate_grouped(values, groups)
        weighted = values.astype(np.float64)[:, None] * weight_matrix
        return groups.segment_sum(weighted)

    def make_state(self, values, weights=None):
        return (self.compute(values, weights),)

    def merge_states(self, left, right):
        return (left[0] + right[0],)

    def finalize_state(self, state):
        return float(state[0])

    def closed_form_std_error(self, values, total_sample_rows=None):
        if total_sample_rows is None:
            raise EstimationError(
                "SUM closed form requires the pre-filter sample size"
            )
        n = int(total_sample_rows)
        if n <= 0:
            raise EstimationError("sample must be non-empty")
        # Model the sample sum as the sum over all n sample rows of
        # y_i = value_i * matched_i; rows that failed the filter contribute
        # zero.  Var(sum) = n * Var(y).
        values = np.asarray(values, dtype=np.float64)
        mean_y = values.sum() / n
        mean_y2 = (values * values).sum() / n
        variance_y = max(mean_y2 - mean_y * mean_y, 0.0)
        return float(np.sqrt(n * variance_y))


class AvgAggregate(AggregateFunction):
    """AVG(expr) over the (weighted) matched rows."""

    name = "AVG"
    closed_form_capable = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if len(values) == 0:
            return float("nan")
        if weights is None:
            return float(values.mean(dtype=np.float64))
        total_weight = weights.sum()
        if total_weight <= 0:
            return float("nan")
        return float((values * weights).sum(dtype=np.float64) / total_weight)

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        weight_totals, weighted_totals = _weight_sums(values, weight_matrix)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                weight_totals > 0, weighted_totals / weight_totals, np.nan
            )

    def compute_grouped(self, values, groups):
        values = _validate_grouped(values, groups)
        sums = groups.segment_sum(values)
        counts = groups.counts.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(counts > 0, sums / counts, np.nan)

    def compute_grouped_resamples(self, values, groups, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        _validate_grouped(values, groups)
        weight_totals = groups.segment_sum(weight_matrix)
        weighted_totals = groups.segment_sum(
            values.astype(np.float64)[:, None] * weight_matrix
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                weight_totals > 0, weighted_totals / weight_totals, np.nan
            )

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return (float(len(values)), float(values.sum(dtype=np.float64)))
        return (
            float(weights.sum(dtype=np.float64)),
            float((values * weights).sum(dtype=np.float64)),
        )

    def merge_states(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finalize_state(self, state):
        weight_total, value_total = state
        return float(value_total / weight_total) if weight_total > 0 else float("nan")

    def closed_form_std_error(self, values, total_sample_rows=None):
        values = np.asarray(values, dtype=np.float64)
        n = len(values)
        if n < 2:
            raise EstimationError("AVG closed form requires at least two rows")
        return float(np.sqrt(values.var(ddof=1) / n))


def _central_moments(values: np.ndarray) -> tuple[float, float, float]:
    """Return (mean, m2, m4): mean and 2nd/4th central moments."""
    values = np.asarray(values, dtype=np.float64)
    mean = values.mean()
    deviations = values - mean
    m2 = float(np.mean(deviations**2))
    m4 = float(np.mean(deviations**4))
    return float(mean), m2, m4


class VarianceAggregate(AggregateFunction):
    """VARIANCE(expr): unbiased sample variance of the matched rows."""

    name = "VARIANCE"
    closed_form_capable = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            if len(values) < 2:
                return float("nan")
            return float(values.var(ddof=1))
        total_weight = weights.sum(dtype=np.float64)
        if total_weight <= 1:
            return float("nan")
        mean = (values * weights).sum(dtype=np.float64) / total_weight
        second_moment = (weights * (values - mean) ** 2).sum(dtype=np.float64)
        return float(second_moment / (total_weight - 1.0))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        values64 = values.astype(np.float64)
        matrix64 = weight_matrix.astype(np.float64)
        weight_totals = matrix64.sum(axis=0)
        weighted_totals = values64 @ matrix64
        weighted_squares = (values64 * values64) @ matrix64
        with np.errstate(divide="ignore", invalid="ignore"):
            means = np.where(weight_totals > 0, weighted_totals / weight_totals, np.nan)
            # The raw-moment form can go slightly negative from floating
            # cancellation on near-constant data; clamp at zero.
            sum_sq_dev = np.maximum(
                weighted_squares - weight_totals * means * means, 0.0
            )
            return np.where(
                weight_totals > 1, sum_sq_dev / (weight_totals - 1.0), np.nan
            )

    def compute_grouped(self, values, groups):
        values = _validate_grouped(values, groups).astype(np.float64)
        counts = groups.counts.astype(np.float64)
        sums = groups.segment_sum(values)
        with np.errstate(divide="ignore", invalid="ignore"):
            means = np.where(counts > 0, sums / counts, np.nan)
        # Two-pass (deviation) form, matching np.var's numerics rather
        # than the raw-moment form used for resamples.
        values_sorted = values[groups.order]
        deviations = values_sorted - means[groups.group_ids[groups.order]]
        sum_sq_dev = groups.segment_sum_sorted(deviations * deviations)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(counts > 1, sum_sq_dev / (counts - 1.0), np.nan)

    def compute_grouped_resamples(self, values, groups, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        _validate_grouped(values, groups)
        values64 = values.astype(np.float64)
        weight_totals = groups.segment_sum(weight_matrix)
        weighted_totals = groups.segment_sum(
            values64[:, None] * weight_matrix
        )
        weighted_squares = groups.segment_sum(
            (values64 * values64)[:, None] * weight_matrix
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            means = np.where(
                weight_totals > 0, weighted_totals / weight_totals, np.nan
            )
            sum_sq_dev = np.maximum(
                weighted_squares - weight_totals * means * means, 0.0
            )
            return np.where(
                weight_totals > 1, sum_sq_dev / (weight_totals - 1.0), np.nan
            )

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        values64 = values.astype(np.float64)
        if weights is None:
            return (
                float(len(values)),
                float(values64.sum()),
                float((values64 * values64).sum()),
            )
        weights64 = weights.astype(np.float64)
        return (
            float(weights64.sum()),
            float((values64 * weights64).sum()),
            float((values64 * values64 * weights64).sum()),
        )

    def merge_states(self, left, right):
        return tuple(a + b for a, b in zip(left, right))

    def finalize_state(self, state):
        weight_total, value_total, square_total = state
        if weight_total <= 1:
            return float("nan")
        mean = value_total / weight_total
        # Clamp: cancellation in the raw-moment form can dip below zero.
        sum_sq_dev = max(square_total - weight_total * mean * mean, 0.0)
        return float(sum_sq_dev / (weight_total - 1.0))

    def closed_form_std_error(self, values, total_sample_rows=None):
        n = len(values)
        if n < 2:
            raise EstimationError("VARIANCE closed form requires at least two rows")
        __, m2, m4 = _central_moments(values)
        # CLT for the sample variance: Var(s^2) ≈ (m4 - m2^2) / n.
        return float(np.sqrt(max(m4 - m2 * m2, 0.0) / n))


class StdevAggregate(VarianceAggregate):
    """STDEV(expr): square root of the unbiased sample variance."""

    name = "STDEV"
    closed_form_capable = True

    def compute(self, values, weights=None):
        variance = super().compute(values, weights)
        return float(np.sqrt(variance)) if variance == variance else float("nan")

    def compute_resamples(self, values, weight_matrix):
        return np.sqrt(super().compute_resamples(values, weight_matrix))

    def compute_grouped(self, values, groups):
        return np.sqrt(super().compute_grouped(values, groups))

    def compute_grouped_resamples(self, values, groups, weight_matrix):
        return np.sqrt(
            super().compute_grouped_resamples(values, groups, weight_matrix)
        )

    def finalize_state(self, state):
        variance = super().finalize_state(state)
        return float(np.sqrt(variance)) if variance == variance else float("nan")

    def closed_form_std_error(self, values, total_sample_rows=None):
        n = len(values)
        if n < 2:
            raise EstimationError("STDEV closed form requires at least two rows")
        __, m2, m4 = _central_moments(values)
        if m2 <= 0:
            raise EstimationError("STDEV closed form requires non-degenerate data")
        # Delta method on sqrt: Var(s) ≈ Var(s^2) / (4 m2).
        return float(np.sqrt(max(m4 - m2 * m2, 0.0) / n / (4.0 * m2)))


class _ExtremeAggregate(AggregateFunction):
    """Shared implementation for MIN and MAX."""

    outlier_sensitive = True
    _reducer: Callable[..., np.ndarray]
    _seg_reducer: np.ufunc
    _fill: float

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is not None:
            values = values[weights > 0]
        if len(values) == 0:
            return float("nan")
        return float(self._reducer(values))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        present = weight_matrix > 0
        masked = np.where(present, values[:, None].astype(np.float64), self._fill)
        result = self._reducer(masked, axis=0)
        empty = ~present.any(axis=0)
        if empty.any():
            result = np.where(empty, np.nan, result)
        return result

    def compute_grouped(self, values, groups):
        values = _validate_grouped(values, groups)
        return groups.segment_reduce_sorted(
            values[groups.order].astype(np.float64),
            self._seg_reducer,
            np.nan,
        )

    def compute_grouped_resamples(self, values, groups, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        _validate_grouped(values, groups)
        values_sorted = values[groups.order].astype(np.float64)
        present = weight_matrix[groups.order] > 0
        masked = np.where(present, values_sorted[:, None], self._fill)
        out = np.full(
            (groups.num_groups, weight_matrix.shape[1]), np.nan
        )
        alive = groups.nonempty
        if len(values) and alive.any():
            starts = groups.starts[alive]
            reduced = self._seg_reducer.reduceat(masked, starts, axis=0)
            # A (group, resample) cell with no positive-weight row is an
            # empty resample: NaN, matching compute_resamples.
            any_present = np.logical_or.reduceat(present, starts, axis=0)
            out[alive] = np.where(any_present, reduced, np.nan)
        return out

    def make_state(self, values, weights=None):
        return (self.compute(values, weights),)

    def merge_states(self, left, right):
        candidates = [x for x in (left[0], right[0]) if x == x]  # drop NaNs
        if not candidates:
            return (float("nan"),)
        return (float(self._reducer(np.asarray(candidates))),)

    def finalize_state(self, state):
        return float(state[0])


class MinAggregate(_ExtremeAggregate):
    """MIN(expr): bootstrap-hostile, the paper's canonical failure case."""

    name = "MIN"
    _reducer = staticmethod(np.min)
    _seg_reducer = np.minimum
    _fill = float("inf")


class MaxAggregate(_ExtremeAggregate):
    """MAX(expr): bootstrap-hostile, the paper's canonical failure case."""

    name = "MAX"
    _reducer = staticmethod(np.max)
    _seg_reducer = np.maximum
    _fill = float("-inf")


class PercentileAggregate(AggregateFunction):
    """PERCENTILE(expr, fraction): a holistic quantile aggregate.

    Conviva's workload leans on percentiles (§3); they have no simple
    closed form, so the pipeline estimates their error via the bootstrap.
    """

    name = "PERCENTILE"

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise SamplingError(
                f"percentile fraction must be in [0, 1], got {fraction}"
            )
        self.fraction = float(fraction)

    @property
    def outlier_sensitive(self) -> bool:  # type: ignore[override]
        # Extreme quantiles behave like MIN/MAX; central ones are benign.
        return self.fraction < 0.05 or self.fraction > 0.95

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if len(values) == 0:
            return float("nan")
        if weights is None:
            # Same inverted-CDF rule as the weighted path so that unit
            # weights and no weights agree exactly.
            return float(
                np.quantile(values, self.fraction, method="inverted_cdf")
            )
        return weighted_quantile(values, weights, self.fraction)

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        cumulative = np.cumsum(weight_matrix[order], axis=0, dtype=np.float64)
        totals = cumulative[-1] if len(cumulative) else np.zeros(weight_matrix.shape[1])
        results = np.empty(weight_matrix.shape[1], dtype=np.float64)
        for k in range(weight_matrix.shape[1]):
            if totals[k] <= 0:
                results[k] = np.nan
                continue
            target = self.fraction * totals[k]
            index = int(np.searchsorted(cumulative[:, k], target, side="left"))
            results[k] = sorted_values[min(index, len(sorted_values) - 1)]
        return results

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            weights = np.ones(len(values), dtype=np.float64)
        return (np.asarray(values, dtype=np.float64), np.asarray(weights, dtype=np.float64))

    def merge_states(self, left, right):
        return (
            np.concatenate([left[0], right[0]]),
            np.concatenate([left[1], right[1]]),
        )

    def finalize_state(self, state):
        values, weights = state
        if len(values) == 0:
            return float("nan")
        return weighted_quantile(values, weights, self.fraction)

    def __repr__(self) -> str:
        return f"<aggregate PERCENTILE({self.fraction})>"


class CountDistinctAggregate(AggregateFunction):
    """COUNT(DISTINCT expr): a holistic, bootstrap-hostile aggregate.

    Distinct counts on a sample systematically miss rare values; both the
    plug-in estimate and bootstrap error bars are unreliable, which makes
    this a productive test case for the diagnostic.
    """

    name = "COUNT_DISTINCT"
    outlier_sensitive = True

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is not None:
            values = values[weights > 0]
        return float(len(np.unique(values)))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        num_resamples = weight_matrix.shape[1]
        if len(values) == 0:
            return np.zeros(num_resamples, dtype=np.float64)
        # One sort serves all K resamples: group equal values into runs,
        # then a distinct value appears in resample k iff any row of its
        # run has positive weight there.  Replaces the per-resample
        # ``np.unique(values[present[:, k]])`` loop (K sorts) with a
        # single sort plus two segmented passes.
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        present = weight_matrix[order] > 0
        new_run = np.empty(len(sorted_values), dtype=bool)
        new_run[0] = True
        differs = sorted_values[1:] != sorted_values[:-1]
        if sorted_values.dtype.kind == "f":
            # NaN != NaN, but np.unique collapses NaNs into one value;
            # collapse NaN runs the same way.
            both_nan = np.isnan(sorted_values[1:]) & np.isnan(
                sorted_values[:-1]
            )
            differs &= ~both_nan
        new_run[1:] = differs
        run_starts = np.flatnonzero(new_run)
        run_present = np.logical_or.reduceat(present, run_starts, axis=0)
        return run_present.sum(axis=0, dtype=np.float64)

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is not None:
            values = values[weights > 0]
        return (np.unique(values),)

    def merge_states(self, left, right):
        return (np.unique(np.concatenate([left[0], right[0]])),)

    def finalize_state(self, state):
        return float(len(state[0]))


class UserDefinedAggregate(AggregateFunction):
    """A black-box user-defined aggregate over a value array.

    UDAFs are 11 % of the Facebook workload and 42 % of Conviva's (§3);
    they have no closed form, so the bootstrap (plus the diagnostic) is
    the only path to error bars.  Weighted evaluation expands weights into
    row repetition, which is exactly the semantics of a with-replacement
    resample.

    Args:
        name: SQL-visible function name.
        fn: callable mapping a 1-D value array to a float.
        weighted_fn: optional fast path mapping ``(values, weights)`` to a
            float; used when provided instead of materialising repeats.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[np.ndarray], float],
        weighted_fn: Callable[[np.ndarray, np.ndarray], float] | None = None,
        outlier_sensitive: bool = False,
    ):
        self.name = name.upper()
        self._fn = fn
        self._weighted_fn = weighted_fn
        self.outlier_sensitive = outlier_sensitive

    def compute(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            return float(self._fn(values))
        if self._weighted_fn is not None:
            return float(self._weighted_fn(values, weights))
        expanded = np.repeat(values, weights.astype(np.int64))
        return float(self._fn(expanded))

    def compute_resamples(self, values, weight_matrix):
        values, weight_matrix = _validate_matrix(values, weight_matrix)
        results = np.empty(weight_matrix.shape[1], dtype=np.float64)
        for k in range(weight_matrix.shape[1]):
            results[k] = self.compute(values, weight_matrix[:, k])
        return results

    def make_state(self, values, weights=None):
        values, weights = _validate_weighted_inputs(values, weights)
        if weights is None:
            weights = np.ones(len(values), dtype=np.float64)
        return (np.asarray(values, dtype=np.float64), np.asarray(weights, dtype=np.float64))

    def merge_states(self, left, right):
        return (
            np.concatenate([left[0], right[0]]),
            np.concatenate([left[1], right[1]]),
        )

    def finalize_state(self, state):
        return self.compute(state[0], state[1])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def _builtin_factories() -> dict[str, Callable[..., AggregateFunction]]:
    return {
        "COUNT": CountAggregate,
        "SUM": SumAggregate,
        "AVG": AvgAggregate,
        "MEAN": AvgAggregate,
        "VARIANCE": VarianceAggregate,
        "VAR": VarianceAggregate,
        "STDEV": StdevAggregate,
        "STDDEV": StdevAggregate,
        "MIN": MinAggregate,
        "MAX": MaxAggregate,
        "PERCENTILE": PercentileAggregate,
        "MEDIAN": lambda: PercentileAggregate(0.5),
        "COUNT_DISTINCT": CountDistinctAggregate,
    }


aggregate_registry: dict[str, Callable[..., AggregateFunction]] = _builtin_factories()


def get_aggregate(name: str, *args: Any) -> AggregateFunction:
    """Instantiate an aggregate function by SQL name.

    Args:
        name: case-insensitive function name, e.g. ``"avg"``.
        *args: constructor arguments (e.g. the percentile fraction).

    Raises:
        EstimationError: if the name is not registered.
    """
    factory = aggregate_registry.get(name.upper())
    if factory is None:
        raise EstimationError(f"unknown aggregate function {name!r}")
    return factory(*args)


def register_aggregate(
    name: str, factory: Callable[..., AggregateFunction]
) -> None:
    """Register a custom aggregate factory under ``name`` (upper-cased)."""
    aggregate_registry[name.upper()] = factory
