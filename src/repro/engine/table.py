"""An immutable in-memory columnar table.

:class:`Table` is the storage unit of the execution substrate.  Columns are
NumPy arrays of equal length; the table itself is immutable — every
transformation (filter, projection, sampling, partitioning) returns a new
``Table`` that shares column buffers where possible.

The class deliberately supports only the operations the AQP pipeline
needs: columnar access, boolean-mask filtering, row gathering, horizontal
column addition (for resampling weights), partitioning (for the simulated
distributed execution and the diagnostic's disjoint subsamples), and
random sampling (for sample creation and ground-truth evaluation).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import SchemaError


def _as_column(name: str, values: Any) -> np.ndarray:
    """Coerce ``values`` into a 1-D NumPy array suitable as a column."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise SchemaError(
            f"column {name!r} must be one-dimensional, got shape {array.shape}"
        )
    return array


class Table:
    """An immutable columnar table.

    Args:
        columns: mapping from column name to a 1-D array-like.  All columns
            must have the same length.  Insertion order is preserved and
            defines the column order.
        name: optional table name, used in error messages and the catalog.

    Raises:
        SchemaError: if the mapping is empty, a column is not 1-D, or the
            columns have differing lengths.
    """

    __slots__ = ("_columns", "_num_rows", "name")

    def __init__(self, columns: Mapping[str, Any], name: str | None = None):
        if not columns:
            raise SchemaError("a table requires at least one column")
        data: dict[str, np.ndarray] = {}
        num_rows: int | None = None
        for col_name, values in columns.items():
            array = _as_column(col_name, values)
            if num_rows is None:
                num_rows = len(array)
            elif len(array) != num_rows:
                raise SchemaError(
                    f"column {col_name!r} has {len(array)} rows, "
                    f"expected {num_rows}"
                )
            data[col_name] = array
        self._columns = data
        self._num_rows = int(num_rows if num_rows is not None else 0)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return list(self._columns)

    @property
    def schema(self) -> dict[str, np.dtype]:
        """Mapping of column name to NumPy dtype."""
        return {name: col.dtype for name, col in self._columns.items()}

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        cols = ", ".join(
            f"{name}:{col.dtype}" for name, col in self._columns.items()
        )
        return f"<Table{label} rows={self._num_rows} [{cols}]>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in self._columns
        )

    __hash__ = None  # type: ignore[assignment]  # mutable-buffer semantics

    def column(self, name: str) -> np.ndarray:
        """Return the column array for ``name``.

        Raises:
            SchemaError: if the column does not exist.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; available: {self.column_names}"
            ) from None

    def columns(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the name → array mapping."""
        return dict(self._columns)

    def estimated_bytes(self) -> int:
        """Approximate in-memory footprint, used by the cluster cost model."""
        total = 0
        for col in self._columns.values():
            if col.dtype.kind in ("U", "O"):
                # Strings: itemsize for unicode arrays; a flat guess for
                # object arrays, which we only use for string payloads.
                total += col.itemsize * len(col) if col.dtype.kind == "U" else 48 * len(col)
            else:
                total += col.nbytes
        return total

    # ------------------------------------------------------------------
    # Row-level transformations (all return new tables)
    # ------------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        """Return rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_:
            raise SchemaError(f"filter mask must be boolean, got {mask.dtype}")
        if len(mask) != self._num_rows:
            raise SchemaError(
                f"filter mask has {len(mask)} entries for {self._num_rows} rows"
            )
        return Table(
            {name: col[mask] for name, col in self._columns.items()},
            name=self.name,
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by integer ``indices`` (repeats allowed)."""
        indices = np.asarray(indices)
        return Table(
            {name: col[indices] for name, col in self._columns.items()},
            name=self.name,
        )

    def slice(self, start: int, stop: int) -> "Table":
        """Return the half-open row range ``[start, stop)`` (zero-copy views)."""
        return Table(
            {name: col[start:stop] for name, col in self._columns.items()},
            name=self.name,
        )

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.slice(0, min(n, self._num_rows))

    def select(self, names: Sequence[str]) -> "Table":
        """Project to the given columns, in the given order."""
        return Table({name: self.column(name) for name in names}, name=self.name)

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a table with ``name`` added (or replaced)."""
        array = _as_column(name, values)
        if len(array) != self._num_rows:
            raise SchemaError(
                f"new column {name!r} has {len(array)} rows, "
                f"expected {self._num_rows}"
            )
        data = dict(self._columns)
        data[name] = array
        return Table(data, name=self.name)

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a table without the given columns."""
        dropped = set(names)
        remaining = {
            name: col
            for name, col in self._columns.items()
            if name not in dropped
        }
        if not remaining:
            raise SchemaError("cannot drop every column of a table")
        return Table(remaining, name=self.name)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Return a table with columns renamed according to ``mapping``."""
        return Table(
            {mapping.get(name, name): col for name, col in self._columns.items()},
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Sampling and partitioning
    # ------------------------------------------------------------------
    def sample_rows(
        self,
        n: int,
        rng: np.random.Generator,
        replacement: bool = False,
    ) -> "Table":
        """Draw a simple random sample of ``n`` rows.

        Args:
            n: number of rows to draw.
            rng: NumPy random generator; all randomness in the library is
                injected through explicit generators for reproducibility.
            replacement: sample with replacement when true.
        """
        if n < 0:
            raise SchemaError(f"sample size must be non-negative, got {n}")
        if not replacement and n > self._num_rows:
            raise SchemaError(
                f"cannot sample {n} rows without replacement from "
                f"{self._num_rows}"
            )
        indices = rng.choice(self._num_rows, size=n, replace=replacement)
        return self.take(indices)

    def shuffle(self, rng: np.random.Generator) -> "Table":
        """Return the table with rows in a uniformly random order."""
        return self.take(rng.permutation(self._num_rows))

    def partition(self, num_parts: int) -> list["Table"]:
        """Split into ``num_parts`` contiguous row ranges of near-equal size.

        The last partitions may be one row shorter when ``num_rows`` is not
        divisible by ``num_parts``.  Partitions are zero-copy views.
        """
        if num_parts <= 0:
            raise SchemaError(f"num_parts must be positive, got {num_parts}")
        boundaries = np.linspace(0, self._num_rows, num_parts + 1, dtype=np.int64)
        return [
            self.slice(int(boundaries[i]), int(boundaries[i + 1]))
            for i in range(num_parts)
        ]

    def partition_rows(self, rows_per_part: int) -> list["Table"]:
        """Split into contiguous partitions of at most ``rows_per_part`` rows."""
        if rows_per_part <= 0:
            raise SchemaError(
                f"rows_per_part must be positive, got {rows_per_part}"
            )
        return [
            self.slice(start, min(start + rows_per_part, self._num_rows))
            for start in range(0, self._num_rows, rows_per_part)
        ]

    # ------------------------------------------------------------------
    # Conversion helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Any]],
        name: str | None = None,
    ) -> "Table":
        """Build a table from a sequence of row dictionaries.

        All rows must have the same keys; the first row defines the schema.
        """
        if not rows:
            raise SchemaError("from_rows requires at least one row")
        keys = list(rows[0])
        columns = {key: np.asarray([row[key] for row in rows]) for key in keys}
        return cls(columns, name=name)

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialise the table as a list of row dictionaries."""
        names = self.column_names
        cols = [self._columns[name] for name in names]
        return [
            {name: col[i].item() if col.dtype.kind != "O" else col[i]
             for name, col in zip(names, cols)}
            for i in range(self._num_rows)
        ]

    def iter_rows(self) -> Iterator[tuple]:
        """Iterate rows as plain tuples in column order."""
        cols = list(self._columns.values())
        for i in range(self._num_rows):
            yield tuple(col[i] for col in cols)


def concat_tables(tables: Sequence[Table]) -> Table:
    """Vertically concatenate tables with identical column names.

    Raises:
        SchemaError: if the list is empty or the schemas do not line up.
    """
    if not tables:
        raise SchemaError("concat_tables requires at least one table")
    first = tables[0]
    for other in tables[1:]:
        if other.column_names != first.column_names:
            raise SchemaError(
                "cannot concatenate tables with differing columns: "
                f"{first.column_names} vs {other.column_names}"
            )
    return Table(
        {
            name: np.concatenate([t.column(name) for t in tables])
            for name in first.column_names
        },
        name=first.name,
    )
