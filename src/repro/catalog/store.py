"""The materialized catalog: stored answers and rollup cubes.

Two layers of precomputed state serve repeated dashboard traffic:

* **Result store** — finished :class:`~repro.core.pipeline.AQPResult`
  rows keyed by :class:`ResultKey` (query fingerprint + the execution
  parameters that shape the answer).  An exact hit replays the stored
  rows — estimate, CI, and diagnostic verdict bit-identical to the run
  that produced them.
* **Rollup cubes** (:class:`RollupCube`) — VerdictDB-style scramble
  state: per (table, grouping-key set), the sample's rows are grouped
  into cells and a single Poissonized weight matrix is reduced to
  per-cell *replicate moments* (Σw, Σw·v, Σw·v² per replicate, per
  measure).  Those moments are sufficient statistics for
  COUNT/SUM/AVG/VARIANCE/STDEV, so any query whose grouping keys are a
  subset of the cube's dimensions and whose predicate touches only cube
  dimensions re-aggregates by segment-summing cell moments — no base
  data, no resampling.

Cubes persist as single ``.npz`` files written to a ``staging/``
directory and atomically promoted (``os.replace``) into ``ready/`` —
a crash mid-write can never leave a torn cube where the loader looks.
Persistence is crash-consistent end to end: the payload is fsynced
before promotion, each promotion is followed by a directory fsync, and
a sidecar ``<name>.npz.meta.json`` records the payload's CRC32 and size
at stage time.  The loader verifies the sidecar before trusting a
payload; anything truncated, bit-flipped, meta-less, or
version-mismatched is moved into ``quarantine/`` (counted, never
deleted) and the catalog serves the query cold — a corrupted cube
degrades to a *miss*, never a wrong answer.  Orphaned ``staging/``
files left by a crash between stage and promote are swept at startup,
mirroring the shared-memory orphan sweep.

Staleness: every ``register_table``/``create_sample`` bumps the table's
version; entries and cubes remember the version they were built against
and are invalidated on mismatch.  Memory goes through the governor's
reserve-before-allocate accountant — when the reservation is refused,
the catalog simply declines to store (a cache must never be the reason
a query fails).
"""

from __future__ import annotations

import io
import json
import logging
import os
import re
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from repro.engine.aggregates import GroupIndex
from repro.engine.table import Table
from repro.errors import (
    CatalogError,
    CorruptArtifactError,
    ResourceExhaustedError,
    StorageUnavailableError,
)
from repro.faults.io import StorageFaultInjector
from repro.governor.memory import MemoryAccountant, MemoryReservation
from repro.obs.metrics import METRICS
from repro.sampling.catalog import SampleInfo

logger = logging.getLogger(__name__)

#: Environment switch for the materialized catalog (``off`` restores the
#: always-recompute behaviour of earlier versions exactly).
CATALOG_ENV = "REPRO_CATALOG"

_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})
_ON_VALUES = frozenset({"on", "1", "true", "yes", "enabled"})

#: Seed-domain tag mixed into cube RNG streams so cube weights are
#: decoupled from every engine stream (the catalog must consume no
#: engine RNG — that is what keeps cold runs bit-identical with the
#: catalog on or off).
_CUBE_SEED_DOMAIN = 0x63756265  # "cube"


def resolve_catalog_enabled(flag: Optional[bool] = None) -> bool:
    """Whether the materialized catalog is active (explicit > env > on)."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(CATALOG_ENV, "").strip().lower()
    if not raw:
        return True
    if raw in _OFF_VALUES:
        return False
    if raw in _ON_VALUES:
        return True
    raise CatalogError(
        f"unknown {CATALOG_ENV} value {raw!r}; expected one of "
        f"{sorted(_ON_VALUES | _OFF_VALUES)}"
    )


@dataclass(frozen=True)
class CatalogConfig:
    """Tuning knobs for the materialized catalog.

    Attributes:
        max_result_entries: LRU capacity of the stored-answer layer.
        max_cubes: rollup cubes kept resident.
        ttl_seconds: stored answers older than this are re-executed
            (``None`` — never expire on age; registration-version
            invalidation still applies).
        directory: when set, cubes persist here (``staging/`` →
            ``ready/`` promotion) and can be reloaded next session.
        auto_materialize_after: consecutive misses of one query shape
            before it is enqueued for background materialization.
    """

    max_result_entries: int = 256
    max_cubes: int = 16
    ttl_seconds: Optional[float] = None
    directory: Optional[str] = None
    auto_materialize_after: int = 3


@dataclass(frozen=True)
class ResultKey:
    """Identity of one stored answer.

    The fingerprint shape + bindings pin the query; the rest pin every
    execution parameter that changes the answer (coverage, error bound,
    sample choice, whether diagnostics ran).
    """

    shape: str
    bindings: tuple
    confidence: float
    error_bound: Optional[float]
    sample_name: Optional[str]
    max_sample_rows: Optional[int]
    diagnostics: bool


@dataclass
class ResultEntry:
    """One stored answer plus the provenance of the run that made it."""

    key: ResultKey
    rows: tuple
    sample_info: SampleInfo
    table_name: str
    table_version: int
    created_at: float
    nbytes: int
    bootstrap_subqueries: int
    diagnostic_subqueries: int
    reservation: Optional[MemoryReservation] = None

    def release(self) -> None:
        if self.reservation is not None:
            self.reservation.release()
            self.reservation = None


def _sanitize(token: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", token)


#: Format version of the sidecar integrity record.
SIDECAR_VERSION = 1


def sidecar_path(payload_path: str | os.PathLike) -> Path:
    """Integrity-sidecar path for a payload (``<name>.npz.meta.json``)."""
    return Path(f"{os.fspath(payload_path)}.meta.json")


def fsync_dir(path: Path) -> None:
    """fsync a directory so a rename into it survives power loss.

    Public because the serving journal (:mod:`repro.serve.journal`)
    reuses the catalog's stage → fsync → replace durability pattern.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_durable(path: Path, data: bytes) -> None:
    """Write ``data`` and fsync before returning (shared with serve)."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


# Backwards-compatible internal aliases (pre-serving-tier names).
_fsync_dir = fsync_dir
_write_durable = write_durable


def verify_artifact(path: str | os.PathLike) -> dict:
    """Check a promoted payload against its sidecar; return the sidecar.

    Raises:
        CorruptArtifactError: with a machine-readable ``reason`` —
            ``meta_missing``, ``meta_invalid``, ``truncated``,
            ``crc_mismatch``, or ``unreadable``.
    """
    payload = Path(path)
    sidecar = sidecar_path(payload)
    if not sidecar.is_file():
        raise CorruptArtifactError(
            f"no integrity sidecar for {payload}",
            path=str(payload),
            reason="meta_missing",
        )
    try:
        record = json.loads(sidecar.read_text())
        expected_crc = int(record["payload_crc32"])
        expected_bytes = int(record["payload_bytes"])
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise CorruptArtifactError(
            f"unreadable integrity sidecar for {payload}: {exc}",
            path=str(payload),
            reason="meta_invalid",
        ) from exc
    try:
        raw = payload.read_bytes()
    except OSError as exc:
        raise CorruptArtifactError(
            f"cannot read payload {payload}: {exc}",
            path=str(payload),
            reason="unreadable",
        ) from exc
    if len(raw) != expected_bytes:
        raise CorruptArtifactError(
            f"payload {payload} is {len(raw)} bytes; sidecar recorded "
            f"{expected_bytes} (torn or truncated write)",
            path=str(payload),
            reason="truncated",
        )
    actual_crc = zlib.crc32(raw)
    if actual_crc != expected_crc:
        raise CorruptArtifactError(
            f"payload {payload} CRC32 {actual_crc:#010x} does not match "
            f"sidecar {expected_crc:#010x} (corrupted at rest)",
            path=str(payload),
            reason="crc_mismatch",
        )
    return record


@dataclass
class RollupCube:
    """Pre-aggregated replicate moments over one grouping-key set.

    Cells are the distinct combinations of the cube's ``dims`` in the
    stored sample.  For each measure ``m`` and each of the ``K``
    bootstrap replicates, the cube keeps the cell-local weighted moments
    ``Σw``, ``Σw·v``, ``Σw·v²`` plus the unweighted point moments — the
    sufficient statistics for every closed-form-family aggregate.  A
    query grouping by a *subset* of ``dims`` re-aggregates by summing
    cell moments, which is exactly the segmented reduction the grouped
    kernels perform over rows, applied to cells.
    """

    table_name: str
    sample_name: str
    sample_info: SampleInfo
    dims: tuple[str, ...]
    measures: tuple[str, ...]
    cell_values: dict[str, np.ndarray]
    counts: np.ndarray
    point_sums: dict[str, np.ndarray]
    point_sumsqs: dict[str, np.ndarray]
    rep_count: np.ndarray
    rep_sums: dict[str, np.ndarray]
    rep_sumsqs: dict[str, np.ndarray]
    total_weight: np.ndarray
    sample_rows: int
    dataset_rows: int
    num_resamples: int
    seed: int
    table_version: int
    created_at: float = 0.0
    nbytes: int = 0
    reservation: Optional[MemoryReservation] = None
    #: Row-level state retained for lazy diagnostics (not persisted; a
    #: loaded cube regains it via :meth:`attach_sample`).
    sample: Optional[Table] = field(default=None, repr=False)
    cell_group_ids: Optional[np.ndarray] = field(default=None, repr=False)
    _diag_cache: dict = field(default_factory=dict, repr=False)

    @property
    def num_cells(self) -> int:
        return len(self.counts)

    def release(self) -> None:
        if self.reservation is not None:
            self.reservation.release()
            self.reservation = None

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        table_name: str,
        sample_info: SampleInfo,
        sample: Table,
        dims: tuple[str, ...],
        measures: tuple[str, ...],
        num_resamples: int,
        seed: int,
        table_version: int,
        memory: Optional[MemoryAccountant] = None,
        wait_seconds: float = 0.0,
    ) -> "RollupCube":
        """Group the sample into cells and reduce one weight matrix.

        The weight matrix is drawn from a dedicated
        :class:`~numpy.random.SeedSequence` stream (seed ⊕ cube domain)
        — never from an engine stream — so materialization leaves every
        query-visible RNG untouched.
        """
        from repro.plan.executor import _group_rows

        n = sample.num_rows
        k = int(num_resamples)
        key_arrays = [sample.column(d) for d in dims]
        cell_ids, representatives = _group_rows(list(key_arrays))
        num_cells = len(representatives[0]) if n else 0
        groups = GroupIndex.from_ids(cell_ids, num_cells)

        # Transient cost: the (n, K) weight matrix. Retained cost: the
        # cell moments. Reserve both up front; release the transient
        # share after the reduction.
        transient = n * k * 8
        retained = max(num_cells * k * 8 * (1 + 2 * len(measures)), 1)
        reservation = None
        if memory is not None:
            reservation = memory.reserve(
                transient + retained,
                label=f"catalog.cube.{table_name}",
                wait_seconds=wait_seconds,
            )
        try:
            rng = np.random.default_rng(
                np.random.SeedSequence([_CUBE_SEED_DOMAIN, seed])
            )
            weights = rng.poisson(1.0, size=(n, k)).astype(np.float64)
            rep_count = groups.segment_sum(weights)
            total_weight = weights.sum(axis=0)
            point_sums: dict[str, np.ndarray] = {}
            point_sumsqs: dict[str, np.ndarray] = {}
            rep_sums: dict[str, np.ndarray] = {}
            rep_sumsqs: dict[str, np.ndarray] = {}
            for name in measures:
                values = np.asarray(
                    sample.column(name), dtype=np.float64
                )
                point_sums[name] = groups.segment_sum(values)
                point_sumsqs[name] = groups.segment_sum(values * values)
                rep_sums[name] = groups.segment_sum(values[:, None] * weights)
                rep_sumsqs[name] = groups.segment_sum(
                    (values * values)[:, None] * weights
                )
            del weights
        except BaseException:
            if reservation is not None:
                reservation.release()
            raise
        if reservation is not None:
            # Shrink the hold to the retained arrays only.
            reservation.release()
            reservation = memory.reserve(
                retained,
                label=f"catalog.cube.{table_name}",
                wait_seconds=wait_seconds,
            )
        return cls(
            table_name=table_name,
            sample_name=sample_info.name,
            sample_info=sample_info,
            dims=tuple(dims),
            measures=tuple(measures),
            cell_values={
                d: np.asarray(representatives[i])
                for i, d in enumerate(dims)
            },
            counts=groups.counts,
            point_sums=point_sums,
            point_sumsqs=point_sumsqs,
            rep_count=rep_count,
            rep_sums=rep_sums,
            rep_sumsqs=rep_sumsqs,
            total_weight=total_weight,
            sample_rows=n,
            dataset_rows=sample_info.dataset_rows,
            num_resamples=k,
            seed=int(seed),
            table_version=int(table_version),
            created_at=time.time(),
            nbytes=retained,
            reservation=reservation,
            sample=sample,
            cell_group_ids=cell_ids,
        )

    # -- diagnostics -------------------------------------------------------
    def attach_sample(self, sample: Table) -> None:
        """Re-attach row-level state after loading a persisted cube."""
        from repro.plan.executor import _group_rows

        if sample.num_rows != self.sample_rows:
            raise CatalogError(
                f"cube for {self.table_name!r} was built over "
                f"{self.sample_rows} rows; got {sample.num_rows}"
            )
        cell_ids, __ = _group_rows(
            [sample.column(d) for d in self.dims]
        )
        self.sample = sample
        self.cell_group_ids = cell_ids

    def row_group_ids(
        self, dims: tuple[str, ...]
    ) -> Optional[tuple[np.ndarray, int]]:
        """Row-level group ids over a subset of this cube's dimensions.

        Group numbering follows ``_group_rows`` (lexicographic over the
        distinct key tuples), which is identical whether computed over
        sample rows or over cube-cell representative values — every
        distinct dim combination present in rows is present in cells.
        """
        if self.sample is None:
            return None
        cached = self._diag_cache.get(("gids", dims))
        if cached is not None:
            return cached
        if not dims:
            # Ungrouped, unfiltered: one global diagnostic target, the
            # same granularity a cold scalar execution diagnoses at.
            result = (np.zeros(self.sample_rows, dtype=np.int64), 1)
        else:
            from repro.plan.executor import _group_rows

            gids, reps = _group_rows([self.sample.column(d) for d in dims])
            result = (gids, len(reps[0]) if self.sample_rows else 0)
        self._diag_cache[("gids", dims)] = result
        return result

    def cell_verdicts(
        self,
        aggregate_name: str,
        measure: Optional[str],
        confidence: float,
        dims: tuple[str, ...],
        cells: "np.ndarray | list[int]",
    ) -> Optional[dict[int, bool]]:
        """Algorithm-1 verdicts at the granularity a query targets.

        ``dims`` is the union of the query's grouping keys and predicate
        columns, and ``cells`` the ``dims``-cell ids the query's
        predicate actually kept.  Group membership and a dim-equality
        predicate both act as filter conjuncts on the sample, so each
        requested cell is diagnosed the way a fresh execution diagnoses
        a filtered query: the scalar diagnostic over the full sample
        with the cell membership as the matched-row mask.  Verdicts are
        computed lazily per cell and cached, so a dashboard that only
        ever touches a few cells never pays for the rest.  Returns
        ``None`` when no row-level sample is attached (persisted cube
        not yet re-attached via :meth:`attach_sample`).
        """
        if self.sample is None or self.cell_group_ids is None:
            return None
        from repro.core.bootstrap import BootstrapEstimator
        from repro.core.diagnostics import diagnose
        from repro.core.estimators import EstimationTarget
        from repro.core.pipeline import _auto_diagnostic_config
        from repro.engine.aggregates import get_aggregate
        from repro.errors import ReproError

        grouping = self.row_group_ids(dims)
        if grouping is None:
            return None
        gids, num_groups = grouping
        base_key = (dims, aggregate_name, measure, round(confidence, 6))
        config = _auto_diagnostic_config(self.sample_rows)
        aggregate = get_aggregate(aggregate_name)
        values: Optional[np.ndarray] = None
        out: dict[int, bool] = {}
        for cell in cells:
            cell = int(cell)
            cache_key = (*base_key, cell)
            cached = self._diag_cache.get(cache_key)
            if cached is not None:
                out[cell] = bool(cached[0])
                continue
            if config is None:
                # Sample too small for honest subsamples — the same
                # situation in which the live path skips the diagnostic
                # and trusts the estimate.
                verdict = True
            else:
                if values is None:
                    if measure is None:
                        values = np.ones(self.sample_rows, dtype=np.float64)
                    else:
                        values = np.asarray(
                            self.sample.column(measure), dtype=np.float64
                        )
                target = EstimationTarget(
                    values=values,
                    aggregate=aggregate,
                    mask=(gids == cell) if dims else None,
                    dataset_rows=self.dataset_rows,
                    extensive=aggregate_name in ("COUNT", "SUM"),
                )
                # hash() is salted per process; derive the per-cell seed
                # from a stable digest so verdicts reproduce across runs.
                digest = zlib.crc32(repr(cache_key).encode("utf-8"))
                rng = np.random.default_rng(
                    np.random.SeedSequence(
                        [_CUBE_SEED_DOMAIN, self.seed, 1 + digest]
                    )
                )
                estimator = BootstrapEstimator(self.num_resamples, rng)
                try:
                    verdict = bool(
                        diagnose(
                            target, estimator, confidence, config, rng
                        ).passed
                    )
                except ReproError:
                    verdict = False
            self._diag_cache[cache_key] = (verdict,)
            out[cell] = verdict
        return out

    # -- persistence -------------------------------------------------------
    def save(
        self,
        directory: str | os.PathLike,
        injector: Optional[StorageFaultInjector] = None,
    ) -> Path:
        """Persist to ``<dir>/staging/`` then promote into ``<dir>/ready/``.

        Crash-consistency protocol: serialize the payload, record its
        CRC32 and size in a sidecar, write and fsync both in
        ``staging/``, then promote payload → fsync dir → sidecar →
        fsync dir.  The ordering guarantees sidecar-present implies
        payload-present, and each ``os.replace`` is atomic — readers
        scanning ``ready/`` can never observe a half-written cube, and
        a promoted cube whose bytes were torn or flipped anyway is
        caught by the loader's CRC check against the sidecar.

        Args:
            injector: optional deterministic storage-fault injector
                (chaos/fault tests); ``None`` means a clean save.

        Raises:
            StorageUnavailableError: the write or promotion failed
                (ENOSPC, I/O error, injected crash); staged files are
                left for the startup sweep, ``ready/`` is untouched.
        """
        root = Path(directory)
        staging = root / "staging"
        ready = root / "ready"
        staging.mkdir(parents=True, exist_ok=True)
        ready.mkdir(parents=True, exist_ok=True)
        filename = (
            f"{_sanitize(self.table_name)}."
            f"{_sanitize('-'.join(self.dims))}."
            f"{_sanitize(self.sample_name)}.npz"
        )
        meta = {
            "schema_version": 1,
            "table_name": self.table_name,
            "sample_name": self.sample_name,
            "dims": list(self.dims),
            "measures": list(self.measures),
            "sample_rows": self.sample_rows,
            "dataset_rows": self.dataset_rows,
            "num_resamples": self.num_resamples,
            "seed": self.seed,
            "table_version": self.table_version,
            "created_at": self.created_at,
            "sample_info": {
                "name": self.sample_info.name,
                "table_name": self.sample_info.table_name,
                "rows": self.sample_info.rows,
                "dataset_rows": self.sample_info.dataset_rows,
                "cached_fraction": self.sample_info.cached_fraction,
            },
        }
        arrays: dict[str, np.ndarray] = {
            "counts": self.counts,
            "rep_count": self.rep_count,
            "total_weight": self.total_weight,
        }
        for i, d in enumerate(self.dims):
            arrays[f"cell_{i}"] = self.cell_values[d]
        for i, m in enumerate(self.measures):
            arrays[f"psum_{i}"] = self.point_sums[m]
            arrays[f"psumsq_{i}"] = self.point_sumsqs[m]
            arrays[f"rsum_{i}"] = self.rep_sums[m]
            arrays[f"rsumsq_{i}"] = self.rep_sumsqs[m]
        buffer = io.BytesIO()
        np.savez(buffer, meta=json.dumps(meta), **arrays)
        payload = buffer.getvalue()
        sidecar_record = json.dumps(
            {
                "sidecar_version": SIDECAR_VERSION,
                "schema_version": 1,
                "payload_crc32": zlib.crc32(payload),
                "payload_bytes": len(payload),
                "table_name": self.table_name,
                "sample_name": self.sample_name,
                "dims": list(self.dims),
                "table_version": self.table_version,
                "created_at": self.created_at,
            },
            sort_keys=True,
        ).encode("utf-8")
        staged = staging / filename
        staged_sidecar = sidecar_path(staged)
        final = ready / filename
        final_sidecar = sidecar_path(final)
        op = injector.begin_save() if injector is not None else -1
        try:
            # The sidecar CRC covers the *intended* bytes; an injected
            # torn/bitflip fault corrupts what actually hits the disk,
            # which is exactly the latent corruption the loader's
            # verification exists to catch.
            written = (
                injector.corrupt_payload(op, payload)
                if injector is not None
                else payload
            )
            _write_durable(staged, written)
            if injector is not None:
                injector.fsync_delay()
            _write_durable(staged_sidecar, sidecar_record)
            if injector is not None:
                injector.fsync_delay()
                injector.before_promote(op)
            os.replace(staged, final)
            _fsync_dir(ready)
            os.replace(staged_sidecar, final_sidecar)
            _fsync_dir(ready)
        except StorageUnavailableError:
            METRICS.counter("catalog.storage_unavailable").inc()
            raise
        except OSError as exc:
            METRICS.counter("catalog.storage_unavailable").inc()
            raise StorageUnavailableError(
                f"failed to persist cube {filename}: {exc}"
            ) from exc
        logger.info("promoted cube %s -> %s", staged, final)
        return final

    @classmethod
    def load(
        cls,
        path: str | os.PathLike,
        require_sidecar: bool = False,
    ) -> "RollupCube":
        """Load a promoted cube (row-level sample not attached).

        When the integrity sidecar is present it is always verified
        (size + CRC32); ``require_sidecar=True`` — the catalog loader's
        mode — additionally rejects sidecar-less payloads, so nothing
        in ``ready/`` is ever trusted unchecked.

        Raises:
            CorruptArtifactError: the payload failed verification or
                could not be parsed; ``reason`` carries the category.
        """
        payload_path = Path(path)
        if require_sidecar or sidecar_path(payload_path).is_file():
            verify_artifact(payload_path)
        try:
            with np.load(payload_path, allow_pickle=True) as data:
                meta = json.loads(str(data["meta"]))
                if meta.get("schema_version") != 1:
                    raise CorruptArtifactError(
                        f"unsupported cube schema in {path}: "
                        f"{meta.get('schema_version')!r}",
                        path=str(payload_path),
                        reason="schema_version",
                    )
                dims = tuple(meta["dims"])
                measures = tuple(meta["measures"])
                info = SampleInfo(**meta["sample_info"])
                arrays = {
                    key: data[key] for key in data.files if key != "meta"
                }
            retained = sum(a.nbytes for a in arrays.values())
            return cls._from_arrays(meta, dims, measures, info, arrays, retained)
        except CorruptArtifactError:
            raise
        except Exception as exc:
            # Anything the npz/json parsers throw on mangled bytes
            # (BadZipFile, EOFError, KeyError, ...) is one category:
            # the artifact cannot be trusted.
            raise CorruptArtifactError(
                f"cannot parse cube payload {path}: {exc}",
                path=str(payload_path),
                reason="payload_invalid",
            ) from exc

    @classmethod
    def _from_arrays(
        cls,
        meta: dict,
        dims: tuple[str, ...],
        measures: tuple[str, ...],
        info: SampleInfo,
        arrays: dict[str, np.ndarray],
        retained: int,
    ) -> "RollupCube":
        return cls(
            table_name=meta["table_name"],
            sample_name=meta["sample_name"],
            sample_info=info,
            dims=dims,
            measures=measures,
            cell_values={
                d: arrays[f"cell_{i}"] for i, d in enumerate(dims)
            },
            counts=arrays["counts"],
            point_sums={
                m: arrays[f"psum_{i}"] for i, m in enumerate(measures)
            },
            point_sumsqs={
                m: arrays[f"psumsq_{i}"] for i, m in enumerate(measures)
            },
            rep_count=arrays["rep_count"],
            rep_sums={
                m: arrays[f"rsum_{i}"] for i, m in enumerate(measures)
            },
            rep_sumsqs={
                m: arrays[f"rsumsq_{i}"] for i, m in enumerate(measures)
            },
            total_weight=arrays["total_weight"],
            sample_rows=int(meta["sample_rows"]),
            dataset_rows=int(meta["dataset_rows"]),
            num_resamples=int(meta["num_resamples"]),
            seed=int(meta["seed"]),
            table_version=int(meta["table_version"]),
            created_at=float(meta["created_at"]),
            nbytes=retained,
        )


class MaterializedCatalog:
    """Stored answers + rollup cubes with staleness-aware invalidation."""

    def __init__(
        self,
        memory: Optional[MemoryAccountant] = None,
        config: Optional[CatalogConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config or CatalogConfig()
        self.memory = memory
        #: Injectable time source (tests drive TTL expiry without sleeping).
        self.clock: Callable[[], float] = clock or time.time
        self._results: OrderedDict[ResultKey, ResultEntry] = OrderedDict()
        self._cubes: list[RollupCube] = []
        self._table_versions: dict[str, int] = {}
        self._miss_counts: dict[str, int] = {}
        self._materialization_queue: list[tuple] = []
        self._queued_shapes: set[str] = set()
        self.exact_hits = 0
        self.partial_hits = 0
        self.misses = 0
        self.quarantined = 0
        self.staging_orphans_swept = 0

    # -- staleness ---------------------------------------------------------
    def table_version(self, table_name: str) -> int:
        return self._table_versions.get(table_name, 0)

    def note_table_changed(self, table_name: str) -> None:
        """Bump the version and drop every entry built against the table."""
        self._table_versions[table_name] = self.table_version(table_name) + 1
        stale_keys = [
            key
            for key, entry in self._results.items()
            if entry.table_name == table_name
        ]
        for key in stale_keys:
            self._results.pop(key).release()
        kept: list[RollupCube] = []
        dropped = 0
        for cube in self._cubes:
            if cube.table_name == table_name:
                cube.release()
                dropped += 1
            else:
                kept.append(cube)
        self._cubes = kept
        if stale_keys or dropped:
            METRICS.counter("catalog.invalidations").inc()
        self._update_gauges()

    # -- result store ------------------------------------------------------
    def lookup_result(self, key: ResultKey) -> Optional[ResultEntry]:
        entry = self._results.get(key)
        if entry is None:
            return None
        if entry.table_version != self.table_version(entry.table_name):
            self._results.pop(key).release()
            return None
        ttl = self.config.ttl_seconds
        if ttl is not None and self.clock() - entry.created_at > ttl:
            self._results.pop(key).release()
            METRICS.counter("catalog.expirations").inc()
            return None
        self._results.move_to_end(key)
        return entry

    def store_result(
        self,
        key: ResultKey,
        rows: tuple,
        sample_info: SampleInfo,
        table_name: str,
        bootstrap_subqueries: int,
        diagnostic_subqueries: int,
    ) -> bool:
        """Store an answer; returns False when memory is refused."""
        if self.config.max_result_entries <= 0:
            return False
        # Rough footprint: rows are small python objects; what matters
        # is that the governor sees the catalog grow.
        nbytes = 4096 + 1024 * len(rows)
        reservation = None
        if self.memory is not None:
            try:
                reservation = self.memory.reserve(
                    nbytes, label="catalog.result", wait_seconds=0.0
                )
            except ResourceExhaustedError:
                METRICS.counter("catalog.store_rejected").inc()
                return False
        old = self._results.pop(key, None)
        if old is not None:
            old.release()
        self._results[key] = ResultEntry(
            key=key,
            rows=rows,
            sample_info=sample_info,
            table_name=table_name,
            table_version=self.table_version(table_name),
            created_at=self.clock(),
            nbytes=nbytes,
            bootstrap_subqueries=bootstrap_subqueries,
            diagnostic_subqueries=diagnostic_subqueries,
            reservation=reservation,
        )
        while len(self._results) > self.config.max_result_entries:
            __, evicted = self._results.popitem(last=False)
            evicted.release()
            METRICS.counter("catalog.evictions").inc()
        self._update_gauges()
        return True

    # -- cubes -------------------------------------------------------------
    def add_cube(self, cube: RollupCube) -> None:
        kept: list[RollupCube] = []
        for existing in self._cubes:
            if (
                existing.table_name == cube.table_name
                and existing.dims == cube.dims
                and existing.sample_name == cube.sample_name
            ):
                existing.release()
            else:
                kept.append(existing)
        self._cubes = kept
        self._cubes.append(cube)
        while len(self._cubes) > self.config.max_cubes:
            self._cubes.pop(0).release()
            METRICS.counter("catalog.evictions").inc()
        self._update_gauges()

    def cubes_for(self, table_name: str) -> list[RollupCube]:
        version = self.table_version(table_name)
        return [
            cube
            for cube in self._cubes
            if cube.table_name == table_name
            and cube.table_version == version
        ]

    def invalidate_cubes(
        self, table_name: str, reason: str = "quality"
    ) -> int:
        """Drop every resident cube for ``table_name``; returns the count.

        The answer-quality feedback path: when the calibration auditor
        finds cube-served answers for a table miscalibrated (a breaching
        ``table:X|route:partial`` SLO scope), the cubes are evicted so
        subsequent queries fall back to cold sample scans — correct but
        slower — until a rebuild produces honest cubes again.  Stored
        results for the table are dropped too: they were computed from
        the same suspect pre-aggregation path.
        """
        dropped = 0
        kept: list[RollupCube] = []
        for cube in self._cubes:
            if cube.table_name == table_name:
                cube.release()
                dropped += 1
            else:
                kept.append(cube)
        self._cubes = kept
        stale_keys = [
            key
            for key, entry in self._results.items()
            if entry.table_name == table_name
        ]
        for key in stale_keys:
            self._results.pop(key).release()
        if dropped or stale_keys:
            METRICS.counter("catalog.quality_invalidations").inc()
            METRICS.counter(
                f"catalog.quality_invalidations.{reason}"
            ).inc()
            logger.warning(
                "invalidated %d cube(s) and %d stored result(s) for "
                "table %r (reason: %s)",
                dropped,
                len(stale_keys),
                table_name,
                reason,
            )
        self._update_gauges()
        return dropped

    # -- persistence -------------------------------------------------------
    def _resolve_directory(
        self, directory: str | os.PathLike | None
    ) -> Path:
        target = directory or self.config.directory
        if target is None:
            raise CatalogError(
                "no catalog directory configured; pass one or set "
                "CatalogConfig.directory"
            )
        return Path(target)

    def save_cubes(
        self,
        directory: str | os.PathLike | None = None,
        injector: Optional[StorageFaultInjector] = None,
    ) -> list[Path]:
        """Persist every resident cube; best-effort per artifact.

        A cube whose save fails (:class:`StorageUnavailableError` —
        ENOSPC, I/O error, injected crash) is skipped and counted; the
        rest still persist.  Durability must never take the process
        down with it.
        """
        target = self._resolve_directory(directory)
        saved: list[Path] = []
        for cube in self._cubes:
            try:
                saved.append(cube.save(target, injector=injector))
            except StorageUnavailableError as exc:
                logger.warning(
                    "cube persistence skipped for %s(%s): %s",
                    cube.table_name,
                    ",".join(cube.dims),
                    exc,
                )
        return saved

    def quarantine_artifact(
        self,
        path: str | os.PathLike,
        reason: str,
        directory: str | os.PathLike | None = None,
    ) -> Path:
        """Move a failed artifact (and its sidecar) into ``quarantine/``.

        Quarantined payloads are renamed, never deleted — the evidence
        of what corrupted stays on disk for post-mortem — and every
        quarantine increments ``catalog.quarantined``.
        """
        root = self._resolve_directory(directory)
        quarantine = root / "quarantine"
        quarantine.mkdir(parents=True, exist_ok=True)
        payload = Path(path)
        moved = None
        for source in (payload, sidecar_path(payload)):
            if not source.is_file():
                continue
            dest = quarantine / source.name
            suffix = 0
            while dest.exists():
                suffix += 1
                dest = quarantine / f"{source.name}.{suffix}"
            os.replace(source, dest)
            if moved is None:
                moved = dest
        self.quarantined += 1
        METRICS.counter("catalog.quarantined").inc()
        logger.error(
            "quarantined catalog artifact %s (reason: %s) -> %s",
            payload.name,
            reason,
            quarantine,
        )
        return moved if moved is not None else quarantine / payload.name

    def load_cubes(self, directory: str | os.PathLike | None = None) -> int:
        """Load every promoted cube from ``<dir>/ready/``; returns count.

        Every payload is verified against its sidecar before adoption;
        corrupt, truncated, sidecar-less, or version-mismatched entries
        are quarantined and the scan continues — a bad artifact costs a
        catalog miss, never a wrong answer and never the good cubes
        next to it.  Orphaned sidecars whose payload vanished are
        quarantined too.
        """
        root = self._resolve_directory(directory)
        ready = root / "ready"
        if not ready.is_dir():
            return 0
        loaded = 0
        for path in sorted(ready.glob("*.npz")):
            try:
                cube = RollupCube.load(path, require_sidecar=True)
            except CorruptArtifactError as exc:
                self.quarantine_artifact(path, exc.reason, root)
                continue
            # Loaded cubes adopt the current table version: reloading is
            # an explicit operator action asserting the data still
            # matches.
            cube.table_version = self.table_version(cube.table_name)
            self.add_cube(cube)
            loaded += 1
        for sidecar in sorted(ready.glob("*.npz.meta.json")):
            payload = Path(str(sidecar)[: -len(".meta.json")])
            if not payload.is_file():
                self.quarantine_artifact(payload, "payload_missing", root)
        return loaded

    def sweep_staging(
        self, directory: str | os.PathLike | None = None
    ) -> list[str]:
        """Remove orphaned ``staging/`` files left by a crashed save.

        The mirror of ``repro.parallel.shm.sweep_orphans`` for the
        storage domain: anything still in ``staging/`` at startup
        belongs to a save that never promoted, so it is dead weight by
        construction (promotion is the last step).  Returns the swept
        file names and counts them in ``catalog.staging_orphans_swept``.
        """
        root = self._resolve_directory(directory)
        staging = root / "staging"
        if not staging.is_dir():
            return []
        swept: list[str] = []
        for path in sorted(staging.iterdir()):
            if not path.is_file():
                continue
            try:
                path.unlink()
            except OSError as exc:  # pragma: no cover - racing unlink
                logger.warning("could not sweep %s: %s", path, exc)
                continue
            swept.append(path.name)
        if swept:
            self.staging_orphans_swept += len(swept)
            METRICS.counter("catalog.staging_orphans_swept").inc(len(swept))
            logger.warning(
                "swept %d orphaned staging file(s): %s",
                len(swept),
                ", ".join(swept),
            )
        return swept

    # -- accounting --------------------------------------------------------
    def record_exact_hit(self) -> None:
        self.exact_hits += 1
        METRICS.counter("catalog.hit.exact").inc()
        self._update_gauges()

    def record_partial_hit(self) -> None:
        self.partial_hits += 1
        METRICS.counter("catalog.hit.partial").inc()
        self._update_gauges()

    def record_miss(
        self, shape: str, hint: Optional[tuple] = None
    ) -> None:
        """Count a miss; enqueue ``hint`` once the shape misses enough.

        ``hint`` is a ``(table_name, dims, measures)`` materialization
        recipe derived from the query (``None`` when the shape is not
        cube-servable — such shapes are counted but never enqueued).
        """
        self.misses += 1
        METRICS.counter("catalog.miss").inc()
        threshold = self.config.auto_materialize_after
        if threshold > 0 and hint is not None:
            count = self._miss_counts.get(shape, 0) + 1
            self._miss_counts[shape] = count
            if count == threshold and shape not in self._queued_shapes:
                self._queued_shapes.add(shape)
                self._materialization_queue.append(hint)
        self._update_gauges()

    def drain_materialization_queue(self) -> list[tuple]:
        """Recipes whose shapes crossed the materialization threshold."""
        queue, self._materialization_queue = self._materialization_queue, []
        self._queued_shapes.clear()
        self._miss_counts.clear()
        return queue

    def _update_gauges(self) -> None:
        total = self.exact_hits + self.partial_hits + self.misses
        if total:
            METRICS.gauge("catalog.hit_rate").set(
                (self.exact_hits + self.partial_hits) / total
            )
        METRICS.gauge("catalog.entries").set(len(self._results))
        METRICS.gauge("catalog.cubes").set(len(self._cubes))
        METRICS.gauge("catalog.bytes").set(
            sum(entry.nbytes for entry in self._results.values())
            + sum(cube.nbytes for cube in self._cubes)
        )

    def info(self) -> dict[str, Any]:
        total = self.exact_hits + self.partial_hits + self.misses
        return {
            "exact_hits": self.exact_hits,
            "partial_hits": self.partial_hits,
            "misses": self.misses,
            "hit_rate": (
                (self.exact_hits + self.partial_hits) / total if total else 0.0
            ),
            "entries": len(self._results),
            "cubes": len(self._cubes),
            "bytes": (
                sum(entry.nbytes for entry in self._results.values())
                + sum(cube.nbytes for cube in self._cubes)
            ),
            "queued_materializations": len(self._materialization_queue),
            "quarantined": self.quarantined,
            "staging_orphans_swept": self.staging_orphans_swept,
        }

    def clear(self) -> None:
        for entry in self._results.values():
            entry.release()
        self._results.clear()
        for cube in self._cubes:
            cube.release()
        self._cubes.clear()
        self._miss_counts.clear()
        self._materialization_queue.clear()
        self._queued_shapes.clear()
        self._update_gauges()
