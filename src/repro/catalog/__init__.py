"""Materialized-sample catalog and MV-first serving (BlinkDB/VerdictDB
style): stored answers, rollup cubes with precomputed bootstrap replicate
moments, and the router that serves repeated dashboard shapes from them.
"""

from repro.catalog.router import (
    SERVABLE_AGGREGATES,
    cube_can_serve,
    materialization_hint,
    serve_from_cube,
)
from repro.catalog.store import (
    CATALOG_ENV,
    CatalogConfig,
    MaterializedCatalog,
    ResultEntry,
    ResultKey,
    RollupCube,
    resolve_catalog_enabled,
)

__all__ = [
    "CATALOG_ENV",
    "CatalogConfig",
    "MaterializedCatalog",
    "ResultEntry",
    "ResultKey",
    "RollupCube",
    "SERVABLE_AGGREGATES",
    "cube_can_serve",
    "materialization_hint",
    "resolve_catalog_enabled",
    "serve_from_cube",
]
