"""MV-first routing: serve queries from rollup-cube replicate moments.

A cube can answer a query when the query's grouping keys are a subset of
the cube's dimensions and its predicate touches only cube dimensions —
then every sample row inside a cell shares the predicate's outcome, so
filtering cells is *exactly* filtering rows, and the per-cell replicate
moments re-aggregate to per-group replicate estimates by segment
summation (the same reduction the grouped kernels run over rows, one
granularity up).

Servable aggregates are the closed-form family (COUNT/SUM/AVG/VARIANCE/
STDEV): their resample statistics are functions of the cell moments
``Σw``, ``Σw·v``, ``Σw·v²``.  Anything the cube cannot answer with the
same semantics as the governed base path — emptied groups, failed cell
diagnostics, missed error bounds, half-width failures — returns ``None``
and the query falls through to a full execution (miss, never a wrong
answer).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.catalog.store import RollupCube
from repro.core.ci import ConfidenceInterval
from repro.core.diagnostics import DiagnosticResult
from repro.core.grouped import grouped_half_widths
from repro.engine.aggregates import GroupIndex
from repro.engine.table import Table
from repro.sql import ast
from repro.sql.analyzer import AnalyzedQuery

#: Aggregates whose resample statistics the cell moments determine.
SERVABLE_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "VARIANCE", "STDEV"})


def _where_columns(expr: ast.Expression) -> set[str]:
    return {
        node.name for node in ast.walk(expr) if isinstance(node, ast.ColumnRef)
    }


def cube_can_serve(cube: RollupCube, query: AnalyzedQuery) -> bool:
    """Structural servability: grouping subset + dim-only predicate."""
    if query.nested or query.sample_rate is not None:
        return False
    if query.having is not None:
        return False
    if query.contains_udf or query.contains_udaf:
        return False
    if not query.aggregates:
        return False
    for expr in query.group_by:
        if not isinstance(expr, ast.ColumnRef) or expr.name not in cube.dims:
            return False
    if query.where is not None:
        if not _where_columns(query.where) <= set(cube.dims):
            return False
    for spec in query.aggregates:
        if spec.distinct:
            return False
        name = spec.function.name
        if name not in SERVABLE_AGGREGATES:
            return False
        if name == "COUNT":
            if spec.argument is not None and not isinstance(
                spec.argument, ast.ColumnRef
            ):
                return False
        else:
            if not isinstance(spec.argument, ast.ColumnRef):
                return False
            if spec.argument.name not in cube.measures:
                return False
    return True


def materialization_hint(
    query: AnalyzedQuery,
) -> Optional[tuple[str, tuple[str, ...], tuple[str, ...]]]:
    """A ``(table, dims, measures)`` recipe for a cube that would serve
    this query — or ``None`` when no cube can (nested, UDFs, exotic
    aggregates, expression group keys)."""
    if query.nested or query.sample_rate is not None:
        return None
    if query.having is not None or query.contains_udf or query.contains_udaf:
        return None
    if not query.aggregates:
        return None
    dims: list[str] = []
    for expr in query.group_by:
        if not isinstance(expr, ast.ColumnRef):
            return None
        if expr.name not in dims:
            dims.append(expr.name)
    if query.where is not None:
        for name in sorted(_where_columns(query.where)):
            if name not in dims:
                dims.append(name)
    measures: list[str] = []
    for spec in query.aggregates:
        if spec.distinct or spec.function.name not in SERVABLE_AGGREGATES:
            return None
        if spec.function.name == "COUNT" and spec.argument is None:
            continue
        if not isinstance(spec.argument, ast.ColumnRef):
            return None
        if spec.argument.name not in measures:
            measures.append(spec.argument.name)
    if not dims:
        return None
    return (query.source_table, tuple(dims), tuple(measures))


def _safe_div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """num/den with NaN where the denominator is non-positive."""
    den = np.asarray(den, dtype=np.float64)
    ok = den > 0
    return np.where(ok, num / np.where(ok, den, 1.0), np.nan)


def serve_from_cube(
    cube: RollupCube,
    query: AnalyzedQuery,
    evaluator,
    confidence: float,
    error_bound: Optional[float],
    should_diagnose: bool,
) -> Optional[list]:
    """Answer ``query`` from ``cube``, or ``None`` to fall through.

    The returned rows mirror the base path's shape: every group present
    in the sample *before* filtering appears (the base path derives its
    group list pre-WHERE too), and each value carries a bootstrap CI
    from the re-aggregated replicate moments.
    """
    from repro.core.pipeline import ApproximateValue, AQPRow

    if not cube_can_serve(cube, query):
        return None
    num_cells = cube.num_cells
    if num_cells == 0:
        return None

    cell_table = Table(dict(cube.cell_values), name="cube_cells")
    if query.where is not None:
        mask = np.asarray(evaluator.evaluate(query.where, cell_table))
        mask = mask if mask.dtype == np.bool_ else mask.astype(bool)
    else:
        mask = np.ones(num_cells, dtype=bool)

    if query.group_by:
        from repro.plan.executor import _group_rows

        names = list(query.group_by_names)
        gids, reps = _group_rows([cube.cell_values[n] for n in names])
        num_groups = len(reps[0])
        group_dicts = [
            {name: reps[i][g] for i, name in enumerate(names)}
            for g in range(num_groups)
        ]
    else:
        gids = np.zeros(num_cells, dtype=np.int64)
        num_groups = 1
        group_dicts = [{}]

    # A group every one of whose cells the predicate removed would take
    # the base path's empty-group edge handling (exact 0 ± 0 for COUNT,
    # fallback otherwise); the cube declines rather than imitate it.
    passing_per_group = np.bincount(gids[mask], minlength=num_groups)
    if (passing_per_group == 0).any():
        return None

    # Diagnostics run at the granularity the query actually targets:
    # grouping keys plus predicate columns.  Group membership and a
    # dim-equality predicate are both filter conjuncts over the sample,
    # so the cold path's per-group diagnostic target *is* this
    # union-dims cell; wider predicates AND the verdicts of every cell
    # they cover, which is strictly conservative.
    union_dims = tuple(
        d
        for d in cube.dims
        if d in set(query.group_by_names)
        or (query.where is not None and d in _where_columns(query.where))
    )
    if union_dims:
        from repro.plan.executor import _group_rows as _cell_group_rows

        ucell_ids, __ = _cell_group_rows(
            [cube.cell_values[d] for d in union_dims]
        )
    else:
        ucell_ids = np.zeros(num_cells, dtype=np.int64)

    index = GroupIndex.from_ids(gids[mask], num_groups)
    rep_w = index.segment_sum(cube.rep_count[mask])  # (G, K)
    counts = index.segment_sum(cube.counts[mask].astype(np.float64))  # (G,)
    scale = cube.dataset_rows / cube.sample_rows
    realized = np.where(cube.total_weight > 0, cube.total_weight, 1.0)

    values_out: list[dict] = [{} for __ in range(num_groups)]
    for spec in query.aggregates:
        name = spec.function.name
        measure = None
        if name != "COUNT":
            measure = spec.argument.name
        if measure is not None:
            rep_s = index.segment_sum(cube.rep_sums[measure][mask])
            rep_q = index.segment_sum(cube.rep_sumsqs[measure][mask])
            point_s = index.segment_sum(cube.point_sums[measure][mask])
            point_q = index.segment_sum(cube.point_sumsqs[measure][mask])

        if name == "COUNT":
            replicates = cube.dataset_rows * rep_w / realized
            points = scale * counts
        elif name == "SUM":
            replicates = cube.dataset_rows * rep_s / realized
            points = scale * point_s
        elif name == "AVG":
            replicates = _safe_div(rep_s, rep_w)
            points = point_s / counts
        else:  # VARIANCE / STDEV (ddof=1 raw-moment form)
            if (counts < 2).any():
                return None
            rep_mean = _safe_div(rep_s, rep_w)
            ssd = np.maximum(rep_q - rep_w * rep_mean * rep_mean, 0.0)
            replicates = np.where(
                rep_w > 1, ssd / np.maximum(rep_w - 1.0, 1e-300), np.nan
            )
            mean = point_s / counts
            points = np.maximum(point_q - counts * mean * mean, 0.0) / (
                counts - 1.0
            )
            if name == "STDEV":
                replicates = np.sqrt(replicates)
                points = np.sqrt(points)

        half_widths, reasons = grouped_half_widths(
            replicates, points, confidence
        )
        if any(reason is not None for reason in reasons):
            return None

        diagnostic = None
        if should_diagnose:
            needed = np.unique(ucell_ids[mask])
            verdicts = cube.cell_verdicts(
                name, measure, confidence, union_dims, needed
            )
            if verdicts is None:
                return None
            # A group is trusted only when every union-dims cell the
            # predicate kept inside it passed Algorithm 1.
            if not all(verdicts[int(u)] for u in needed):
                return None
            diagnostic = DiagnosticResult(
                passed=True,
                reports=(),
                estimator_name="bootstrap",
                reason=(
                    "validated against the cube's sample over "
                    f"{len(needed)} diagnostic cell(s)"
                ),
            )

        for g in range(num_groups):
            interval = ConfidenceInterval(
                estimate=float(points[g]),
                half_width=float(half_widths[g]),
                confidence=confidence,
                method="bootstrap",
            )
            if (
                error_bound is not None
                and interval.relative_error > error_bound
            ):
                # The base path would escalate samples / fall back; let
                # it.
                return None
            values_out[g][spec.output_name] = ApproximateValue(
                name=spec.output_name,
                estimate=float(points[g]),
                interval=interval,
                method="bootstrap",
                diagnostic=diagnostic,
            )

    return [
        AQPRow(group=group_dicts[g], values=values_out[g])
        for g in range(num_groups)
    ]
