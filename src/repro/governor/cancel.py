"""Cooperative cancellation and hard query timeouts.

A :class:`CancelToken` is the one-way switch a caller (or the CLI's
``--timeout``, or the REPL's Ctrl-C handler) flips to stop an in-flight
query.  Cancellation is *cooperative*: the execution layers poll the
ambient token at their natural boundaries —

* :mod:`repro.core.pipeline` between stages and per aggregate,
* :mod:`repro.parallel.ops` between replicate/subsample batches,
* :mod:`repro.parallel.pool` while waiting on dispatched tasks
  (sub-100 ms wait slices, so a cancel interrupts even a long task
  wait),
* :mod:`repro.plan.executor` between physical operators (the exact
  fallback is often the longest stage of all),

— and raise :class:`~repro.errors.QueryCancelledError` at the first
boundary after the flip.  Because the raise unwinds through the same
context managers a success path uses, shared-memory arenas are
unlinked, reservations are released, and no worker is left stuck: the
guaranteed-cleanup half of the contract.

The token travels ambiently (a :mod:`contextvars` variable, like the
tracer) so deep layers need no new parameters; each client thread gets
its own context, so concurrent governed queries cancel independently.
Deadlines ride on the same mechanism: a token built with
``CancelToken.with_timeout(s)`` fires itself when the clock passes its
deadline, turning "timeout" into "cancellation with a timeout reason".
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.errors import QueryCancelledError
from repro.obs.metrics import METRICS

__all__ = [
    "CancelToken",
    "active_token",
    "cancel_scope",
    "check_cancelled",
]

_ACTIVE_TOKEN: ContextVar[Optional["CancelToken"]] = ContextVar(
    "repro_cancel_token", default=None
)


class CancelToken:
    """A thread-safe, one-way cancellation flag with an optional deadline.

    Args:
        deadline: absolute :func:`time.monotonic` instant after which
            the token reports itself cancelled, or ``None``.
    """

    def __init__(self, deadline: float | None = None):
        self._event = threading.Event()
        self._reason = ""
        self._deadline = deadline

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancelToken":
        """A token that self-cancels ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError(f"timeout must be positive, got {seconds}")
        return cls(deadline=time.monotonic() + seconds)

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    @property
    def reason(self) -> str:
        if self._event.is_set():
            return self._reason
        if self._deadline_passed():
            return "query timeout exceeded"
        return ""

    def _deadline_passed(self) -> bool:
        return (
            self._deadline is not None
            and time.monotonic() >= self._deadline
        )

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Flip the switch; idempotent (the first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set() or self._deadline_passed()

    @property
    def expired(self) -> bool:
        """Deadline passed without an explicit :meth:`cancel` call.

        Distinguishes "the caller's time budget ran out" (a typed
        admission rejection when it happens while queued) from "the
        caller actively cancelled" (a
        :class:`~repro.errors.QueryCancelledError`).
        """
        return not self._event.is_set() and self._deadline_passed()

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` without one."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def check(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelledError` if cancelled."""
        if self.cancelled:
            raise QueryCancelledError(
                f"query cancelled: {self.reason or 'cancelled'}"
            )

    def wait(self, seconds: float) -> bool:
        """Block up to ``seconds`` (capped at the deadline) for a cancel.

        Returns ``True`` when the token is cancelled — the cooperative
        replacement for bare ``time.sleep`` in retry backoffs.
        """
        remaining = self.remaining_seconds()
        if remaining is not None:
            seconds = min(seconds, remaining)
        if seconds > 0:
            self._event.wait(seconds)
        return self.cancelled


def active_token() -> Optional[CancelToken]:
    """The cancellation token of the current context, if any."""
    return _ACTIVE_TOKEN.get()


def check_cancelled() -> None:
    """Cooperative checkpoint: raise if the ambient token fired.

    Free when no token is active (one contextvar read), so the hot
    loops can call it unconditionally.
    """
    token = _ACTIVE_TOKEN.get()
    if token is not None:
        token.check()


@contextmanager
def cancel_scope(token: Optional[CancelToken]) -> Iterator[None]:
    """Make ``token`` the ambient cancellation token for the block.

    ``None`` is a no-op scope, so call sites can pass an optional token
    through unconditionally.  A :class:`~repro.errors.QueryCancelledError`
    escaping the block increments the ``governor.cancelled`` counter.
    """
    if token is None:
        yield
        return
    handle = _ACTIVE_TOKEN.set(token)
    try:
        yield
    except QueryCancelledError:
        METRICS.counter("governor.cancelled").inc()
        raise
    finally:
        _ACTIVE_TOKEN.reset(handle)
