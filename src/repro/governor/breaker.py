"""A sliding-window circuit breaker over query outcomes.

Admission control handles *instantaneous* overload (too many queries in
flight right now); the breaker handles *sustained* pressure: when a
large fraction of recent queries shed, timed out, or were refused
memory, letting new arrivals run at full fidelity only digs the hole
deeper.  While the breaker is open, the governor lowers every admitted
query onto the honest-degradation ladder (reduced K → closed form →
flagged point estimate) and, at the limit, fast-rejects.

States follow the classic pattern:

* **closed** — normal operation; outcomes are recorded into a bounded
  window.
* **open** — the recent failure fraction crossed ``failure_threshold``
  (with at least ``min_samples`` observations).  Admitted queries run
  degraded; opens last ``cooldown_seconds``.
* **half-open** — after the cooldown, probes run at full fidelity; a
  clean probe closes the breaker, a failed one re-opens it.

The clock is injectable so tests (and the deterministic stress
scenario) can drive state transitions without real sleeps.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from enum import IntEnum
from typing import Callable

from repro.obs.metrics import METRICS

__all__ = ["BreakerState", "CircuitBreaker", "DegradationLevel"]


class DegradationLevel(IntEnum):
    """The honest-degradation ladder, in order of decreasing fidelity.

    The rungs are exactly the PR 2 fallback ladder, now driven
    proactively by load rather than reactively by worker failures:

    * ``FULL`` — full-K bootstrap plus diagnostics.
    * ``REDUCED_K`` — a quarter of the configured replicates; the CI is
      widened by the Monte-Carlo inflation factor ``sqrt(K/K')`` and
      diagnostics are skipped.
    * ``CLOSED_FORM`` — closed-form error estimates where the analyzer
      says they apply; aggregates with no closed form drop to the next
      rung.
    * ``POINT_ESTIMATE`` — the sample point estimate, no interval,
      explicitly flagged ``unreliable``.
    """

    FULL = 0
    REDUCED_K = 1
    CLOSED_FORM = 2
    POINT_ESTIMATE = 3

    @property
    def label(self) -> str:
        return self.name.lower()


class BreakerState(IntEnum):
    CLOSED = 0
    OPEN = 1
    HALF_OPEN = 2


class CircuitBreaker:
    """Outcome-window breaker mapping sustained pressure to a ladder floor.

    Args:
        failure_threshold: fraction of failures in the window that
            opens the breaker.
        window: number of recent outcomes considered.
        min_samples: observations required before the breaker may open.
        cooldown_seconds: how long an open lasts before probing.
        open_level: ladder floor applied while open.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_samples: int = 5,
        cooldown_seconds: float = 2.0,
        open_level: DegradationLevel = DegradationLevel.CLOSED_FORM,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if window < 1 or min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_seconds = cooldown_seconds
        self.open_level = open_level
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._trips = 0
        self._trip_causes: dict[str, int] = {}
        self._last_trip_cause: str | None = None
        self._lock = threading.Lock()

    # -- state -------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._effective_state()

    @property
    def trips(self) -> int:
        return self._trips

    @property
    def last_trip_cause(self) -> str | None:
        with self._lock:
            return self._last_trip_cause

    def _effective_state(self) -> BreakerState:
        if self._state == BreakerState.OPEN and (
            self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = BreakerState.HALF_OPEN
        return self._state

    def _failure_fraction(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker starts probing (0 when not open).

        The serving tier folds this into the ``retry-after`` it hands
        rejected clients: while the breaker is open there is no point
        retrying sooner than the next half-open probe.
        """
        with self._lock:
            if self._effective_state() != BreakerState.OPEN:
                return 0.0
            return max(
                0.0,
                self.cooldown_seconds - (self._clock() - self._opened_at),
            )

    def floor_level(self) -> DegradationLevel:
        """The minimum ladder rung the breaker currently imposes.

        Open → ``open_level``; half-open probes and closed operation run
        at ``FULL``.
        """
        with self._lock:
            if self._effective_state() == BreakerState.OPEN:
                return self.open_level
            return DegradationLevel.FULL

    # -- outcome recording -------------------------------------------------
    def record(self, ok: bool) -> None:
        """Record one query outcome and update the state machine.

        ``ok`` should be ``False`` for shed/cancelled/memory-refused
        queries and for answers that had to degrade — the breaker's job
        is to notice that *honesty is being spent* and cheapen the work
        before dishonesty (an OOM crash) becomes the only option.
        """
        with self._lock:
            state = self._effective_state()
            if state == BreakerState.HALF_OPEN:
                if ok:
                    self._state = BreakerState.CLOSED
                    self._outcomes.clear()
                    METRICS.gauge("governor.breaker_open").set(0)
                else:
                    self._trip()
                return
            self._outcomes.append(ok)
            if (
                state == BreakerState.CLOSED
                and len(self._outcomes) >= self.min_samples
                and self._failure_fraction() >= self.failure_threshold
            ):
                self._trip()

    def trip(self, cause: str) -> None:
        """Force the breaker open, attributing the trip to ``cause``.

        External quality signals use this: a sustained calibration-SLO
        breach (:mod:`repro.obs.audit`) opens the breaker with cause
        ``"quality_breach"`` even though the failure window looks
        healthy — answers are cheap *and wrong* rather than slow.
        """
        with self._lock:
            if self._effective_state() == BreakerState.OPEN:
                self._opened_at = self._clock()  # extend the open
                return
            self._trip(cause)

    def _trip(self, cause: str = "failure_window") -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._trips += 1
        self._trip_causes[cause] = self._trip_causes.get(cause, 0) + 1
        self._last_trip_cause = cause
        self._outcomes.clear()
        METRICS.counter("governor.breaker_trips").inc()
        METRICS.counter(f"governor.breaker_trips.{cause}").inc()
        METRICS.gauge("governor.breaker_open").set(1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state().name.lower(),
                "failure_fraction": round(self._failure_fraction(), 4),
                "trips": self._trips,
                "trip_causes": dict(self._trip_causes),
                "last_trip_cause": self._last_trip_cause,
                "window_size": len(self._outcomes),
            }
