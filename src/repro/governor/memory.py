"""Process-wide memory governance: reserve before you allocate.

This module generalises the weight-matrix byte-budget guard of
:mod:`repro.sampling.poisson` into an accountant every allocation-heavy
operation consults *before* touching memory: bootstrap replicate
matrices, shared-memory arenas, materialised resample tables, and
result buffers all reserve their full estimated footprint up front and
release it when the operation ends.

The contract that makes rejection safe:

* **All-or-nothing** — :meth:`MemoryAccountant.reserve` either grants
  the whole request or raises
  :class:`~repro.errors.ResourceExhaustedError` leaving the ledger
  untouched.  A rejection therefore never happens *after* partial
  allocation (the property tests enforce this).
* **Reserve precedes allocation** — call sites reserve first, allocate
  second, so an over-budget plan is refused while it is still just a
  plan, instead of OOM-killing the process halfway through a NumPy
  allocation.
* **Bounded waiting** — under concurrency a reservation may briefly
  wait for another query to release (``wait_seconds``); the wait
  honours the ambient :class:`~repro.governor.cancel.CancelToken`.

The budget resolves from (in priority order) an explicit constructor
argument, ``EngineConfig.memory_budget_bytes``, or the
``REPRO_MEMORY_BUDGET`` environment variable; with none of those the
accountant only *tracks* usage and never rejects.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import ResourceExhaustedError
from repro.obs.metrics import METRICS, resident_memory_bytes

__all__ = [
    "MEMORY_BUDGET_ENV",
    "MemoryAccountant",
    "MemoryReservation",
    "process_accountant",
    "resident_memory_bytes",
    "resolve_memory_budget",
    "update_resident_gauge",
]

#: Environment knob for the process-wide byte budget (plain bytes).
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET"


def resolve_memory_budget(budget: int | None = None) -> Optional[int]:
    """Resolve a byte budget: explicit value → env → unlimited (None)."""
    if budget is not None:
        if budget <= 0:
            raise ValueError(f"memory budget must be positive, got {budget}")
        return int(budget)
    raw = os.environ.get(MEMORY_BUDGET_ENV, "").strip()
    if not raw:
        return None
    try:
        parsed = int(raw)
    except ValueError:
        raise ValueError(
            f"{MEMORY_BUDGET_ENV} must be an integer byte count, got {raw!r}"
        ) from None
    if parsed <= 0:
        raise ValueError(
            f"{MEMORY_BUDGET_ENV} must be positive, got {parsed}"
        )
    return parsed


@dataclass
class MemoryReservation:
    """A granted reservation; release it exactly once (context manager)."""

    accountant: "MemoryAccountant"
    nbytes: int
    label: str
    _released: bool = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.accountant._release(self.nbytes)

    def __enter__(self) -> "MemoryReservation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class MemoryAccountant:
    """Thread-safe ledger of reserved bytes against one budget.

    Args:
        budget_bytes: the ceiling; ``None`` resolves from
            ``REPRO_MEMORY_BUDGET`` and falls back to unlimited
            (track-only) when the variable is unset.
        name: label used in metrics and error messages.
    """

    def __init__(
        self, budget_bytes: int | None = None, name: str = "memory"
    ):
        self.name = name
        self._budget = resolve_memory_budget(budget_bytes)
        self._used = 0
        self._peak = 0
        self._rejections = 0
        self._condition = threading.Condition()

    # -- introspection -----------------------------------------------------
    @property
    def budget_bytes(self) -> Optional[int]:
        return self._budget

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of reserved bytes over the accountant's life."""
        return self._peak

    @property
    def rejections(self) -> int:
        return self._rejections

    def headroom_bytes(self) -> Optional[int]:
        """Bytes still reservable, or ``None`` when unlimited."""
        if self._budget is None:
            return None
        return max(0, self._budget - self._used)

    def set_budget(self, budget_bytes: int | None) -> None:
        """Re-point the budget (None → unlimited); wakes queued waiters."""
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(
                f"memory budget must be positive, got {budget_bytes}"
            )
        with self._condition:
            self._budget = budget_bytes
            self._condition.notify_all()

    # -- the ledger --------------------------------------------------------
    def would_fit(self, nbytes: int) -> bool:
        """Whether a reservation of ``nbytes`` could ever be granted."""
        return self._budget is None or nbytes <= self._budget

    def reserve(
        self,
        nbytes: int,
        label: str = "",
        wait_seconds: float = 0.0,
        cancel=None,
    ) -> MemoryReservation:
        """Reserve ``nbytes`` atomically, or raise without side effects.

        Args:
            nbytes: full footprint of the operation (matrices + shared
                segments + result buffers).  Zero-byte reservations are
                granted trivially.
            label: what the bytes are for (error messages, metrics).
            wait_seconds: how long to wait for other reservations to
                release before giving up; ``0`` rejects immediately.
            cancel: optional :class:`~repro.governor.cancel.CancelToken`
                checked while waiting.

        Raises:
            ResourceExhaustedError: the reservation cannot be granted —
                either it exceeds the whole budget (immediate) or
                headroom did not appear within ``wait_seconds``.  The
                ledger is untouched in both cases.
        """
        if nbytes < 0:
            raise ValueError(f"cannot reserve {nbytes} bytes")
        with self._condition:
            if self._budget is not None and nbytes > self._budget:
                # Larger than the entire budget: waiting cannot help.
                self._rejections += 1
                METRICS.counter("governor.memory_rejected").inc()
                raise ResourceExhaustedError(
                    f"{label or 'operation'} needs {nbytes:,} bytes, more "
                    f"than the whole {self._budget:,}-byte budget "
                    f"({MEMORY_BUDGET_ENV} / memory_budget_bytes)",
                    requested_bytes=nbytes,
                )
            waited = 0.0
            while (
                self._budget is not None
                and self._used + nbytes > self._budget
            ):
                if cancel is not None:
                    cancel.check()
                if waited >= wait_seconds:
                    self._rejections += 1
                    METRICS.counter("governor.memory_rejected").inc()
                    raise ResourceExhaustedError(
                        f"{label or 'operation'} needs {nbytes:,} bytes but "
                        f"only {self._budget - self._used:,} of the "
                        f"{self._budget:,}-byte budget are free "
                        f"(waited {waited:.2f}s)",
                        requested_bytes=nbytes,
                    )
                slice_seconds = min(0.05, wait_seconds - waited)
                self._condition.wait(slice_seconds)
                waited += slice_seconds
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used
            METRICS.gauge("governor.memory_used_bytes").set(self._used)
        return MemoryReservation(self, nbytes, label)

    def _release(self, nbytes: int) -> None:
        with self._condition:
            self._used = max(0, self._used - nbytes)
            METRICS.gauge("governor.memory_used_bytes").set(self._used)
            self._condition.notify_all()

    def snapshot(self) -> dict:
        """JSON-friendly state (REPL ``\\stats``, bench artifacts)."""
        return {
            "budget_bytes": self._budget,
            "used_bytes": self._used,
            "peak_bytes": self._peak,
            "rejections": self._rejections,
        }


_PROCESS_LOCK = threading.Lock()
_PROCESS_ACCOUNTANT: MemoryAccountant | None = None


def process_accountant() -> MemoryAccountant:
    """The lazily created process-wide accountant (env-resolved budget).

    Engines without an explicit ``memory_budget_bytes`` share this one,
    so concurrent queries in one process draw from a single ledger —
    the "process-wide" half of the governance contract.
    """
    global _PROCESS_ACCOUNTANT
    with _PROCESS_LOCK:
        if _PROCESS_ACCOUNTANT is None:
            _PROCESS_ACCOUNTANT = MemoryAccountant(name="process")
        return _PROCESS_ACCOUNTANT


def update_resident_gauge() -> Optional[int]:
    """Refresh the ``process.resident_bytes`` gauge; returns the reading."""
    rss = resident_memory_bytes()
    if rss is not None:
        METRICS.gauge("process.resident_bytes").set(rss)
    return rss
