"""The query governor: overload as a first-class, honest state.

The paper's engine knows when its *error bars* are wrong (§4); this
package makes the system know when its *resources* are wrong — and
refuse, queue, cancel, or degrade instead of crashing.  Four pieces:

* :mod:`repro.governor.memory` — a process-wide
  :class:`MemoryAccountant` that reserves an operation's full byte
  footprint *before* any allocation (weight matrices, shared-memory
  arenas, resample tables, result buffers), so an over-budget plan is
  rejected or downgraded while it is still a plan.
* :mod:`repro.governor.cancel` — cooperative :class:`CancelToken`
  cancellation and hard timeouts, checked at every stage/batch
  boundary with guaranteed cleanup.
* :mod:`repro.governor.admission` — :class:`QueryGovernor`:
  concurrency slots, a bounded admission queue with deadlines, and
  reject/queue/degrade load shedding.
* :mod:`repro.governor.breaker` — a :class:`CircuitBreaker` that maps
  sustained pressure onto the honest-degradation ladder
  (:class:`DegradationLevel`): full bootstrap → reduced K with widened
  CI → closed form → flagged point estimate.

Quickstart::

    from repro.governor import GovernorConfig, QueryGovernor

    governor = QueryGovernor(
        make_engine,                     # factory: one engine per slot
        GovernorConfig(
            max_concurrency=4,
            shed_policy="degrade",
            memory_budget_bytes=1 << 30,
            default_timeout_seconds=10.0,
        ),
    )
    result = governor.execute("SELECT AVG(time) FROM sessions")
"""

from repro.governor.admission import GovernorConfig, QueryGovernor
from repro.governor.breaker import (
    BreakerState,
    CircuitBreaker,
    DegradationLevel,
)
from repro.governor.cancel import (
    CancelToken,
    active_token,
    cancel_scope,
    check_cancelled,
)
from repro.governor.memory import (
    MEMORY_BUDGET_ENV,
    MemoryAccountant,
    MemoryReservation,
    process_accountant,
    resident_memory_bytes,
    resolve_memory_budget,
    update_resident_gauge,
)

__all__ = [
    "BreakerState",
    "CancelToken",
    "CircuitBreaker",
    "DegradationLevel",
    "GovernorConfig",
    "MEMORY_BUDGET_ENV",
    "MemoryAccountant",
    "MemoryReservation",
    "QueryGovernor",
    "active_token",
    "cancel_scope",
    "check_cancelled",
    "process_accountant",
    "resident_memory_bytes",
    "resolve_memory_budget",
    "update_resident_gauge",
]
