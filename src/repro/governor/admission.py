"""Admission control: concurrency slots, a bounded queue, load shedding.

:class:`QueryGovernor` sits between callers and
:class:`~repro.core.pipeline.AQPEngine` and makes overload a
first-class, honestly degraded state instead of a crash:

* at most ``max_concurrency`` queries execute at full fidelity;
* arrivals beyond that are handled by the ``shed_policy`` —
  ``"reject"`` (fail fast with
  :class:`~repro.errors.AdmissionRejectedError`), ``"queue"`` (wait in
  a bounded queue with a deadline), or ``"degrade"`` (admit up to
  ``max_overflow`` extra queries, stepped down the degradation
  ladder);
* a :class:`~repro.governor.breaker.CircuitBreaker` watches recent
  outcomes and, under sustained pressure, lowers the fidelity floor of
  *every* admitted query — spending accuracy (with honest error bars)
  to preserve availability;
* one :class:`~repro.governor.memory.MemoryAccountant` is shared by
  every engine the governor drives, so N concurrent callers draw from
  a single process-wide byte budget.

Determinism: a query admitted with no contention runs at
``DegradationLevel.FULL`` on an idle engine — bit-identical to the
same query on an ungoverned engine at any worker count.  The governor
only changes *what work is attempted*, never the RNG streams of the
work that runs.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import AdmissionRejectedError, ReproError, ResourceError
from repro.governor.breaker import CircuitBreaker, DegradationLevel
from repro.governor.cancel import CancelToken, cancel_scope
from repro.governor.memory import (
    MemoryAccountant,
    update_resident_gauge,
)
from repro.obs.metrics import METRICS

logger = logging.getLogger(__name__)

__all__ = ["GovernorConfig", "QueryGovernor"]

#: Valid load-shedding policies.
SHED_POLICIES = ("reject", "queue", "degrade")


@dataclass
class GovernorConfig:
    """Tunable behaviour of :class:`QueryGovernor`.

    Attributes:
        max_concurrency: queries executing simultaneously at full
            fidelity (and the number of engines a factory-backed
            governor keeps).
        shed_policy: what happens to arrivals beyond the slots:
            ``"reject"``, ``"queue"``, or ``"degrade"``.
        max_queue_depth: bounded queue length for the ``"queue"``
            policy; a full queue always rejects.
        queue_timeout_seconds: longest a queued query waits for a slot
            before being shed.
        max_overflow: extra degraded admissions for the ``"degrade"``
            policy (beyond these, arrivals are queued briefly, then
            shed).
        overflow_level: ladder rung overflow admissions run at.
        memory_budget_bytes: process-wide byte budget shared by every
            engine under this governor; ``None`` reads
            ``REPRO_MEMORY_BUDGET`` (unset → track-only).
        memory_wait_seconds: how long an operation's memory
            reservation may wait for another query to release before
            the plan is downgraded.
        default_timeout_seconds: deadline attached to every query that
            arrives without its own timeout or token (``None`` → no
            deadline).
        breaker_failure_threshold / breaker_window / breaker_min_samples
            / breaker_cooldown_seconds / breaker_open_level: circuit
            breaker tuning (see
            :class:`~repro.governor.breaker.CircuitBreaker`).
    """

    max_concurrency: int = 4
    shed_policy: str = "queue"
    max_queue_depth: int = 16
    queue_timeout_seconds: float = 5.0
    max_overflow: int = 4
    overflow_level: DegradationLevel = DegradationLevel.REDUCED_K
    memory_budget_bytes: Optional[int] = None
    memory_wait_seconds: float = 0.2
    default_timeout_seconds: Optional[float] = None
    breaker_failure_threshold: float = 0.5
    breaker_window: int = 20
    breaker_min_samples: int = 5
    breaker_cooldown_seconds: float = 2.0
    breaker_open_level: DegradationLevel = DegradationLevel.CLOSED_FORM
    #: Open the breaker (cause ``"quality_breach"``) when an engine's
    #: calibration auditor reports a sustained fleet-level coverage
    #: breach — answers that are fast but *wrong* are overload too.
    quality_breach_opens_breaker: bool = True

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r}; expected one of "
                f"{SHED_POLICIES}"
            )
        if self.max_queue_depth < 0 or self.max_overflow < 0:
            raise ValueError(
                "max_queue_depth and max_overflow must be non-negative"
            )


@dataclass
class _Admission:
    """One admitted query's ticket: its fidelity level and slot kind."""

    level: DegradationLevel
    overflow: bool = False
    queued_seconds: float = 0.0


class QueryGovernor:
    """Admission control + degradation ladder in front of AQP engines.

    Args:
        engine_or_factory: either a ready
            :class:`~repro.core.pipeline.AQPEngine` (all admitted
            queries share it, serialised by checkout — admission
            limits still apply) or a zero-argument callable producing
            engines (one per concurrency/overflow slot, enabling true
            concurrent execution).
        config: governor tuning; defaults are service-appropriate.
    """

    def __init__(
        self,
        engine_or_factory,
        config: GovernorConfig | None = None,
    ):
        self.config = config or GovernorConfig()
        self.memory = MemoryAccountant(
            self.config.memory_budget_bytes, name="governor"
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            window=self.config.breaker_window,
            min_samples=self.config.breaker_min_samples,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
            open_level=self.config.breaker_open_level,
        )
        if callable(engine_or_factory):
            self._factory: Optional[Callable] = engine_or_factory
            self._idle_engines: list = []
            self._engines_built = 0
        else:
            self._factory = None
            self._idle_engines = [engine_or_factory]
            self._engines_built = 1
        self._owns_engines = self._factory is not None
        self._condition = threading.Condition()
        self._in_flight = 0
        self._overflow_in_flight = 0
        self._queue_depth = 0
        self._closed = False
        # Outcome tallies for stats()/the stress bench.
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._errors = 0
        self._level_counts: dict[str, int] = {
            level.label: 0 for level in DegradationLevel
        }
        self._quality_breaches = 0
        #: Engines whose auditors already feed this governor (by id).
        self._audited_engines: set[int] = set()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut down engines the governor created (idempotent)."""
        with self._condition:
            self._closed = True
            engines, self._idle_engines = self._idle_engines, []
            self._condition.notify_all()
        if self._owns_engines:
            for engine in engines:
                engine.close()

    def __enter__(self) -> "QueryGovernor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- engine checkout ---------------------------------------------------
    @property
    def _max_engines(self) -> int:
        if self._factory is None:
            return 1
        return self.config.max_concurrency + self.config.max_overflow

    def _checkout_engine(self, token: CancelToken):
        with self._condition:
            while True:
                if self._closed:
                    raise AdmissionRejectedError(
                        "governor is shut down", reason="shutdown"
                    )
                if self._idle_engines:
                    engine = self._idle_engines.pop()
                    break
                if (
                    self._factory is not None
                    and self._engines_built < self._max_engines
                ):
                    self._engines_built += 1
                    engine = None  # build outside the lock
                    break
                token.check()
                self._condition.wait(0.05)
        if engine is None:
            try:
                engine = self._factory()
            except BaseException:
                with self._condition:
                    self._engines_built -= 1
                    self._condition.notify_all()
                raise
        # Every engine under this governor draws from one shared ledger.
        engine.memory = self.memory
        engine.config.memory_wait_seconds = self.config.memory_wait_seconds
        # ... and its calibration breaches feed this governor's breaker.
        auditor = getattr(engine, "auditor", None)
        if (
            self.config.quality_breach_opens_breaker
            and auditor is not None
            and id(engine) not in self._audited_engines
        ):
            self._audited_engines.add(id(engine))
            auditor.add_breach_listener(self._on_quality_breach)
        return engine

    def _checkin_engine(self, engine) -> None:
        with self._condition:
            if self._closed and self._owns_engines:
                engine.close()
                return
            self._idle_engines.append(engine)
            self._condition.notify_all()

    def _on_quality_breach(self, scope: str, snapshot: dict) -> None:
        """Sustained calibration breach → open the breaker.

        Fires on the ``overall`` scope only: per-table/per-route drift
        has a narrower remedy (cube invalidation, handled by the
        engine); fleet-wide miscalibration means the degradation ladder
        itself is lying, so stop spending fidelity until it recovers.
        """
        if scope != "overall":
            return
        with self._condition:
            self._quality_breaches += 1
        METRICS.counter("governor.quality_breaches").inc()
        self.breaker.trip("quality_breach")
        logger.warning(
            "quality breach: realized coverage %.3f vs objective %.3f "
            "over %d audited value(s); circuit breaker opened",
            snapshot.get("success_fraction", 0.0),
            snapshot.get("objective", 0.0),
            snapshot.get("samples", 0),
        )

    # -- admission ---------------------------------------------------------
    def _reject(self, message: str, reason: str = "no_capacity") -> None:
        with self._condition:
            self._rejected += 1
        METRICS.counter("governor.rejected").inc()
        self.breaker.record(False)
        raise AdmissionRejectedError(message, reason=reason)

    def _admit(self, token: CancelToken) -> _Admission:
        config = self.config
        with self._condition:
            if self._closed:
                raise AdmissionRejectedError(
                    "governor is shut down", reason="shutdown"
                )
            if self._in_flight < config.max_concurrency:
                self._in_flight += 1
                return self._granted(_Admission(self.breaker.floor_level()))
            if config.shed_policy == "degrade" and (
                self._overflow_in_flight < config.max_overflow
            ):
                self._in_flight += 1
                self._overflow_in_flight += 1
                level = max(
                    config.overflow_level, self.breaker.floor_level()
                )
                return self._granted(_Admission(level, overflow=True))
            if config.shed_policy == "reject" or (
                self._queue_depth >= config.max_queue_depth
            ):
                pass  # fall through to rejection below
            else:
                return self._wait_in_queue(token)
        self._reject(
            f"admission refused: {config.max_concurrency} queries in "
            f"flight and the {config.shed_policy!r} policy has no room",
            reason=(
                "queue_full"
                if config.shed_policy == "queue"
                else "no_capacity"
            ),
        )

    def _wait_in_queue(self, token: CancelToken) -> _Admission:
        """Wait (holding a queue slot) for an execution slot. Lock held."""
        config = self.config
        self._queue_depth += 1
        METRICS.counter("governor.queued").inc()
        METRICS.gauge("governor.queue_depth").set(self._queue_depth)
        waited = 0.0
        started = time.monotonic()
        try:
            while self._in_flight >= config.max_concurrency:
                if self._closed:
                    raise AdmissionRejectedError(
                        "governor is shut down", reason="shutdown"
                    )
                self._check_queued_token(token, started)
                if waited >= config.queue_timeout_seconds:
                    break
                self._condition.wait(0.05)
                waited = time.monotonic() - started
            # A slot is free — but a query whose deadline expired while
            # it was queued must not be dispatched with zero remaining
            # budget; it would only burn the slot and then cancel at the
            # first cooperative checkpoint.
            self._check_queued_token(token, started)
            if self._in_flight < config.max_concurrency:
                self._in_flight += 1
                return self._granted(
                    _Admission(
                        self.breaker.floor_level(),
                        queued_seconds=time.monotonic() - started,
                    )
                )
        finally:
            self._queue_depth -= 1
            METRICS.gauge("governor.queue_depth").set(self._queue_depth)
        # The governor's own queue patience ran out: shed.  This one is
        # system pressure, so it feeds the breaker.
        self._rejected += 1
        METRICS.counter("governor.rejected").inc()
        self.breaker.record(False)
        raise AdmissionRejectedError(
            f"queued {waited:.2f}s without an execution slot "
            f"(queue_timeout_seconds={config.queue_timeout_seconds})",
            reason="queue_timeout",
        )

    def _check_queued_token(
        self, token: CancelToken, started: float
    ) -> None:
        """Resolve a queued entry whose token fired, each way typed.

        The caller's *deadline* expiring while queued is a typed
        rejection (``queue_deadline_expired``) — the client already gave
        up, so the honest outcome is "never ran", not "ran and then
        cancelled".  An *explicit* cancel (REPL Ctrl-C, client
        disconnect) surfaces as
        :class:`~repro.errors.QueryCancelledError`.  Neither is recorded
        as a breaker failure: both are the caller's budget, not system
        pressure.
        """
        if token.expired:
            with_queue = time.monotonic() - started
            self._rejected += 1
            METRICS.counter("governor.rejected").inc()
            METRICS.counter("governor.queue_deadline_expired").inc()
            raise AdmissionRejectedError(
                f"deadline expired after {with_queue:.2f}s in the "
                "admission queue; the query never executed",
                reason="queue_deadline_expired",
            )
        if token.cancelled:
            METRICS.counter("governor.queue_cancelled").inc()
        token.check()

    def _granted(self, admission: _Admission) -> _Admission:
        self._admitted += 1
        self._level_counts[admission.level.label] += 1
        METRICS.counter("governor.admitted").inc()
        METRICS.counter(f"governor.level.{admission.level.label}").inc()
        return admission

    def _release_slot(self, admission: _Admission) -> None:
        with self._condition:
            self._in_flight -= 1
            if admission.overflow:
                self._overflow_in_flight -= 1
            self._condition.notify_all()

    # -- execution ---------------------------------------------------------
    def execute(
        self,
        sql: str,
        timeout: float | None = None,
        cancel: CancelToken | None = None,
        **kwargs,
    ):
        """Admit and execute ``sql``, honestly degraded under load.

        Args:
            sql: the query text.
            timeout: hard per-query deadline in seconds; past it the
                query is cooperatively cancelled
                (:class:`~repro.errors.QueryCancelledError`).  Ignored
                when ``cancel`` already carries a deadline.
            cancel: an external cancellation token (e.g. wired to a
                client disconnect).
            **kwargs: forwarded to
                :meth:`~repro.core.pipeline.AQPEngine.execute` —
                including ``within``, the bounded-query contract.  A
                planned (WITHIN) query reserves memory for the
                planner-chosen sample prefix and replicate count rather
                than the full fixed budget: the per-operator
                reservations flow through the shared
                :class:`~repro.core.memory.MemoryAccountant` at the
                actual ``n × K`` the plan selected, so admission-time
                pressure reflects planned cost, not worst-case cost.

        Raises:
            AdmissionRejectedError: the query was shed at admission.
            QueryCancelledError: the token fired mid-flight.
        """
        if cancel is not None:
            token = cancel
        elif timeout is not None:
            token = CancelToken.with_timeout(timeout)
        elif self.config.default_timeout_seconds is not None:
            token = CancelToken.with_timeout(
                self.config.default_timeout_seconds
            )
        else:
            token = CancelToken()
        token.check()
        admission = self._admit(token)
        engine = None
        ok = False
        try:
            engine = self._checkout_engine(token)
            result = engine.execute(
                sql,
                cancel=token,
                degradation=admission.level,
                **kwargs,
            )
            report = result.execution_report
            # A query admitted at a reduced level that came back degraded
            # executed exactly as planned; only *unplanned* degradation
            # (admitted FULL, returned degraded) signals pressure to the
            # breaker — otherwise overflow admissions would feed the
            # breaker the very degradation it causes and never recover.
            planned = admission.level > DegradationLevel.FULL
            ok = planned or report is None or not report.degraded
            with self._condition:
                self._completed += 1
            return result
        except ResourceError:
            with self._condition:
                self._errors += 1
            raise
        except ReproError:
            # SQL/plan errors are the caller's fault, not load: count
            # them as completed work so they cannot trip the breaker.
            ok = True
            with self._condition:
                self._errors += 1
            raise
        finally:
            if engine is not None:
                self._checkin_engine(engine)
            self._release_slot(admission)
            self.breaker.record(ok)
            update_resident_gauge()

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly account of admissions, shedding, and pressure."""
        with self._condition:
            counts = {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "errors": self._errors,
                "in_flight": self._in_flight,
                "queue_depth": self._queue_depth,
                "levels": dict(self._level_counts),
                "quality_breaches": self._quality_breaches,
            }
        counts["breaker"] = self.breaker.snapshot()
        counts["memory"] = self.memory.snapshot()
        return counts
