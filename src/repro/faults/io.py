"""Deterministic storage-fault injection for the catalog's persistence.

The worker fault domain (:mod:`repro.faults.plan`) binds faults to task
indices; the storage domain binds them to *save operations* — the N-th
artifact a process persists.  :class:`StorageFaultInjector` owns that
counter: the catalog store asks it, once per save, what should go wrong,
and the same :class:`~repro.faults.plan.FaultPlan` therefore fires the
same schedule on every run — the property the chaos harness relies on to
replay a failing seed.

Faults model the classic durable-storage failure modes:

* **torn** — the payload write is truncated to a prefix.  The checksum
  recorded at stage time covers the intended bytes, so the loader's CRC
  verification is exactly the mechanism that must catch the tear.
* **bitflip** — one byte of the payload is flipped (seeded choice),
  modelling latent media corruption that fsync cannot prevent.
* **enospc** — the write raises ``OSError(ENOSPC)``; persistence must
  degrade (artifact skipped, query unaffected), never crash the engine.
* **slowdisk** — every fsync stalls, turning the storage path into a
  straggler the hedging/timeout machinery has to tolerate.
* **crashpromote** — the save aborts after staging, before promotion,
  leaving orphaned ``staging/`` files for the startup sweep.
"""

from __future__ import annotations

import errno
import logging
import time
from typing import Optional

import numpy as np

from repro.errors import StorageUnavailableError
from repro.faults.plan import FaultPlan

logger = logging.getLogger(__name__)

__all__ = ["StorageFaultInjector"]


class StorageFaultInjector:
    """Per-store counter that fires a plan's storage faults in order.

    One injector is owned by one catalog store; its save-operation
    counter increments on every :meth:`begin_save`, so ``torn@2`` means
    "the third artifact this store persists".

    Args:
        plan: the active fault schedule, or ``None`` (no-op injector).
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self._op = 0

    @property
    def active(self) -> bool:
        return self.plan is not None and self.plan.has_storage_faults()

    def begin_save(self) -> int:
        """Allocate the next save-operation index."""
        op = self._op
        self._op += 1
        return op

    # -- per-phase hooks ---------------------------------------------------
    def corrupt_payload(self, op: int, data: bytes) -> bytes:
        """Apply any torn/bitflip fault for ``op`` to the payload bytes.

        ENOSPC also fires here — a full disk fails the write itself.
        """
        if self.plan is None:
            return data
        spec = self.plan.storage_fault_for(op)
        if spec is None:
            return data
        if spec.kind == "enospc":
            logger.warning("injected ENOSPC firing on save op %d", op)
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if spec.kind == "torn":
            torn = data[: max(1, len(data) // 2)]
            logger.warning(
                "injected torn write on save op %d (%d of %d bytes)",
                op,
                len(torn),
                len(data),
            )
            return torn
        if spec.kind == "bitflip":
            if not data:
                return data
            seed_seq = np.random.SeedSequence([self.plan.seed, 0xB17, op])
            position = int(seed_seq.generate_state(1)[0] % len(data))
            flipped = bytearray(data)
            flipped[position] ^= 0xFF
            logger.warning(
                "injected bit flip on save op %d at byte %d", op, position
            )
            return bytes(flipped)
        return data

    def before_promote(self, op: int) -> None:
        """Fire a crash-between-stage-and-promote fault for ``op``.

        Raised as :class:`~repro.errors.StorageUnavailableError` so the
        save aborts with the staged files left in place — from the
        store's point of view, indistinguishable from a process that
        died in the stage→promote window and restarted.
        """
        if self.plan is None:
            return
        spec = self.plan.storage_fault_for(op)
        if spec is not None and spec.kind == "crashpromote":
            logger.warning(
                "injected crash between staging and promote on save op %d", op
            )
            raise StorageUnavailableError(
                f"injected crash between staging and promote (save op {op})"
            )

    def fsync_delay(self) -> None:
        """Apply the plan's slow-disk stall to one fsync."""
        if self.plan is None:
            return
        delay = self.plan.fsync_delay_seconds()
        if delay > 0:
            time.sleep(delay)
