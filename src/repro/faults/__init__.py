"""Deterministic fault injection for fault-tolerance tests and experiments.

The paper's thesis — *know when you're wrong* — extends to the execution
layer: a partially failed bootstrap must surface as honestly widened
error bars, never as a silent wrong answer or a spurious crash.  This
package provides the seedable :class:`FaultPlan` schedules that let unit
tests and §6-style failure experiments drive the exact same worker
crashes, hangs, shared-memory failures, and pickling failures through
:mod:`repro.parallel` and the cluster simulator.
"""

from repro.faults.io import StorageFaultInjector
from repro.faults.plan import (
    CRASH_EXIT_CODE,
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    resolve_fault_plan,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "StorageFaultInjector",
    "resolve_fault_plan",
]
