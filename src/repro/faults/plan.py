"""Deterministic fault injection for the execution layer.

A :class:`FaultPlan` is a seedable, picklable schedule of failures:
*crash on task N*, *hang for T seconds on task N*, *fail shared-memory
allocation*, *fail payload pickling*, or *crash a seeded fraction of all
tasks*.  The plan travels inside task payloads, so the same schedule
fires identically whether a unit runs inline in the parent or inside a
real worker process:

* **crash** — in a real worker process the plan calls ``os._exit``;
  the parent observes a lost task, exactly like a SIGKILLed worker.
  Inline, the plan raises :class:`~repro.errors.WorkerCrashError`
  instead, which the supervised runner treats identically.
* **hang** — in a worker the plan sleeps for the configured duration
  and the parent's per-task deadline fires.  Inline (where a sleep
  cannot be preempted) a hang longer than the active task timeout is
  simulated by raising :class:`~repro.errors.TaskTimeoutError`; shorter
  hangs really sleep, modelling a straggler.
* **shm / pickle** — fail every shared-memory allocation or the
  pre-dispatch pickling probe, forcing the fan-out onto its fallback
  paths (payload-embedded arrays / inline execution).

Faults carry an ``attempt`` filter (default: first attempt only), so a
retried task succeeds and results stay bit-identical to a clean run —
the property the fault-tolerance tests assert.  ``attempt=None`` makes
a fault fire on every attempt, which is how permanent failures and the
pool's terminal inline degradation are exercised.

The same schedules drive the cluster simulator:
:meth:`FaultPlan.simulated_task_delays` converts task faults into extra
per-task seconds (re-execution after detection for crashes, stall time
for hangs) for §6-style straggler/failure experiments.

Beyond the worker domain, plans also schedule **storage (I/O) faults**
— torn writes, bit flips, ENOSPC, slow-disk fsync stalls, and crashes
between staging and promotion — fired against the catalog's persistence
layer by :class:`~repro.faults.io.StorageFaultInjector` with the same
determinism contract: the N-th save operation of a store fails the same
way on every run of the same plan.

Plans are activated programmatically via ``EngineConfig.fault_plan`` or
from the environment via ``REPRO_FAULTS`` (see :func:`FaultPlan.from_spec`
for the spec grammar).
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import TaskTimeoutError, WorkerCrashError

logger = logging.getLogger(__name__)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "resolve_fault_plan",
]

#: Environment variable holding a fault spec string (see
#: :func:`FaultPlan.from_spec`); read once per engine query.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code used for injected hard crashes in real worker processes,
#: so an unexpected worker death in CI logs is recognisable as injected.
CRASH_EXIT_CODE = 86

#: Worker-domain fault kinds understood by :meth:`FaultPlan.apply`.
_WORKER_KINDS = ("crash", "hang", "shm", "pickle")

#: Storage-domain (I/O) fault kinds, fired by the catalog's
#: :class:`~repro.faults.io.StorageFaultInjector` instead of the task
#: supervisor.  ``task`` doubles as the *save-operation* index here
#: (the N-th artifact persisted through one injector).
_IO_KINDS = ("torn", "bitflip", "enospc", "slowdisk", "crashpromote")

_KINDS = _WORKER_KINDS + _IO_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: ``"crash"``, ``"hang"``, ``"shm"``, or ``"pickle"``.
        task: logical task index the fault binds to (``None`` for
            site-wide faults like shm/pickle, or rate-based crashes).
        attempt: attempt number the fault fires on (``0`` = first try,
            so a retry recovers); ``None`` fires on every attempt.
        seconds: hang duration.
        rate: crash probability per task for rate-based faults
            (seeded; deterministic per task index).
        worker_only: fire only inside a real worker process — lets a
            test crash the pool repeatedly while the inline fallback
            path stays healthy.
    """

    kind: str
    task: int | None = None
    attempt: int | None = 0
    seconds: float = 0.0
    rate: float | None = None
    worker_only: bool = False

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.seconds < 0:
            raise ValueError(
                f"fault duration must be >= 0, got {self.seconds}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of injected faults.

    Build plans fluently::

        plan = (
            FaultPlan(seed=7)
            .with_crash(task=2)
            .with_hang(task=5, seconds=0.5)
            .with_crash_rate(0.05)
        )

    The plan records the constructing process's pid so that, after
    travelling (pickled) into a worker, :meth:`apply` can tell a real
    worker process from inline execution and pick the right failure
    mode (hard exit vs raised exception).
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    parent_pid: int = field(default_factory=os.getpid)

    # -- construction ------------------------------------------------------
    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        return replace(self, specs=(*self.specs, spec))

    def with_crash(
        self,
        task: int,
        attempt: int | None = 0,
        worker_only: bool = False,
    ) -> "FaultPlan":
        """Crash (hard-exit in a worker, raise inline) on ``task``."""
        return self.with_spec(
            FaultSpec(
                kind="crash", task=task, attempt=attempt,
                worker_only=worker_only,
            )
        )

    def with_hang(
        self, task: int, seconds: float, attempt: int | None = 0
    ) -> "FaultPlan":
        """Stall ``task`` for ``seconds`` (timeout fires if configured)."""
        return self.with_spec(
            FaultSpec(kind="hang", task=task, attempt=attempt, seconds=seconds)
        )

    def with_crash_rate(self, rate: float) -> "FaultPlan":
        """Crash a seeded ``rate`` fraction of tasks (first attempt only)."""
        return self.with_spec(FaultSpec(kind="crash", task=None, rate=rate))

    def with_shm_failure(self) -> "FaultPlan":
        """Fail every shared-memory allocation (forces payload embedding)."""
        return self.with_spec(FaultSpec(kind="shm", attempt=None))

    def with_pickle_failure(self) -> "FaultPlan":
        """Fail the pre-dispatch pickling probe (forces inline execution)."""
        return self.with_spec(FaultSpec(kind="pickle", attempt=None))

    # -- storage (I/O) fault domain ----------------------------------------
    def with_torn_write(self, op: int | None = None) -> "FaultPlan":
        """Truncate the payload of save-operation ``op`` (torn write).

        The checksum recorded at stage time covers the *intended*
        bytes, so the tear is exactly the latent corruption the loader's
        CRC verification must catch.  ``None`` tears every save.
        """
        return self.with_spec(FaultSpec(kind="torn", task=op, attempt=None))

    def with_bitflip(self, op: int | None = None) -> "FaultPlan":
        """Flip one seeded byte of save-operation ``op``'s payload."""
        return self.with_spec(FaultSpec(kind="bitflip", task=op, attempt=None))

    def with_enospc(self, op: int | None = None) -> "FaultPlan":
        """Fail save-operation ``op`` with ENOSPC (``None`` — every save)."""
        return self.with_spec(FaultSpec(kind="enospc", task=op, attempt=None))

    def with_slow_disk(self, seconds: float) -> "FaultPlan":
        """Delay every fsync by ``seconds`` (slow-disk straggler)."""
        return self.with_spec(
            FaultSpec(kind="slowdisk", attempt=None, seconds=seconds)
        )

    def with_crash_between_stage_and_promote(
        self, op: int | None = None
    ) -> "FaultPlan":
        """Abort save-operation ``op`` after staging, before promotion.

        Models a process crash in the stage→promote window: the staged
        files are left behind (the startup sweep's job) and ``ready/``
        never observes the entry.
        """
        return self.with_spec(
            FaultSpec(kind="crashpromote", task=op, attempt=None)
        )

    # -- parsing -----------------------------------------------------------
    @classmethod
    def from_spec(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string into a plan.

        Grammar (comma-separated, whitespace ignored)::

            crash@N          crash task N on its first attempt
            crash@N:A        crash task N on attempt A ('*' = every attempt)
            crash@N!worker   crash task N only in real worker processes
            hang@N:T         stall task N for T seconds (first attempt)
            rate:P           crash a seeded fraction P of tasks
            shm              fail every shared-memory allocation
            pickle           fail the pre-dispatch pickling probe

        Storage (I/O) domain — ``N`` is the save-operation index::

            torn@N           truncate save N's payload (torn write)
            bitflip@N        flip one seeded byte of save N's payload
            enospc[@N]       fail save N (or every save) with ENOSPC
            slowdisk:T       delay every fsync by T seconds
            crashpromote@N   abort save N between staging and promote

        Example:
        ``REPRO_FAULTS="crash@2,hang@5:0.5,torn@0,slowdisk:0.01"``.
        """
        plan = cls(seed=seed)
        for raw_token in text.split(","):
            token = raw_token.strip()
            if not token:
                continue
            worker_only = token.endswith("!worker")
            if worker_only:
                token = token[: -len("!worker")]
            if token == "shm":
                plan = plan.with_shm_failure()
            elif token == "pickle":
                plan = plan.with_pickle_failure()
            elif token.startswith("rate:"):
                plan = plan.with_crash_rate(float(token[len("rate:"):]))
            elif token.startswith("crash@"):
                body = token[len("crash@"):]
                task_text, _, attempt_text = body.partition(":")
                attempt: int | None = 0
                if attempt_text:
                    attempt = (
                        None if attempt_text == "*" else int(attempt_text)
                    )
                plan = plan.with_crash(
                    int(task_text), attempt=attempt, worker_only=worker_only
                )
            elif token.startswith("hang@"):
                body = token[len("hang@"):]
                task_text, _, seconds_text = body.partition(":")
                if not seconds_text:
                    raise ValueError(
                        f"hang fault needs a duration: {raw_token.strip()!r} "
                        "(use hang@N:SECONDS)"
                    )
                plan = plan.with_hang(int(task_text), float(seconds_text))
            elif token.startswith("torn@"):
                plan = plan.with_torn_write(int(token[len("torn@"):]))
            elif token.startswith("bitflip@"):
                plan = plan.with_bitflip(int(token[len("bitflip@"):]))
            elif token == "enospc":
                plan = plan.with_enospc()
            elif token.startswith("enospc@"):
                plan = plan.with_enospc(int(token[len("enospc@"):]))
            elif token.startswith("slowdisk:"):
                plan = plan.with_slow_disk(float(token[len("slowdisk:"):]))
            elif token.startswith("crashpromote@"):
                plan = plan.with_crash_between_stage_and_promote(
                    int(token[len("crashpromote@"):])
                )
            else:
                raise ValueError(
                    f"unparseable fault token {raw_token.strip()!r}; expected "
                    "crash@N[:A][!worker], hang@N:T, rate:P, shm, pickle, "
                    "torn@N, bitflip@N, enospc[@N], slowdisk:T, or "
                    "crashpromote@N"
                )
        return plan

    # -- interrogation -----------------------------------------------------
    @property
    def in_worker(self) -> bool:
        """Whether the current process is a worker, not the plan's parent."""
        return os.getpid() != self.parent_pid

    def _rate_hits(self, index: int, rate: float) -> bool:
        """Seeded, per-index deterministic draw for rate-based faults."""
        state = np.random.SeedSequence([self.seed, index]).generate_state(1)[0]
        return state / 2**32 < rate

    def _matches(self, spec: FaultSpec, index: int, attempt: int) -> bool:
        if spec.worker_only and not self.in_worker:
            return False
        if spec.attempt is not None and spec.attempt != attempt:
            return False
        if spec.rate is not None:
            return attempt == 0 and self._rate_hits(index, spec.rate)
        return spec.task is None or spec.task == index

    def fails_pickling(self) -> bool:
        """Whether the pre-dispatch pickling probe should fail."""
        return any(spec.kind == "pickle" for spec in self.specs)

    def fails_shm(self) -> bool:
        """Whether shared-memory allocation should fail."""
        return any(spec.kind == "shm" for spec in self.specs)

    def has_storage_faults(self) -> bool:
        """Whether this plan schedules any storage-domain fault."""
        return any(spec.kind in _IO_KINDS for spec in self.specs)

    def fsync_delay_seconds(self) -> float:
        """Total slow-disk delay applied to each fsync (0 when none)."""
        return sum(
            spec.seconds for spec in self.specs if spec.kind == "slowdisk"
        )

    def storage_fault_for(self, op: int) -> FaultSpec | None:
        """The corruption/availability fault bound to save-operation ``op``.

        Returns the first ``torn``/``bitflip``/``enospc``/``crashpromote``
        spec whose index matches ``op`` (``task=None`` matches every
        save), or ``None``.  Slow-disk is a pacing fault, not a per-op
        one, and is reported by :meth:`fsync_delay_seconds` instead.
        """
        for spec in self.specs:
            if spec.kind not in ("torn", "bitflip", "enospc", "crashpromote"):
                continue
            if spec.task is None or spec.task == op:
                return spec
        return None

    # -- execution-time injection ------------------------------------------
    def apply(
        self,
        index: int,
        attempt: int,
        timeout: float | None = None,
    ) -> None:
        """Fire any task fault scheduled for ``(index, attempt)``.

        Crashes hard-exit real worker processes (the parent sees a lost
        task) and raise :class:`WorkerCrashError` inline.  Hangs sleep
        in workers; inline they sleep when shorter than ``timeout`` and
        raise :class:`TaskTimeoutError` when they would exceed it.
        """
        for spec in self.specs:
            if spec.kind not in ("crash", "hang"):
                continue
            if not self._matches(spec, index, attempt):
                continue
            if spec.kind == "crash":
                logger.warning(
                    "injected crash firing on task %d (attempt %d, %s)",
                    index,
                    attempt,
                    "worker" if self.in_worker else "inline",
                )
                if self.in_worker:
                    os._exit(CRASH_EXIT_CODE)
                raise WorkerCrashError(
                    f"injected worker crash on task {index} "
                    f"(attempt {attempt})"
                )
            logger.warning(
                "injected hang of %gs firing on task %d (attempt %d)",
                spec.seconds,
                index,
                attempt,
            )
            if self.in_worker or timeout is None or spec.seconds <= timeout:
                time.sleep(spec.seconds)
            else:
                raise TaskTimeoutError(
                    f"injected hang of {spec.seconds:g}s on task {index} "
                    f"exceeds the {timeout:g}s task deadline "
                    f"(attempt {attempt})"
                )

    # -- cluster-simulator view --------------------------------------------
    def simulated_task_delays(
        self,
        num_tasks: int,
        per_task_seconds: float,
        detection_seconds: float,
    ) -> tuple[np.ndarray, int]:
        """Extra seconds each simulated task loses to this plan.

        A crashed task pays a detection delay (the supervisor noticing
        the loss) plus one full re-execution; a hung task stalls for its
        configured duration before completing.  Rate-based crashes use
        the plan's seed, so the same schedule that drives the in-process
        tests prices the same §6-style experiment in the simulator.

        Returns:
            ``(extra_seconds, faulted_tasks)`` — per-task delay vector
            and how many tasks were hit.
        """
        extra = np.zeros(num_tasks, dtype=np.float64)
        faulted = set()
        crash_cost = detection_seconds + per_task_seconds
        for spec in self.specs:
            if spec.kind == "crash":
                if spec.rate is not None:
                    for index in range(num_tasks):
                        if self._rate_hits(index, spec.rate):
                            extra[index] += crash_cost
                            faulted.add(index)
                elif spec.task is not None and spec.task < num_tasks:
                    extra[spec.task] += crash_cost
                    faulted.add(spec.task)
            elif spec.kind == "hang":
                if spec.task is not None and spec.task < num_tasks:
                    extra[spec.task] += spec.seconds
                    faulted.add(spec.task)
        return extra, len(faulted)


def resolve_fault_plan(explicit: FaultPlan | None = None) -> FaultPlan | None:
    """An explicitly configured plan, else one parsed from ``REPRO_FAULTS``.

    Returns ``None`` when fault injection is inactive (the common case:
    no configured plan and an empty/unset environment variable).
    """
    if explicit is not None:
        return explicit
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return None
    return FaultPlan.from_spec(text)
