"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL frontend."""


class TokenizeError(SqlError):
    """The query text could not be tokenized.

    Attributes:
        position: character offset in the query text where tokenization
            failed, or ``None`` when unknown.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """The token stream did not match the supported SQL grammar."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class AnalysisError(SqlError):
    """The query parsed but failed semantic analysis.

    Examples: unknown column, unknown function, aggregate nested inside
    another aggregate, or GROUP BY referencing a missing column.
    """


class SchemaError(ReproError):
    """A table or column definition is invalid or inconsistent."""


class ExecutionError(ReproError):
    """A physical plan failed while executing."""


class WorkerCrashError(ExecutionError):
    """A worker process died (or was simulated to die) mid-task.

    Raised inline for injected crashes; real worker deaths surface in
    the parent as a lost task and are re-raised under this type by the
    supervised pool after retries are exhausted.
    """


class TaskTimeoutError(ExecutionError):
    """A dispatched task exceeded its per-task or per-query deadline."""


class DegradedResultWarning(UserWarning):
    """A query completed, but in a degraded (honestly reported) mode.

    Emitted when part of the bootstrap or diagnostic work failed and the
    engine computed the answer from what completed — wider error bars,
    reduced diagnostic evidence, or an explicitly unreliable point
    estimate.  The accompanying
    :class:`~repro.parallel.supervise.ExecutionReport` carries the
    details; the warning exists so no degraded answer is ever silent.
    """


class PlanError(ReproError):
    """A logical plan could not be built, rewritten, or lowered."""


class BoundUnachievableError(PlanError):
    """No execution plan can meet a query's WITHIN bound — a typed refusal.

    Raised by the cost planner *before* any expensive work happens when
    even the largest available sample (for error bounds) or the cheapest
    viable plan (for time budgets) cannot deliver the requested
    contract.  The refusal is honest and actionable: it carries the
    minimum bound the engine *could* achieve, so the caller can resubmit
    with a feasible target.

    Attributes:
        kind: which bound was infeasible — ``"relative"``,
            ``"absolute"``, or ``"time"``.
        requested: the requested bound (error fraction, absolute error,
            or seconds).
        achievable: the minimum bound the engine predicts it can meet
            with the resources it has, in the same units as
            ``requested``, or ``None`` when unknown.
    """

    def __init__(
        self,
        message: str,
        kind: str = "relative",
        requested: float | None = None,
        achievable: float | None = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.requested = requested
        self.achievable = achievable


class EstimationError(ReproError):
    """An error-estimation procedure could not produce an interval.

    Raised, for example, when a closed form is requested for an aggregate
    that has no known closed-form variance estimate.
    """


class DiagnosticError(ReproError):
    """The diagnostic could not be run with the requested parameters.

    Raised, for example, when the sample is too small to be partitioned
    into ``p`` disjoint subsamples of the largest subsample size.
    """


class ResourceError(ReproError):
    """Base class for resource-governance failures (:mod:`repro.governor`).

    These errors are *policy*, not bugs: the query governor refused,
    curtailed, or interrupted work to keep the process alive and honest
    under load.  Catch :class:`ResourceError` to handle "the system is
    protecting itself" distinctly from SQL or execution failures.
    """


class ResourceExhaustedError(ResourceError):
    """A memory (or other resource) reservation could not be satisfied.

    Raised *before* any allocation happens: the
    :class:`~repro.governor.memory.MemoryAccountant` reserves the full
    footprint of an operation up front, so rejection never strands a
    partially built weight matrix or shared-memory segment.

    Attributes:
        requested_bytes: size of the reservation that failed, or ``None``.
    """

    def __init__(self, message: str, requested_bytes: int | None = None):
        super().__init__(message)
        self.requested_bytes = requested_bytes


class QueryCancelledError(ResourceError):
    """A query was cooperatively cancelled mid-flight.

    Raised at the next stage/batch boundary after a
    :class:`~repro.governor.cancel.CancelToken` fires (caller cancel,
    CLI ``--timeout``, REPL Ctrl-C).  Cleanup is guaranteed: shared
    memory is released and no worker is left stuck.
    """


class AdmissionRejectedError(ResourceError):
    """The governor (or serving tier) refused to admit a query.

    Raised when the admission queue is full, the queue wait exceeded
    its deadline, a tenant exceeded its quota, or the server is
    draining.  The caller should back off and retry after
    ``retry_after_seconds`` when one is given.

    Attributes:
        reason: short machine-readable rejection category —
            ``"shutdown"``, ``"no_capacity"``, ``"queue_full"``,
            ``"queue_timeout"``, ``"queue_deadline_expired"``,
            ``"rate_limited"``, ``"tenant_concurrency"``,
            ``"deadline_expired"``, ``"draining"``, ...
        retry_after_seconds: server-computed backoff hint (from queue
            depth, rate-window remainder, breaker cooldown, or drain
            budget), or ``None`` when retrying is pointless.
    """

    def __init__(
        self,
        message: str,
        reason: str = "rejected",
        retry_after_seconds: float | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


class ProtocolError(ReproError):
    """A malformed, oversized, or out-of-contract serving-tier message.

    Raised by :mod:`repro.serve.protocol` when a line cannot be decoded
    (bad JSON, missing ``op``, over the line-length cap).  Surfaced to
    the client as an ``ok: false`` response with ``error:
    "bad_request"`` — a broken client must never crash the server or
    affect other tenants.
    """


class StorageError(ReproError):
    """Base class for durable-storage failures (catalog persistence).

    The materialized catalog is the only durable state the engine owns;
    these errors are how the storage fault domain stays *typed* — a
    corrupted or unavailable artifact must surface as a catalog miss or
    a :class:`StorageError`, never as a silently wrong served answer.
    """


class CorruptArtifactError(StorageError):
    """A persisted artifact failed its integrity check at load time.

    Raised (and caught by the catalog loader, which quarantines the
    artifact) when a payload is truncated, its CRC does not match the
    checksum recorded at stage time, its sidecar metadata is missing or
    inconsistent, or its schema version is unsupported.

    Attributes:
        path: filesystem path of the offending artifact, or ``None``.
        reason: short machine-readable failure category (``"truncated"``,
            ``"crc_mismatch"``, ``"meta_missing"``, ...).
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        reason: str = "corrupt",
    ):
        super().__init__(message)
        self.path = path
        self.reason = reason


class StorageUnavailableError(StorageError):
    """The storage layer refused or failed a write (ENOSPC, I/O error).

    Persistence is best-effort for the catalog: callers catch this,
    count it, and continue serving from memory — a full disk must never
    fail a query, only its materialization.
    """


class SamplingError(ReproError):
    """A sampling or resampling operation received invalid parameters."""


class CatalogError(ReproError):
    """A table or sample lookup failed in the catalog."""


class SimulationError(ReproError):
    """The cluster simulator was configured or driven incorrectly."""
