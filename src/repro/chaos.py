"""Chaos harness: seeded fault schedules against the full stack.

``python -m repro.chaos`` runs the Conviva dashboard mix through real
engines while a seeded, randomized :class:`~repro.faults.FaultPlan`
injects *both* fault domains at once — worker crashes, hangs, shm and
pickling failures on the compute side; torn writes, bit flips, ENOSPC,
slow fsync, and stage→promote crashes on the storage side — plus
direct at-rest corruption of promoted catalog artifacts between engine
generations.  After every schedule it asserts the repo's cross-cutting
invariants:

* **Honesty** — a chaos answer may differ from the clean baseline only
  if it is flagged (degraded, fell back, or raised a typed
  :class:`~repro.errors.ReproError`).  A silent difference is the one
  unforgivable outcome.
* **Bit-identity where promised** — an unflagged chaos answer must be
  *byte-for-byte* the baseline answer: recovered retries, hedged
  backups, shm fallbacks, and quarantined-cube cold serves all promise
  identical results.
* **Replay consistency** — an exact catalog hit replays the very
  answer that was stored.
* **Zero orphaned shm segments** and **zero orphaned staging files**
  once the last engine is closed and the next engine has swept.
* **Zero leaked memory reservations** — every engine's accountant
  returns to zero bytes after close.
* **The governor never deadlocks** — concurrent admissions against the
  chaotic catalog finish within a wall-clock watchdog.

A second family of schedules (``--serving-seeds``) attacks the
network serving tier (:mod:`repro.serve`) with *client and connection*
faults — disconnects mid-poll, pathologically slow readers, a tenant
flooding far past its quota, and a graceful drain fired in the middle
of the burst — and asserts the serving-tier restatement of honesty:
**every accepted query resolves** to a result, a typed rejection, or
an honest cancellation; never silence.  All other invariants (typed
errors only, zero shm orphans, zero leaked reservations, no staging
leftovers in the journal) apply unchanged.

Every violation is recorded in a machine-readable invariant report
(``--out``); the process exits non-zero if any schedule violated any
invariant.  Schedules are pure functions of their seed, so a failing
seed replays exactly.
"""

from __future__ import annotations

import argparse
import glob
import json
import logging
import os
import shutil
import sys
import tempfile
import threading
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.catalog.store import CatalogConfig
from repro.core.pipeline import AQPEngine, AQPResult, EngineConfig
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.governor.admission import GovernorConfig, QueryGovernor
from repro.governor.memory import MemoryAccountant
from repro.parallel.shm import SEGMENT_PREFIX
from repro.workloads.conviva import conviva_dashboard_mix
from repro.workloads.datagen import conviva_sessions_table

__all__ = [
    "ChaosReport",
    "ScheduleResult",
    "ServingScheduleResult",
    "Violation",
    "main",
    "random_fault_plan",
    "run_schedule",
    "run_serving_schedule",
]

#: Seed-domain tag for schedule randomization (decoupled from every
#: engine and cube stream).
_CHAOS_SEED_DOMAIN = 0xC4A05

#: Engine seed shared by baseline and chaos runs — bit-identity only
#: means anything when both runs draw the same streams.
_ENGINE_SEED = 7

#: Wall-clock watchdog for the governor deadlock check.
_GOVERNOR_WATCHDOG_SECONDS = 60.0

_TABLE = "media_sessions"


@dataclass
class Violation:
    """One broken invariant in one schedule."""

    seed: int
    invariant: str
    detail: str


@dataclass
class ScheduleResult:
    """Outcome of one seeded schedule."""

    seed: int
    fault_spec: str
    queries: int = 0
    typed_errors: int = 0
    flagged: int = 0
    identical: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    quarantined: int = 0
    staging_swept: int = 0
    elapsed_seconds: float = 0.0
    violations: list[Violation] = field(default_factory=list)


@dataclass
class ServingScheduleResult:
    """Outcome of one seeded serving-tier (client-fault) schedule."""

    seed: int
    submitted: int = 0
    accepted: int = 0
    completed: int = 0
    rejected_typed: int = 0
    cancelled: int = 0
    shared: int = 0
    disconnects: int = 0
    slow_reads: int = 0
    flood_rejections: int = 0
    drained_at_depth: int = 0
    elapsed_seconds: float = 0.0
    violations: list[Violation] = field(default_factory=list)


@dataclass
class ChaosReport:
    """Machine-readable invariant report for a full run."""

    seeds: list[int]
    schedules: list[ScheduleResult]
    total_queries: int
    total_violations: int
    serving_schedules: list[ServingScheduleResult] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["ok"] = self.ok
        return payload


def _fingerprint(result: AQPResult) -> tuple:
    """Byte-comparable identity of an answer (groups, estimates, CIs)."""
    rows = []
    for row in result.rows:
        values = []
        for name in sorted(row.values):
            value = row.values[name]
            interval = (
                None
                if value.interval is None
                else (value.interval.estimate, value.interval.half_width)
            )
            values.append(
                (name, value.estimate, interval, value.method, value.fell_back)
            )
        rows.append((tuple(sorted(row.group.items())), tuple(values)))
    return tuple(rows)


def _flagged(result: AQPResult, warned: bool) -> bool:
    """Whether the answer announces that it is less than full fidelity."""
    report = result.execution_report
    if report is not None and (report.degraded or report.fallbacks):
        return True
    if any(v.fell_back for row in result.rows for v in row.values.values()):
        return True
    return warned


def _execute(engine: AQPEngine, sql: str):
    """Run one query, capturing degradation warnings and typed errors.

    Returns ``(result_or_None, warned, error_or_None)``.
    """
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            result = engine.execute(sql)
        except ReproError as error:
            return None, False, error
    return result, bool(caught), None


def random_fault_plan(seed: int, save_ops: int = 3) -> FaultPlan:
    """A seeded schedule mixing worker and storage faults.

    Pure function of ``seed`` — replaying a seed replays its schedule.
    Worker faults stay mostly first-attempt (the recoverable kind the
    bit-identity promise covers), with an occasional every-attempt
    crash to exercise honest permanent degradation.  Storage faults
    target the first few save operations, which is where the chaos
    run's materializations land.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([_CHAOS_SEED_DOMAIN, seed])
    )
    plan = FaultPlan(seed=seed)
    # -- worker domain --
    for _ in range(int(rng.integers(0, 3))):
        plan = plan.with_crash(int(rng.integers(0, 8)))
    if rng.random() < 0.5:
        plan = plan.with_hang(
            int(rng.integers(0, 8)), float(rng.uniform(0.1, 0.4))
        )
    if rng.random() < 0.3:
        plan = plan.with_crash_rate(float(rng.uniform(0.02, 0.15)))
    if rng.random() < 0.25:
        # Permanent: fails every attempt; the answer must degrade
        # honestly instead of silently shifting.
        plan = plan.with_crash(int(rng.integers(0, 8)), attempt=None)
    if rng.random() < 0.2:
        plan = plan.with_shm_failure()
    if rng.random() < 0.1:
        plan = plan.with_pickle_failure()
    # -- storage domain --
    for op in range(save_ops):
        roll = rng.random()
        if roll < 0.2:
            plan = plan.with_torn_write(op)
        elif roll < 0.4:
            plan = plan.with_bitflip(op)
        elif roll < 0.5:
            plan = plan.with_enospc(op)
        elif roll < 0.6:
            plan = plan.with_crash_between_stage_and_promote(op)
    if rng.random() < 0.2:
        plan = plan.with_slow_disk(float(rng.uniform(0.005, 0.02)))
    return plan


def _orphaned_segments() -> list[str]:
    """Leaked repro segments attributable to this run.

    Segment names embed the owning pid (``repro_<pid>_<counter>``); a
    segment owned by a *different live* process belongs to a concurrent
    repro run on the same host, not to this harness — only segments we
    own, or whose owner is dead, count as leaks.
    """
    orphans: list[str] = []
    for path in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_*"):
        name = Path(path).name
        parts = name.split("_")
        try:
            owner = int(parts[1])
        except (IndexError, ValueError):
            orphans.append(name)
            continue
        if owner == os.getpid():
            orphans.append(name)
            continue
        try:
            os.kill(owner, 0)
        except OSError:
            orphans.append(name)  # owner dead: a true orphan
    return sorted(orphans)


def _pick_queries(rng: np.random.Generator, count: int) -> list[str]:
    mix = conviva_dashboard_mix(_TABLE)
    chosen = rng.choice(len(mix), size=min(count, len(mix)), replace=False)
    return [mix[int(i)] for i in sorted(chosen)]


def _engine_config(
    plan: Optional[FaultPlan], directory: Optional[str], workers: int
) -> EngineConfig:
    return EngineConfig(
        fault_plan=plan if plan is not None else FaultPlan(seed=0),
        num_workers=workers,
        task_timeout_seconds=2.0,
        catalog_config=CatalogConfig(directory=directory),
    )


def run_schedule(
    seed: int,
    table,
    queries_per_seed: int = 6,
    workers: int = 2,
    workdir: Optional[str] = None,
) -> ScheduleResult:
    """Run one seeded schedule end to end and check every invariant."""
    plan = random_fault_plan(seed)
    outcome = ScheduleResult(seed=seed, fault_spec=repr(plan.specs))
    started = time.perf_counter()
    rng = np.random.default_rng(
        np.random.SeedSequence([_CHAOS_SEED_DOMAIN, seed, 1])
    )
    queries = _pick_queries(rng, queries_per_seed)
    owns_workdir = workdir is None
    root = Path(workdir or tempfile.mkdtemp(prefix="repro_chaos_"))
    catalog_dir = str(root / f"catalog_{seed}")

    def violate(invariant: str, detail: str) -> None:
        outcome.violations.append(Violation(seed, invariant, detail))

    try:
        # ---- clean baseline: cold answers, no faults, no persistence
        baseline_memory = MemoryAccountant(None, name=f"chaos-base-{seed}")
        baseline = AQPEngine(
            config=_engine_config(None, None, workers),
            seed=_ENGINE_SEED,
            memory=baseline_memory,
        )
        baseline.register_table(_TABLE, table)
        baseline.create_sample(_TABLE, fraction=0.25)
        baseline_answers: dict[str, tuple] = {}
        for sql in queries:
            result, warned, error = _execute(baseline, sql)
            if error is not None or result is None:
                # A typed refusal (e.g. an ultra-selective filter whose
                # subpopulation is empty in the sample) is an honest
                # baseline outcome, not a chaos violation; there is
                # simply no fingerprint to compare against.  The query
                # still runs on every engine so all engines see the
                # same sequence — per-query determinism is relative to
                # engine history.
                continue
            baseline_answers[sql] = _fingerprint(result)
        baseline.close()
        baseline.mv_catalog.clear()

        # ---- chaos generation: faults in both domains at once
        chaos_memory = MemoryAccountant(None, name=f"chaos-{seed}")
        chaos = AQPEngine(
            config=_engine_config(plan, catalog_dir, workers),
            seed=_ENGINE_SEED,
            memory=chaos_memory,
        )
        chaos.register_table(_TABLE, table)
        chaos.create_sample(_TABLE, fraction=0.25)
        # Materializations are the save operations the storage faults
        # bind to (persistence failures must stay best-effort).
        for dims in (("city",), ("isp",)):
            try:
                chaos.materialize(_TABLE, dims)
            except ReproError as error:
                violate(
                    "materialize_typed",
                    f"materialize({dims}) escaped the typed taxonomy "
                    f"or failed the query path: {error}",
                )
        first_round: dict[str, tuple] = {}
        for round_index in range(2):
            for sql in queries:
                result, warned, error = _execute(chaos, sql)
                outcome.queries += 1
                if error is not None or result is None:
                    outcome.typed_errors += 1
                    continue
                report = result.execution_report
                if report is not None:
                    outcome.hedges_launched += report.hedges_launched
                    outcome.hedges_won += report.hedges_won
                fp = _fingerprint(result)
                if round_index == 0:
                    first_round[sql] = fp
                if result.catalog_route in ("partial", "exact"):
                    # Cube-served / replayed answers follow their own
                    # deterministic path; an exact hit must replay the
                    # very answer round one produced and stored.
                    if (
                        result.catalog_route == "exact"
                        and sql in first_round
                        and fp != first_round[sql]
                    ):
                        violate(
                            "replay_consistency",
                            f"exact hit for {sql!r} differs from the "
                            "stored answer",
                        )
                    outcome.flagged += int(_flagged(result, warned))
                    continue
                if sql not in baseline_answers:
                    # The baseline refused this query, so there is no
                    # honest answer to compare against.
                    outcome.flagged += int(_flagged(result, warned))
                    continue
                if fp == baseline_answers[sql]:
                    outcome.identical += 1
                elif _flagged(result, warned):
                    outcome.flagged += 1
                else:
                    violate(
                        "honesty",
                        f"unflagged answer for {sql!r} differs from the "
                        "clean baseline (silent wrong answer)",
                    )
        chaos.close()
        chaos.mv_catalog.clear()
        if chaos_memory.used_bytes != 0:
            violate(
                "memory_leak",
                f"chaos engine still holds {chaos_memory.used_bytes} "
                "reserved bytes after close",
            )

        # ---- at-rest corruption + restart: quarantine, then serve cold
        ready = sorted(Path(catalog_dir).glob("ready/*.npz"))
        if ready:
            victim = ready[int(rng.integers(0, len(ready)))]
            raw = bytearray(victim.read_bytes())
            if raw:
                raw[int(rng.integers(0, len(raw)))] ^= 0xFF
                victim.write_bytes(bytes(raw))
        survivor_memory = MemoryAccountant(None, name=f"chaos-next-{seed}")
        survivor = AQPEngine(
            config=_engine_config(None, catalog_dir, workers),
            seed=_ENGINE_SEED,
            memory=survivor_memory,
        )
        survivor.register_table(_TABLE, table)
        survivor.create_sample(_TABLE, fraction=0.25)
        try:
            survivor.mv_catalog.load_cubes()
        except ReproError as error:
            violate(
                "quarantine",
                f"reload after at-rest corruption raised instead of "
                f"quarantining: {error}",
            )
        outcome.quarantined = survivor.mv_catalog.quarantined
        outcome.staging_swept = survivor.mv_catalog.staging_orphans_swept
        if ready and survivor.mv_catalog.quarantined == 0:
            violate(
                "quarantine",
                f"corrupted artifact {ready[0].name} was not quarantined "
                "on reload",
            )
        for sql in queries:
            result, warned, error = _execute(survivor, sql)
            outcome.queries += 1
            if error is not None or result is None:
                outcome.typed_errors += 1
                continue
            if result.catalog_route in ("partial", "exact"):
                outcome.flagged += int(_flagged(result, warned))
                continue
            if sql not in baseline_answers:
                outcome.flagged += int(_flagged(result, warned))
                continue
            fp = _fingerprint(result)
            if fp == baseline_answers[sql]:
                outcome.identical += 1
            elif _flagged(result, warned):
                outcome.flagged += 1
            else:
                violate(
                    "honesty",
                    f"post-corruption cold answer for {sql!r} silently "
                    "differs from the clean baseline",
                )
        survivor.close()
        survivor.mv_catalog.clear()
        if survivor_memory.used_bytes != 0:
            violate(
                "memory_leak",
                f"survivor engine still holds {survivor_memory.used_bytes} "
                "reserved bytes after close",
            )

        # ---- staging orphans: anything a crashed save left must be gone
        staging = Path(catalog_dir) / "staging"
        leftovers = (
            sorted(p.name for p in staging.iterdir()) if staging.is_dir() else []
        )
        if leftovers:
            violate(
                "staging_orphans",
                f"staging/ still holds {leftovers} after the startup sweep",
            )

        # ---- governor: concurrent admissions must terminate
        governor = QueryGovernor(
            lambda: _governor_engine(table, catalog_dir, workers),
            GovernorConfig(max_concurrency=2, shed_policy="queue"),
        )
        errors: list[str] = []

        def client(sql: str) -> None:
            try:
                governor.execute(sql, timeout=30.0)
            except ReproError:
                pass  # typed shedding/cancellation is a valid outcome
            except Exception as error:  # pragma: no cover - invariant path
                errors.append(f"{type(error).__name__}: {error}")

        threads = [
            threading.Thread(
                target=client, args=(queries[i % len(queries)],), daemon=True
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + _GOVERNOR_WATCHDOG_SECONDS
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in threads):
            violate(
                "governor_deadlock",
                "governor clients still running after "
                f"{_GOVERNOR_WATCHDOG_SECONDS:.0f}s watchdog",
            )
        if errors:
            violate(
                "governor_untyped",
                f"governor surfaced untyped errors: {errors}",
            )
        governor.close()

        # ---- shm leaks: nothing repro-prefixed may survive this seed
        segments = _orphaned_segments()
        if segments:
            violate(
                "shm_orphans",
                f"/dev/shm still holds {segments}",
            )
    finally:
        if owns_workdir:
            shutil.rmtree(root, ignore_errors=True)
        else:
            shutil.rmtree(catalog_dir, ignore_errors=True)
    outcome.elapsed_seconds = round(time.perf_counter() - started, 3)
    return outcome


def _governor_engine(table, catalog_dir: str, workers: int) -> AQPEngine:
    engine = AQPEngine(
        config=_engine_config(None, catalog_dir, workers),
        seed=_ENGINE_SEED,
    )
    engine.register_table(_TABLE, table)
    engine.create_sample(_TABLE, fraction=0.25)
    return engine


# ---------------------------------------------------------------------------
# Serving-tier schedules: client and connection faults
# ---------------------------------------------------------------------------

#: Typed outcomes a serving client may legitimately observe.  Anything
#: else escaping a client thread is an invariant violation.
_SERVING_TYPED = (
    "AdmissionRejectedError",
    "RemoteQueryError",
    "ProtocolError",
)

#: Rejection reasons the serving tier is allowed to emit.
_SERVING_REASONS = frozenset(
    {
        "draining",
        "rate_limited",
        "tenant_concurrency",
        "queue_full",
        "queue_deadline_expired",
        "deadline_expired",
        "queue_timeout",
        "no_capacity",
        "shutdown",
        "cancelled",
    }
)


def run_serving_schedule(
    seed: int,
    table,
    workers: int = 1,
    clients_per_tenant: int = 2,
    queries_per_client: int = 4,
) -> ServingScheduleResult:
    """One seeded burst of hostile clients against a live server.

    Four fault kinds interleave, all derived from ``seed``:

    * **disconnect mid-poll** — a client submits, starts a long-poll,
      and kills its socket; the query must stay pollable from a fresh
      connection and resolve normally.
    * **slow reader** — a raw socket that reads one byte at a time with
      delays; it must not stall any other tenant (the burst still
      completes under the watchdog).
    * **tenant flood** — one tenant submits far past its rate and
      concurrency quotas; every excess submission must come back as a
      *typed* rejection with a known reason.
    * **drain during burst** — at a random instant the server drains;
      afterwards **every accepted query id must be terminal** (result,
      typed rejection, or honest cancellation) — never silent, and the
      journal's staging directory must be empty.
    """
    import socket as socket_module

    from repro.errors import (
        AdmissionRejectedError,
        ProtocolError,
        ReproError as _ReproError,
    )
    from repro.serve import ServeClient, ServeConfig, ServerThread, TenantConfig
    from repro.serve.client import RemoteQueryError
    from repro.serve.protocol import TERMINAL_STATES

    outcome = ServingScheduleResult(seed=seed)
    started = time.perf_counter()
    rng = np.random.default_rng(
        np.random.SeedSequence([_CHAOS_SEED_DOMAIN, seed, 2])
    )
    queries = _pick_queries(rng, 4)  # few distinct texts → real sharing
    root = Path(tempfile.mkdtemp(prefix="repro_serve_chaos_"))
    journal_dir = str(root / "journal")

    def violate(invariant: str, detail: str) -> None:
        outcome.violations.append(Violation(seed, invariant, detail))

    def factory() -> AQPEngine:
        engine = AQPEngine(
            config=_engine_config(None, None, workers),
            seed=_ENGINE_SEED,
        )
        engine.register_table(_TABLE, table)
        engine.create_sample(_TABLE, fraction=0.25)
        return engine

    governor = QueryGovernor(
        factory, GovernorConfig(max_concurrency=2, shed_policy="queue")
    )
    tenants = {
        "steady_a": TenantConfig("steady_a", weight=2.0, max_in_flight=8),
        "steady_b": TenantConfig("steady_b", weight=1.0, max_in_flight=8),
        "flooder": TenantConfig(
            "flooder",
            weight=1.0,
            max_in_flight=3,
            rate_limit=5,
            rate_window_seconds=1.0,
        ),
    }
    server_thread = ServerThread(
        governor,
        ServeConfig(
            tenants=tenants,
            max_queue_depth=48,
            journal_dir=journal_dir,
            drain_budget_seconds=3.0,
            sweep_interval_seconds=0.05,
        ),
    )
    accepted: dict[str, str] = {}  # query_id -> tenant, guarded by a lock
    lock = threading.Lock()
    untyped: list[str] = []

    def note_accepted(query_id: str, tenant: str) -> None:
        with lock:
            accepted[query_id] = tenant

    try:
        host, port = server_thread.start()

        def steady_client(tenant: str, client_seed: int) -> None:
            crng = np.random.default_rng(
                np.random.SeedSequence(
                    [_CHAOS_SEED_DOMAIN, seed, 3, client_seed]
                )
            )
            client = ServeClient(host, port, tenant=tenant, timeout=30.0)
            try:
                for index in range(queries_per_client):
                    sql = queries[int(crng.integers(0, len(queries)))]
                    outcome.submitted += 1
                    try:
                        query_id = client.submit(
                            sql,
                            deadline_seconds=float(crng.uniform(2.0, 10.0)),
                        )
                    except AdmissionRejectedError:
                        outcome.rejected_typed += 1
                        continue
                    except (ConnectionError, OSError):
                        continue  # server mid-drain; nothing accepted
                    note_accepted(query_id, tenant)
                    if crng.random() < 0.4:
                        # Disconnect mid-poll: drop the socket while the
                        # server owes us an answer, then come back later
                        # on a new connection.
                        try:
                            client.request(
                                {
                                    "op": "poll",
                                    "query_id": query_id,
                                    "wait_seconds": 0.05,
                                },
                                timeout=5.0,
                            )
                        except (ProtocolError, ConnectionError, OSError):
                            pass
                        client.close()
                        outcome.disconnects += 1
                        time.sleep(float(crng.uniform(0.01, 0.1)))
                        continue  # resolution checked after the burst
                    try:
                        client.wait(query_id, timeout=30.0)
                    except (
                        AdmissionRejectedError,
                        RemoteQueryError,
                    ):
                        pass  # typed; tallied from the final sweep
                    except (TimeoutError, ConnectionError, OSError):
                        pass  # drain raced the poll; final sweep decides
            except _ReproError:
                pass
            except Exception as error:  # pragma: no cover - invariant path
                untyped.append(f"{tenant}: {type(error).__name__}: {error}")
            finally:
                client.close()

        def flood_client() -> None:
            client = ServeClient(host, port, tenant="flooder", timeout=30.0)
            try:
                for _ in range(25):
                    outcome.submitted += 1
                    try:
                        query_id = client.submit(
                            queries[0], deadline_seconds=5.0
                        )
                        note_accepted(query_id, "flooder")
                    except AdmissionRejectedError as error:
                        outcome.flood_rejections += 1
                        if error.reason not in _SERVING_REASONS:
                            violate(
                                "typed_rejection",
                                "flood rejection carried unknown reason "
                                f"{error.reason!r}",
                            )
                    except (ConnectionError, OSError):
                        break
            except Exception as error:  # pragma: no cover - invariant path
                untyped.append(f"flooder: {type(error).__name__}: {error}")
            finally:
                client.close()

        def slow_reader() -> None:
            """Reads one byte every few ms; must not wedge the server."""
            try:
                sock = socket_module.create_connection(
                    (host, port), timeout=10.0
                )
                sock.sendall(b'{"op":"stats"}\n')
                received = b""
                while not received.endswith(b"\n"):
                    time.sleep(0.004)
                    chunk = sock.recv(1)
                    if not chunk:
                        break
                    received += chunk
                    if len(received) > 1 << 20:  # pragma: no cover
                        break
                outcome.slow_reads += 1
                sock.close()
            except OSError:
                pass

        threads = [
            threading.Thread(
                target=steady_client,
                args=(tenant, index),
                daemon=True,
            )
            for index, tenant in enumerate(
                ["steady_a", "steady_b"] * clients_per_tenant
            )
        ]
        threads.append(threading.Thread(target=flood_client, daemon=True))
        threads.append(threading.Thread(target=slow_reader, daemon=True))
        for thread in threads:
            thread.start()

        # Drain during the burst, at a seeded instant.
        time.sleep(float(rng.uniform(0.2, 1.0)))
        outcome.drained_at_depth = len(accepted)
        drain_summary = server_thread.drain(float(rng.uniform(0.5, 2.0)))
        if not drain_summary.get("ok"):
            violate("drain", f"drain failed: {drain_summary}")

        deadline = time.monotonic() + _GOVERNOR_WATCHDOG_SECONDS
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in threads):
            violate(
                "serving_deadlock",
                "client threads still running after the watchdog "
                "(a slow reader or drain wedged the server)",
            )
        if untyped:
            violate(
                "serving_untyped",
                f"client threads saw untyped errors: {untyped}",
            )

        # ---- the silence check: every accepted id must be terminal.
        sweep = ServeClient(host, port, tenant="sweep", timeout=30.0)
        try:
            with lock:
                accepted_now = dict(accepted)
            outcome.accepted = len(accepted_now)
            for query_id in accepted_now:
                try:
                    payload = sweep.poll(query_id)
                except _ReproError as error:
                    violate(
                        "accepted_silence",
                        f"accepted query {query_id} is unknown after the "
                        f"drain: {error}",
                    )
                    continue
                state = payload.get("state")
                if state not in TERMINAL_STATES:
                    violate(
                        "accepted_silence",
                        f"accepted query {query_id} is still {state!r} "
                        "after the drain completed",
                    )
                elif state == "done":
                    outcome.completed += 1
                    if (payload.get("result") or {}).get("shared"):
                        outcome.shared += 1
                elif state == "rejected":
                    outcome.rejected_typed += 1
                    reason = payload.get("reason")
                    if reason not in _SERVING_REASONS:
                        violate(
                            "typed_rejection",
                            f"query {query_id} rejected with unknown "
                            f"reason {reason!r}",
                        )
                elif state == "cancelled":
                    outcome.cancelled += 1
                elif state == "error":
                    if not payload.get("recoverable", False):
                        violate(
                            "serving_untyped",
                            f"query {query_id} died on an internal "
                            f"error: {payload.get('message')}",
                        )
        finally:
            sweep.close()
    finally:
        try:
            server_thread.stop()
        except Exception as error:  # pragma: no cover - invariant path
            violate("drain", f"server stop failed: {error}")
        governor.close()

    if governor.memory.used_bytes != 0:
        violate(
            "memory_leak",
            "the governor's shared accountant still holds "
            f"{governor.memory.used_bytes} bytes after drain + close",
        )
    staging = Path(journal_dir) / "staging"
    leftovers = (
        sorted(p.name for p in staging.iterdir()) if staging.is_dir() else []
    )
    if leftovers:
        violate(
            "staging_orphans",
            f"journal staging/ still holds {leftovers} after drain",
        )
    segments = _orphaned_segments()
    if segments:
        violate("shm_orphans", f"/dev/shm still holds {segments}")
    shutil.rmtree(root, ignore_errors=True)
    outcome.elapsed_seconds = round(time.perf_counter() - started, 3)
    return outcome


def run_serving_chaos(
    seeds: list[int], rows: int = 4000, workers: int = 1
) -> list[ServingScheduleResult]:
    """Run every serving-tier schedule and print one line per seed."""
    table = conviva_sessions_table(rows, np.random.default_rng(0))
    results: list[ServingScheduleResult] = []
    for seed in seeds:
        outcome = run_serving_schedule(seed, table, workers=workers)
        status = "OK" if not outcome.violations else "VIOLATED"
        print(
            f"serve seed {seed:>4}  {status:<8} "
            f"submitted={outcome.submitted:<3} accepted={outcome.accepted:<3} "
            f"done={outcome.completed:<3} rejected={outcome.rejected_typed:<3} "
            f"cancelled={outcome.cancelled:<2} shared={outcome.shared:<2} "
            f"flood_rej={outcome.flood_rejections:<3} "
            f"disc={outcome.disconnects} "
            f"({outcome.elapsed_seconds:.1f}s)",
            flush=True,
        )
        for violation in outcome.violations:
            print(
                f"  !! {violation.invariant}: {violation.detail}",
                file=sys.stderr,
                flush=True,
            )
        results.append(outcome)
    return results


def run_chaos(
    seeds: list[int],
    rows: int = 4000,
    queries_per_seed: int = 6,
    workers: int = 2,
) -> ChaosReport:
    """Run every seed's schedule and collect the invariant report."""
    table = conviva_sessions_table(rows, np.random.default_rng(0))
    schedules: list[ScheduleResult] = []
    for seed in seeds:
        outcome = run_schedule(
            seed,
            table,
            queries_per_seed=queries_per_seed,
            workers=workers,
        )
        status = "OK" if not outcome.violations else "VIOLATED"
        print(
            f"seed {seed:>4}  {status:<8} queries={outcome.queries:<3} "
            f"typed_errors={outcome.typed_errors:<2} "
            f"flagged={outcome.flagged:<3} identical={outcome.identical:<3} "
            f"hedges={outcome.hedges_launched}/{outcome.hedges_won} "
            f"quarantined={outcome.quarantined} "
            f"swept={outcome.staging_swept} "
            f"({outcome.elapsed_seconds:.1f}s)",
            flush=True,
        )
        for violation in outcome.violations:
            print(
                f"  !! {violation.invariant}: {violation.detail}",
                file=sys.stderr,
                flush=True,
            )
        schedules.append(outcome)
    return ChaosReport(
        seeds=list(seeds),
        schedules=schedules,
        total_queries=sum(s.queries for s in schedules),
        total_violations=sum(len(s.violations) for s in schedules),
    )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Chaos harness: seeded worker+storage fault schedules with "
            "invariant checking."
        )
    )
    parser.add_argument(
        "--seeds", type=int, default=25, help="number of schedules to run"
    )
    parser.add_argument(
        "--first-seed", type=int, default=0, help="first seed of the rotation"
    )
    parser.add_argument(
        "--rows", type=int, default=4000, help="base-table rows"
    )
    parser.add_argument(
        "--queries", type=int, default=6, help="dashboard queries per seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes (capped at os.cpu_count())",
    )
    parser.add_argument(
        "--serving-seeds",
        type=int,
        default=0,
        help="additionally run this many serving-tier (client-fault) "
        "schedules: disconnect mid-poll, slow reader, tenant flood, "
        "drain during burst",
    )
    parser.add_argument(
        "--serving-only",
        action="store_true",
        help="skip the engine/storage schedules and run only the "
        "serving-tier ones",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="show per-fault injection logs (noisy; off by default)",
    )
    args = parser.parse_args(argv)
    # The schedules fire thousands of deliberate faults; their warning
    # logs are signal only when replaying a single failing seed.
    logging.basicConfig(
        level=logging.WARNING if args.verbose else logging.CRITICAL
    )
    seeds = list(range(args.first_seed, args.first_seed + args.seeds))
    if args.serving_only:
        seeds = []
    report = run_chaos(
        seeds,
        rows=args.rows,
        queries_per_seed=args.queries,
        workers=args.workers,
    )
    if args.serving_seeds > 0:
        serving_seeds = list(
            range(args.first_seed, args.first_seed + args.serving_seeds)
        )
        report.serving_schedules = run_serving_chaos(
            serving_seeds, rows=args.rows, workers=args.workers
        )
        report.total_queries += sum(
            s.submitted for s in report.serving_schedules
        )
        report.total_violations += sum(
            len(s.violations) for s in report.serving_schedules
        )
    summary = (
        f"{len(seeds)} schedules, "
        f"{len(report.serving_schedules)} serving schedules, "
        f"{report.total_queries} queries, "
        f"{report.total_violations} invariant violation(s)"
    )
    print(summary, flush=True)
    if args.out:
        Path(args.out).write_text(json.dumps(report.to_json(), indent=2))
        print(f"report written to {args.out}", flush=True)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
