"""Closed-form error estimation for quantiles (an extension ξ).

The paper's system treats percentiles as bootstrap-only — "other θs
require more complicated estimates of σ²" (§2.3.2).  That more
complicated estimate exists: the asymptotic distribution of the sample
p-quantile is

    Normal( x_p ,  p (1 − p) / (n · f(x_p)²) )

where ``f`` is the data density at the quantile.  We estimate ``f(x_p)``
with a Gaussian kernel density estimate (Silverman bandwidth), yielding
a deterministic, resampling-free ξ for PERCENTILE queries.

This is exactly the kind of procedure the paper's diagnostic framework
was generalised for: it is cheap but rests on a smoothness assumption
(a positive, continuous density at the quantile), so it fails on
discrete or lumpy data — and the diagnostic can be used to detect that,
since :func:`~repro.core.diagnostics.diagnose` accepts any estimator.
"""

from __future__ import annotations

import numpy as np

from repro.core.ci import ConfidenceInterval
from repro.core.closed_form import normal_quantile
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.engine.aggregates import PercentileAggregate
from repro.errors import EstimationError


def silverman_bandwidth(values: np.ndarray) -> float:
    """Silverman's rule-of-thumb KDE bandwidth."""
    n = len(values)
    if n < 2:
        raise EstimationError("bandwidth needs at least two values")
    spread = float(values.std(ddof=1))
    iqr = float(np.subtract(*np.percentile(values, [75, 25])))
    scale = min(spread, iqr / 1.349) if iqr > 0 else spread
    if scale <= 0:
        raise EstimationError(
            "cannot estimate a density for degenerate (constant) data"
        )
    return 0.9 * scale * n ** (-0.2)


def kde_density_at(values: np.ndarray, point: float) -> float:
    """Gaussian-kernel density estimate of the data density at ``point``.

    Evaluated against a capped subsample for large inputs — density
    estimation at one point does not need every observation.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) > 20_000:
        # Deterministic thinning keeps the estimator reproducible.
        step = len(values) // 20_000 + 1
        values = values[::step]
    bandwidth = silverman_bandwidth(values)
    standardized = (point - values) / bandwidth
    kernel = np.exp(-0.5 * standardized**2) / np.sqrt(2.0 * np.pi)
    return float(kernel.mean() / bandwidth)


class QuantileClosedFormEstimator(ErrorEstimator):
    """CLT (order-statistics) confidence intervals for PERCENTILE.

    Deterministic and O(n) like the other closed forms; valid only when
    the data has a smooth positive density at the quantile.  Extreme
    quantiles (near 0 or 1) are rejected: the normal asymptotics break
    down exactly where MIN/MAX pathologies begin.
    """

    name = "quantile_closed_form"

    #: Quantiles closer than this to 0/1 are refused (extreme-order
    #: statistics are not asymptotically normal at practical n).
    extreme_cutoff: float = 0.02

    def applicable(self, target: EstimationTarget) -> bool:
        aggregate = target.aggregate
        if not isinstance(aggregate, PercentileAggregate):
            return False
        return (
            self.extreme_cutoff
            <= aggregate.fraction
            <= 1.0 - self.extreme_cutoff
        )

    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        if not self.applicable(target):
            raise EstimationError(
                "quantile closed form applies only to non-extreme "
                "PERCENTILE aggregates"
            )
        values = target.matched_values
        if len(values) < 30:
            raise EstimationError(
                "quantile closed form needs at least 30 matched rows"
            )
        fraction = target.aggregate.fraction
        point = target.point_estimate()
        density = kde_density_at(values, point)
        if density <= 0 or not np.isfinite(density):
            raise EstimationError(
                "estimated density at the quantile is degenerate"
            )
        std_error = np.sqrt(
            fraction * (1.0 - fraction) / len(values)
        ) / density
        half_width = normal_quantile(confidence) * std_error
        return ConfidenceInterval(
            estimate=point,
            half_width=half_width,
            confidence=confidence,
            method=self.name,
        )
