"""Ground-truth machinery: true confidence intervals and the §3 evaluation.

"In AQP, unlike some applications of statistics, it is always possible to
fall back to a slower, more accurate solution": with the full dataset in
hand we can draw many independent samples, compute the query on each,
and read off the *true* sampling distribution.  This module implements
that expensive-but-exact procedure and the evaluation protocol of §3:

1. compute θ(D) and the true confidence interval at sample size n;
2. draw ``num_trials`` samples; on each, run an error-estimation
   procedure and compute its width deviation δ;
3. declare the procedure *pessimistic* (δ > 0.2), *optimistic*
   (δ < −0.2), or *correct* per query, failing when more than 5 % of
   trials fall outside the band.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ci import (
    ConfidenceInterval,
    interval_from_distribution,
    relative_width_deviation,
)
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.engine.aggregates import AggregateFunction
from repro.errors import EstimationError
from repro.parallel.ops import ground_truth_trials
from repro.parallel.pool import WorkerPool, pool_scope
from repro.parallel.rng import seed_from_rng

#: The paper's acceptance band for δ and trial-failure tolerance (§3).
DEFAULT_DELTA_BAND = 0.2
DEFAULT_FAILURE_TOLERANCE = 0.05


@dataclass(frozen=True)
class DatasetQuery:
    """A single-aggregate query bound to a full dataset.

    The §3 evaluation treats every query as "one aggregate returning one
    real number"; this class is that unit, in columnar form: the
    aggregate's argument evaluated over all ``|D|`` rows plus the filter
    mask.

    Attributes:
        values: aggregate argument over every dataset row.
        aggregate: the aggregate function.
        mask: WHERE-clause mask over dataset rows, or ``None``.
        extensive: whether sample statistics must be scaled by |D|/|S|.
        label: optional human-readable query label.
    """

    values: np.ndarray
    aggregate: AggregateFunction
    mask: Optional[np.ndarray] = None
    extensive: bool = False
    label: str = ""

    @property
    def dataset_rows(self) -> int:
        return len(self.values)

    def true_answer(self) -> float:
        """θ(D), the exact full-data answer."""
        matched = self.values if self.mask is None else self.values[self.mask]
        return self.aggregate.compute(matched)

    def target_for_indices(self, indices: np.ndarray) -> EstimationTarget:
        """The estimation target for the sample at the given row indices."""
        return EstimationTarget(
            values=self.values[indices],
            aggregate=self.aggregate,
            mask=None if self.mask is None else self.mask[indices],
            dataset_rows=self.dataset_rows,
            extensive=self.extensive,
        )

    def sample_target(
        self,
        sample_size: int,
        rng: np.random.Generator,
        replacement: bool = True,
    ) -> EstimationTarget:
        """Draw a fresh simple random sample and wrap it as a target.

        Sampling is with replacement by default, matching the paper's
        theoretical setting (§2.1).  This matters for evaluation: at
        non-negligible sampling fractions, without-replacement sampling
        shrinks the true sampling variance by the finite-population
        correction, which with-replacement error estimators cannot see —
        δ would be biased pessimistic through no fault of the estimator.
        """
        if sample_size > self.dataset_rows:
            raise EstimationError(
                f"sample size {sample_size} exceeds dataset rows "
                f"{self.dataset_rows}"
            )
        indices = rng.choice(
            self.dataset_rows, size=sample_size, replace=replacement
        )
        return self.target_for_indices(indices)


def sampling_distribution(
    query: DatasetQuery,
    sample_size: int,
    num_trials: int,
    rng: np.random.Generator,
    pool: WorkerPool | int | None = None,
) -> np.ndarray:
    """θ(S) over ``num_trials`` independent samples of ``sample_size``.

    Trial ``t`` always draws from child RNG stream ``t`` of a seed
    taken once from ``rng``, so the distribution is identical whether
    the trials run inline or fan out across ``pool``.
    """
    if num_trials < 2:
        raise EstimationError(f"need at least 2 trials, got {num_trials}")
    if sample_size > query.dataset_rows:
        raise EstimationError(
            f"sample size {sample_size} exceeds dataset rows "
            f"{query.dataset_rows}"
        )
    with pool_scope(pool) as scoped:
        estimates, _ = ground_truth_trials(
            query.values,
            query.mask,
            query.aggregate,
            extensive=query.extensive,
            sample_size=sample_size,
            num_trials=num_trials,
            seed=seed_from_rng(rng),
            pool=scoped,
        )
    return estimates


def true_interval(
    query: DatasetQuery,
    sample_size: int,
    confidence: float,
    num_trials: int,
    rng: np.random.Generator,
    pool: WorkerPool | int | None = None,
) -> ConfidenceInterval:
    """The paper's *true confidence interval* (§2.2).

    The symmetric interval centered on θ(D) covering proportion
    ``confidence`` of the sampling distribution of θ(S) at this sample
    size.  Deterministic up to Monte-Carlo error in ``num_trials``.
    """
    distribution = sampling_distribution(
        query, sample_size, num_trials, rng, pool
    )
    return interval_from_distribution(
        distribution, query.true_answer(), confidence, "ground_truth"
    )


class Verdict(enum.Enum):
    """Per-query judgement of an error-estimation procedure (§3)."""

    CORRECT = "correct"
    OPTIMISTIC = "optimistic"
    PESSIMISTIC = "pessimistic"
    NOT_APPLICABLE = "not_applicable"


def classify_deltas(
    deltas: np.ndarray,
    band: float = DEFAULT_DELTA_BAND,
    tolerance: float = DEFAULT_FAILURE_TOLERANCE,
) -> Verdict:
    """Apply the paper's per-query failure rule to a set of δ values.

    Estimation fails when δ leaves ``[-band, band]`` on more than
    ``tolerance`` of the trial samples; the failing side with the larger
    exceedance gives the verdict.
    """
    deltas = np.asarray(deltas, dtype=np.float64)
    if len(deltas) == 0:
        raise EstimationError("classify_deltas requires at least one δ")
    fraction_pessimistic = float(np.mean(deltas > band))
    fraction_optimistic = float(np.mean(deltas < -band))
    if fraction_optimistic <= tolerance and fraction_pessimistic <= tolerance:
        return Verdict.CORRECT
    if fraction_optimistic >= fraction_pessimistic:
        return Verdict.OPTIMISTIC
    return Verdict.PESSIMISTIC


@dataclass(frozen=True)
class EstimatorEvaluation:
    """Outcome of evaluating one estimator on one query (§3 protocol).

    Attributes:
        verdict: correct / optimistic / pessimistic / not-applicable.
        deltas: per-trial width deviations (empty when not applicable).
        true_ci: the ground-truth interval used as reference.
        estimator_name: the ξ that was evaluated.
    """

    verdict: Verdict
    deltas: np.ndarray
    true_ci: Optional[ConfidenceInterval]
    estimator_name: str

    @property
    def failed(self) -> bool:
        return self.verdict in (Verdict.OPTIMISTIC, Verdict.PESSIMISTIC)


def evaluate_estimator(
    query: DatasetQuery,
    estimator: ErrorEstimator,
    sample_size: int,
    rng: np.random.Generator,
    confidence: float = 0.95,
    num_trials: int = 100,
    truth_trials: int | None = None,
    band: float = DEFAULT_DELTA_BAND,
    tolerance: float = DEFAULT_FAILURE_TOLERANCE,
    true_ci: ConfidenceInterval | None = None,
    pool: WorkerPool | int | None = None,
) -> EstimatorEvaluation:
    """Run the full §3 evaluation of one estimator on one query.

    Args:
        query: the query bound to its full dataset.
        estimator: the ξ under evaluation.
        sample_size: n, the per-trial sample size.
        rng: randomness source for samples and resamples.
        confidence: interval coverage α.
        num_trials: number of fresh samples on which ξ is run.
        truth_trials: trials used for the ground-truth interval; defaults
            to ``max(200, 2 * num_trials)`` — the true width must be
            materially less noisy than the estimates judged against it,
            or Monte-Carlo error in the reference leaks into δ.
        band, tolerance: the δ acceptance band and failure tolerance.
        true_ci: pass a precomputed ground-truth interval to avoid
            recomputing it when evaluating several estimators.
        pool: optional worker pool (or count) — ground-truth trials and
            per-trial ξ runs fan out with bit-identical results.
    """
    probe = query.sample_target(min(sample_size, query.dataset_rows), rng)
    if not estimator.applicable(probe):
        return EstimatorEvaluation(
            verdict=Verdict.NOT_APPLICABLE,
            deltas=np.empty(0),
            true_ci=None,
            estimator_name=estimator.name,
        )
    if sample_size > query.dataset_rows:
        raise EstimationError(
            f"sample size {sample_size} exceeds dataset rows "
            f"{query.dataset_rows}"
        )
    with pool_scope(pool) as scoped:
        if true_ci is None:
            true_ci = true_interval(
                query,
                sample_size,
                confidence,
                truth_trials or max(200, 2 * num_trials),
                rng,
                scoped,
            )
        if true_ci.half_width <= 0:
            raise EstimationError(
                f"query {query.label or query.aggregate.name!r} has a "
                "degenerate sampling distribution; δ is undefined"
            )
        _, estimated_half_widths = ground_truth_trials(
            query.values,
            query.mask,
            query.aggregate,
            extensive=query.extensive,
            sample_size=sample_size,
            num_trials=num_trials,
            seed=seed_from_rng(rng),
            confidence=confidence,
            estimator=estimator,
            pool=scoped,
        )
    deltas = relative_width_deviation(true_ci.half_width, estimated_half_widths)
    return EstimatorEvaluation(
        verdict=classify_deltas(deltas, band, tolerance),
        deltas=np.asarray(deltas, dtype=np.float64),
        true_ci=true_ci,
        estimator_name=estimator.name,
    )
