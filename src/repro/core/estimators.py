"""Estimation targets and the error-estimator interface.

An :class:`EstimationTarget` packages what every error-estimation
procedure needs to know about one aggregate of one query running on one
sample: the aggregate function, its argument values over *all* sample
rows (pre-filter), the filter mask, and the scaling information for
extensive aggregates (COUNT/SUM must be multiplied by ``|D| / |S|``).

Keeping the pre-filter values and the mask separate — rather than only
the filtered values — matters for the diagnostic: its subsamples must be
random subsets of the *sample*, not of the filtered rows, or statistics
like a filtered COUNT would be deterministic within every subsample.

:class:`ErrorEstimator` is the interface the paper calls ξ: a procedure
that produces a confidence interval from a sample.  Implementations live
in :mod:`repro.core.bootstrap`, :mod:`repro.core.closed_form`, and
:mod:`repro.core.large_deviation`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.ci import ConfidenceInterval
from repro.engine.aggregates import AggregateFunction
from repro.errors import EstimationError


def resample_estimates_kernel(
    matched_values: np.ndarray,
    aggregate: AggregateFunction,
    weight_matrix: np.ndarray,
    rng: np.random.Generator | None,
    *,
    extensive: bool,
    dataset_rows: Optional[int],
    total_sample_rows: int,
) -> np.ndarray:
    """θ over K resamples, as a pure function of its inputs.

    This is the single source of truth shared by
    :meth:`EstimationTarget.resample_estimates` and the chunked workers
    of :mod:`repro.parallel` — both paths call exactly this code with
    per-chunk RNG streams, which is what makes parallel execution
    bit-identical to serial.

    See :meth:`EstimationTarget.resample_estimates` for the statistics
    (realised-size normalisation of extensive aggregates under
    Poissonization, and the unmatched-weight-total draws that operator
    pushdown makes necessary).
    """
    raw = aggregate.compute_resamples(matched_values, weight_matrix)
    if not extensive or dataset_rows is None:
        return raw
    if total_sample_rows == 0:
        raise EstimationError("cannot scale a zero-row sample")
    matched_weight_totals = weight_matrix.sum(axis=0, dtype=np.float64)
    unmatched_rows = total_sample_rows - len(matched_values)
    if unmatched_rows > 0:
        rng = rng or np.random.default_rng()
        unmatched_totals = rng.poisson(
            unmatched_rows, size=weight_matrix.shape[1]
        ).astype(np.float64)
    else:
        unmatched_totals = 0.0
    realized_sizes = matched_weight_totals + unmatched_totals
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            realized_sizes > 0,
            dataset_rows * raw / realized_sizes,
            np.nan,
        )


@dataclass(frozen=True)
class EstimationTarget:
    """One aggregate statistic evaluated on one sample.

    Attributes:
        values: the aggregate's argument evaluated on every sample row
            (before filtering).  For COUNT(*) pass ones.
        aggregate: the weighted aggregate function.
        mask: boolean matched-row mask from the WHERE clause, or ``None``
            when the query has no filter.
        dataset_rows: ``|D|``, used to scale extensive aggregates; may be
            ``None`` when unknown (estimates then stay in sample units).
        extensive: whether the statistic scales with sample size
            (COUNT/SUM) and therefore needs the ``|D| / |S|`` factor.
    """

    values: np.ndarray
    aggregate: AggregateFunction
    mask: Optional[np.ndarray] = None
    dataset_rows: Optional[int] = None
    extensive: bool = False

    def __post_init__(self):
        values = np.asarray(self.values)
        object.__setattr__(self, "values", values)
        if self.mask is not None:
            mask = np.asarray(self.mask)
            if mask.shape != values.shape:
                raise EstimationError(
                    f"mask shape {mask.shape} does not match values shape "
                    f"{values.shape}"
                )
            if mask.dtype != np.bool_:
                raise EstimationError("mask must be boolean")
            object.__setattr__(self, "mask", mask)

    # -- basic geometry ------------------------------------------------------
    @property
    def total_sample_rows(self) -> int:
        """Sample size before filtering (the n of the theory)."""
        return len(self.values)

    @property
    def matched_values(self) -> np.ndarray:
        """Argument values of the rows that passed the filter."""
        if self.mask is None:
            return self.values
        return self.values[self.mask]

    @property
    def scale_factor(self) -> float:
        """Factor applied to the sample statistic to estimate θ(D)."""
        if not self.extensive or self.dataset_rows is None:
            return 1.0
        if self.total_sample_rows == 0:
            raise EstimationError("cannot scale a zero-row sample")
        return self.dataset_rows / self.total_sample_rows

    # -- evaluation ------------------------------------------------------------
    def point_estimate(self) -> float:
        """The plug-in estimate θ(S), scaled to full-data units."""
        return self.scale_factor * self.aggregate.compute(self.matched_values)

    def resample_estimates(
        self,
        weight_matrix: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """θ on K resamples given a weight matrix over *matched* rows.

        Intensive aggregates (AVG, VARIANCE, quantiles, ...) are simply
        scaled.  Extensive aggregates (COUNT, SUM) need care under
        Poissonization: the resample size ``Σw`` is random, so the naive
        ``(|D|/n)·Σwv`` estimator's variance is ``n·E[v²]`` rather than
        the bootstrap-correct ``n·Var(v)``.  The standard remedy is to
        normalise by the *realised* resample size: ``|D|·Σwv / Σ_all w``.
        Operator pushdown means we never materialise weights for rows the
        filter dropped, but their per-resample total is itself Poisson
        distributed with mean ``n − m``, so one draw per resample restores
        the denominator without touching those rows.

        Args:
            weight_matrix: ``(m, K)`` Poisson weights over matched rows.
            rng: required only for extensive aggregates with a filter
                (for the unmatched-weight-total draws); a fresh default
                generator is used when omitted.
        """
        return resample_estimates_kernel(
            self.matched_values,
            self.aggregate,
            weight_matrix,
            rng,
            extensive=self.extensive,
            dataset_rows=self.dataset_rows,
            total_sample_rows=self.total_sample_rows,
        )

    def subset(self, indices: np.ndarray) -> "EstimationTarget":
        """The target restricted to a row subset of the sample.

        Used by the diagnostic to evaluate the same query on disjoint
        subsamples; ``dataset_rows`` is retained so extensive scaling
        adjusts to the smaller subsample automatically.
        """
        return replace(
            self,
            values=self.values[indices],
            mask=None if self.mask is None else self.mask[indices],
        )


class ErrorEstimator(abc.ABC):
    """The paper's ξ: produce a confidence interval from one sample.

    Attributes:
        name: short method name recorded on produced intervals.
    """

    name: str = ""

    @abc.abstractmethod
    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        """Estimate a symmetric centered CI for ``target``.

        Args:
            target: the statistic and sample to estimate error for.
            confidence: target coverage α.
            rng: randomness source for resampling-based estimators;
                deterministic estimators ignore it.

        Raises:
            EstimationError: when the procedure does not apply to this
                target (e.g. closed forms for MAX).
        """

    def applicable(self, target: EstimationTarget) -> bool:
        """Whether this procedure can produce an interval for ``target``."""
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
