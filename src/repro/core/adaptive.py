"""Adaptive selection of the bootstrap resample count K.

The paper fixes K = 100 and notes "K can be tuned automatically [17]"
(Efron & Tibshirani).  This module implements that tuning: grow K in
rounds until the interval half-width stabilises, so cheap queries stop
early and hard ones get the replication they need.

The stability rule: after each round, compare the half-width computed
on all replicates so far against the previous round's; stop when the
relative change falls below an effective tolerance.  The effective
tolerance never drops below the Monte-Carlo noise floor of the width
estimate itself (≈ ``1 / sqrt(2K)``), so the loop cannot chase noise it
can never beat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bootstrap import BootstrapEstimator
from repro.core.ci import ConfidenceInterval, interval_from_distribution
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.errors import EstimationError


@dataclass(frozen=True)
class AdaptiveBootstrapResult:
    """Outcome of an adaptive bootstrap run.

    Attributes:
        interval: the final confidence interval.
        num_resamples: total replicates actually computed.
        converged: whether the stability rule was met before the cap.
        width_history: half-width after each round.
    """

    interval: ConfidenceInterval
    num_resamples: int
    converged: bool
    width_history: tuple[float, ...]


class AdaptiveBootstrapEstimator(ErrorEstimator):
    """Bootstrap with automatically tuned K.

    Args:
        initial_resamples: K of the first round.
        growth_factor: each round multiplies the replicate total by this.
        max_resamples: hard cap on total replicates.
        tolerance: relative half-width change treated as "stable".
        rng: default randomness source.
    """

    name = "bootstrap"

    def __init__(
        self,
        initial_resamples: int = 25,
        growth_factor: float = 2.0,
        max_resamples: int = 800,
        tolerance: float = 0.05,
        rng: np.random.Generator | None = None,
    ):
        if initial_resamples < 2:
            raise EstimationError("need at least 2 initial resamples")
        if growth_factor <= 1.0:
            raise EstimationError("growth factor must exceed 1")
        if not 0.0 < tolerance < 1.0:
            raise EstimationError("tolerance must be in (0, 1)")
        if max_resamples < initial_resamples:
            raise EstimationError("max_resamples below initial_resamples")
        self.initial_resamples = initial_resamples
        self.growth_factor = growth_factor
        self.max_resamples = max_resamples
        self.tolerance = tolerance
        self._rng = rng or np.random.default_rng()

    def run(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> AdaptiveBootstrapResult:
        """Run the adaptive loop and return the full result."""
        rng = rng or self._rng
        center = target.point_estimate()
        replicates = np.empty(0, dtype=np.float64)
        history: list[float] = []
        converged = False
        batch = self.initial_resamples
        while len(replicates) < self.max_resamples:
            batch = min(batch, self.max_resamples - len(replicates))
            estimator = BootstrapEstimator(max(batch, 2), rng)
            new = estimator.resample_distribution(target, rng)
            replicates = np.concatenate([replicates, new])
            interval = interval_from_distribution(
                replicates, center, confidence, self.name
            )
            history.append(interval.half_width)
            if len(history) >= 2 and history[-2] > 0:
                change = abs(history[-1] - history[-2]) / history[-2]
                # The width estimate itself carries MC noise ~1/sqrt(2K);
                # demanding a change below that floor would loop forever.
                noise_floor = 1.0 / np.sqrt(2.0 * len(replicates))
                if change <= max(self.tolerance, noise_floor):
                    converged = True
                    break
            batch = int(np.ceil(len(replicates) * (self.growth_factor - 1.0)))
        final = interval_from_distribution(
            replicates, center, confidence, self.name
        )
        return AdaptiveBootstrapResult(
            interval=final,
            num_resamples=len(replicates),
            converged=converged,
            width_history=tuple(history),
        )

    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        return self.run(target, confidence, rng).interval
