"""Large-deviation-bound error estimation (§2.3.3).

Bounds the tails of the sampling distribution with concentration
inequalities instead of estimating the distribution.  Used by OLA and
Aqua; never *under*-covers, but the worst-case treatment of outliers
makes intervals dramatically wider than the truth — Fig. 1 shows
Hoeffding demanding samples 1–2 orders of magnitude larger than needed.

Both bounds need the value range ``[low, high]``, the "sensitivity
quantity" the paper says must be precomputed per θ by manual analysis.
Callers pass the true dataset range when known (our sample catalog can
precompute it); otherwise the sample range is used, which technically
forfeits the guarantee but matches what deployed systems do.

Implemented bounds:

* **Hoeffding** — range-only.
* **Empirical Bernstein** (Maurer & Pontil) — range plus sample
  variance; much tighter when the variance is small relative to the
  range, still conservative.

Both apply to the mean-like aggregates AVG, SUM, and COUNT; other
aggregates raise :class:`~repro.errors.EstimationError`, mirroring the
manual-analysis burden the paper describes.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.ci import ConfidenceInterval
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.errors import EstimationError

_SUPPORTED = frozenset({"AVG", "SUM", "COUNT"})


def _value_range(
    target: EstimationTarget,
    low: Optional[float],
    high: Optional[float],
) -> tuple[float, float]:
    """Resolve the bound's value range, falling back to the sample range."""
    matched = target.matched_values
    if low is None:
        low = float(matched.min()) if len(matched) else 0.0
    if high is None:
        high = float(matched.max()) if len(matched) else 0.0
    if high < low:
        raise EstimationError(f"invalid value range [{low}, {high}]")
    return low, high


class _LargeDeviationEstimator(ErrorEstimator):
    """Shared structure for concentration-inequality estimators.

    Args:
        low, high: known bounds on the aggregate argument over the full
            dataset; omit to fall back to the sample range.
    """

    def __init__(
        self, low: Optional[float] = None, high: Optional[float] = None
    ):
        self.low = low
        self.high = high

    def applicable(self, target: EstimationTarget) -> bool:
        return target.aggregate.name in _SUPPORTED

    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        if not self.applicable(target):
            raise EstimationError(
                f"{self.name} bounds are only derived for AVG/SUM/COUNT, "
                f"not {target.aggregate.name}"
            )
        if not 0.0 < confidence < 1.0:
            raise EstimationError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        half_width = self._half_width(target, confidence)
        return ConfidenceInterval(
            estimate=target.point_estimate(),
            half_width=half_width,
            confidence=confidence,
            method=self.name,
        )

    # -- to be provided by the concrete bound -------------------------------
    def _mean_half_width(
        self,
        num_values: int,
        value_range: float,
        sample_variance: float,
        failure_probability: float,
    ) -> float:
        raise NotImplementedError

    def _half_width(self, target: EstimationTarget, confidence: float) -> float:
        """Dispatch per aggregate kind to a mean-style bound."""
        failure_probability = 1.0 - confidence
        name = target.aggregate.name
        matched = target.matched_values
        n_total = target.total_sample_rows
        low, high = _value_range(target, self.low, self.high)

        if name == "AVG":
            # Mean of the matched values, treated as m iid draws.
            m = len(matched)
            if m == 0:
                raise EstimationError("filter matched no rows")
            variance = float(matched.var(ddof=1)) if m > 1 else 0.0
            return self._mean_half_width(
                m, high - low, variance, failure_probability
            )

        # SUM and COUNT are n_total times the mean of y_i = v_i * 1[matched]
        # (v_i = 1 for COUNT); rows that fail the filter contribute zero, so
        # the per-row range must include zero.
        if name == "COUNT":
            y_low, y_high = 0.0, 1.0
        else:
            y_low, y_high = min(low, 0.0), max(high, 0.0)
        if n_total == 0:
            raise EstimationError("sample is empty")
        mean_y = float(matched.sum()) / n_total if name == "SUM" else len(matched) / n_total
        mean_y2 = (
            float((matched.astype(np.float64) ** 2).sum()) / n_total
            if name == "SUM"
            else len(matched) / n_total
        )
        variance_y = max(mean_y2 - mean_y * mean_y, 0.0)
        mean_bound = self._mean_half_width(
            n_total, y_high - y_low, variance_y, failure_probability
        )
        return target.scale_factor * n_total * mean_bound

    def _estimate_scaled(self, target: EstimationTarget) -> float:
        return target.point_estimate()


class HoeffdingEstimator(_LargeDeviationEstimator):
    """Hoeffding's inequality: range-only concentration.

    For the mean of n iid values in a range of length R,
    ``P(|mean - E| ≥ t) ≤ 2 exp(-2 n t² / R²)``, so the α-level
    half-width is ``t = R sqrt(ln(2 / (1-α)) / (2n))``.
    """

    name = "hoeffding"

    def _mean_half_width(
        self, num_values, value_range, sample_variance, failure_probability
    ):
        if num_values <= 0:
            raise EstimationError("need at least one value")
        return value_range * math.sqrt(
            math.log(2.0 / failure_probability) / (2.0 * num_values)
        )


class BernsteinEstimator(_LargeDeviationEstimator):
    """Empirical Bernstein bound (Maurer & Pontil 2009).

    ``t = sqrt(2 V̂ ln(3/δ) / n) + 3 R ln(3/δ) / n`` — variance-adaptive,
    so it beats Hoeffding when the data's spread is small relative to its
    range, while remaining a guaranteed (conservative) bound.
    """

    name = "bernstein"

    def _mean_half_width(
        self, num_values, value_range, sample_variance, failure_probability
    ):
        if num_values <= 0:
            raise EstimationError("need at least one value")
        log_term = math.log(3.0 / failure_probability)
        return math.sqrt(
            2.0 * sample_variance * log_term / num_values
        ) + 3.0 * value_range * log_term / num_values
