"""The end-to-end approximate query processing pipeline (Fig. 5).

:class:`AQPEngine` is the user-facing entry point, playing the role
BlinkDB plays in the paper: it owns base tables and precomputed samples,
compiles SQL, picks a sample, computes the approximate answer with error
bars, *diagnoses* whether those error bars can be trusted (§4), and falls
back to a reliable path — exact execution or large-deviation bounds —
when they cannot.

The decision logic mirrors §5–§6:

1. Closed-form error estimation when the query allows it (single-layer
   COUNT/SUM/AVG/VARIANCE/STDEV, no UDFs); bootstrap otherwise.
2. GROUP BY results are treated as one query per group (§2.1).
3. Nested aggregation queries take the black-box bootstrap path
   (resampling whole tables), everything else the consolidated
   weight-matrix fast path.
4. A failed diagnostic triggers the configured fallback.

Two engine-level performance features ride on top:

* ``EngineConfig.num_workers`` fans bootstrap replicates, black-box
  statistics, and diagnostic evaluations across a
  :class:`~repro.parallel.pool.WorkerPool` (results bit-identical to
  serial; ``1`` never spawns a process).
* analyzed queries are memoised in an LRU keyed by SQL text
  (``EngineConfig.plan_cache_size``), so repeated workload queries skip
  parse→analyze entirely; registration of tables/UDFs/UDAFs
  invalidates it.
"""

from __future__ import annotations

import logging
import os
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Optional
from zlib import crc32

import numpy as np

from repro.core.bootstrap import (
    BootstrapEstimator,
    bootstrap_table_statistic,
)
from repro.core.ci import ConfidenceInterval, interval_from_distribution
from repro.core.closed_form import ClosedFormEstimator
from repro.core.diagnostics import (
    DiagnosticConfig,
    DiagnosticResult,
    diagnose,
    grouped_diagnose,
)
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.core.grouped import (
    GroupedTarget,
    grouped_closed_form_intervals,
    grouped_half_widths,
    resolve_grouped_kernel_mode,
)
from repro.core.large_deviation import HoeffdingEstimator
from repro.engine.evaluator import ExpressionEvaluator
from repro.engine.table import Table
from repro.errors import (
    AnalysisError,
    BoundUnachievableError,
    CatalogError,
    DegradedResultWarning,
    EstimationError,
    ExecutionError,
    PlanError,
    ResourceExhaustedError,
    StorageUnavailableError,
)
from repro.faults import FaultPlan, StorageFaultInjector, resolve_fault_plan
from repro.governor.breaker import DegradationLevel
from repro.governor.cancel import CancelToken, cancel_scope
from repro.governor.memory import MemoryAccountant, process_accountant
from repro.obs.audit import AuditConfig, CalibrationAuditor
from repro.obs.events import EVENTS, QueryEvent
from repro.obs.metrics import METRICS
from repro.obs.trace import (
    Trace,
    activate_trace,
    deactivate_trace,
    trace_event,
    trace_span,
)
from repro.parallel.ops import grouped_bootstrap_replicates
from repro.parallel.pool import WorkerPool, resolve_num_workers
from repro.parallel.rng import seed_from_rng
from repro.parallel.shm import sweep_orphans
from repro.parallel.supervise import (
    ExecutionReport,
    HedgePolicy,
    RetryPolicy,
    Supervision,
)
from repro.catalog.router import materialization_hint, serve_from_cube
from repro.catalog.store import (
    CatalogConfig,
    MaterializedCatalog,
    ResultKey,
    RollupCube,
    resolve_catalog_enabled,
)
from repro.plan.executor import QueryExecutor
from repro.planner import (
    CostModel,
    CostPlanner,
    PilotMeasurement,
    PilotValue,
    QueryPlan,
    resolve_planner_enabled,
)
from repro.sampling.catalog import SampleCatalog, SampleInfo
from repro.sql.analyzer import AnalyzedQuery, analyze
from repro.sql.ast import WithinClause
from repro.sql.fingerprint import fingerprint_statement
from repro.sql.functions import FunctionRegistry, default_function_registry
from repro.sql.parser import parse_select

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Black-box targets for nested queries
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TableQueryTarget:
    """A black-box θ: execute a whole query against a (re)sampled table.

    Used when a query cannot be reduced to "aggregate over a value
    array" — notably nested aggregation.  Implements the same protocol
    as :class:`~repro.core.estimators.EstimationTarget` (``subset`` /
    ``point_estimate`` / ``total_sample_rows``), so the diagnostic works
    unchanged.
    """

    table: Table
    query: AnalyzedQuery
    executor: QueryExecutor

    @property
    def total_sample_rows(self) -> int:
        return self.table.num_rows

    def point_estimate(self) -> float:
        return self.executor.scalar(self.query, self.table)

    def subset(self, indices: np.ndarray) -> "TableQueryTarget":
        return replace(self, table=self.table.take(indices))


@dataclass(frozen=True)
class _ScalarQueryStatistic:
    """A picklable θ: run an analyzed query and return its scalar.

    Replaces the obvious lambda so the black-box bootstrap's resample
    statistics can be shipped to worker processes (lambdas cannot); if
    the query or executor still refuses to pickle — e.g. lambda UDFs in
    the registry — the fan-out transparently degrades to inline
    execution with identical results.
    """

    query: AnalyzedQuery
    executor: QueryExecutor

    def __call__(self, table: Table) -> float:
        return self.executor.scalar(self.query, table)


class BlackBoxBootstrapEstimator(ErrorEstimator):
    """Bootstrap ξ for :class:`TableQueryTarget` (materialised resamples).

    This is the §5.2-style execution: each resample is a real table run
    through the full query executor — general but K× as expensive as the
    weighted fast path.
    """

    name = "bootstrap"

    def __init__(
        self,
        num_resamples: int = 100,
        rng: np.random.Generator | None = None,
        pool: WorkerPool | None = None,
        supervision: Supervision | None = None,
        replicate_cap: int | None = None,
    ):
        self.num_resamples = num_resamples
        self.replicate_cap = replicate_cap
        self._rng = rng or np.random.default_rng()
        self._pool = pool
        self._supervision = supervision

    def __getstate__(self):
        # Estimators travel to worker processes inside diagnostic tasks;
        # pools and supervision contexts are process-local and must
        # never nest.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_supervision"] = None
        return state

    def estimate(self, target, confidence=0.95, rng=None):
        rng = rng or self._rng
        center = target.point_estimate()
        distribution = bootstrap_table_statistic(
            target.table,
            _ScalarQueryStatistic(target.query, target.executor),
            self.num_resamples,
            rng,
            pool=self._pool,
            supervision=self._supervision,
            replicate_cap=self.replicate_cap,
        )
        interval = interval_from_distribution(
            distribution, center, confidence, self.name
        )
        if len(distribution) < self.num_resamples:
            inflation = float(
                np.sqrt(self.num_resamples / len(distribution))
            )
            interval = ConfidenceInterval(
                estimate=interval.estimate,
                half_width=interval.half_width * inflation,
                confidence=interval.confidence,
                method=interval.method,
            )
        return interval


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ApproximateValue:
    """One approximate aggregate value with its reliability verdict.

    Attributes:
        name: output column name.
        estimate: the returned value (approximate, or exact after a
            fallback).
        interval: error bars, when available.
        method: how the value was produced: ``"closed_form"``,
            ``"bootstrap"``, ``"hoeffding"``, or ``"exact"``.
        diagnostic: the diagnostic outcome, when it was run.
        fell_back: whether the diagnostic (or an error-bound miss)
            forced a fallback away from cheap estimation.
        fallback_reason: why the fallback happened, if it did.
    """

    name: str
    estimate: float
    interval: Optional[ConfidenceInterval]
    method: str
    diagnostic: Optional[DiagnosticResult] = None
    fell_back: bool = False
    fallback_reason: str = ""

    @property
    def relative_error(self) -> Optional[float]:
        if self.interval is None:
            return None
        return self.interval.relative_error


@dataclass(frozen=True)
class AQPRow:
    """One result row: a group key (possibly empty) plus its values."""

    group: dict[str, object]
    values: dict[str, ApproximateValue]


@dataclass(frozen=True)
class AQPResult:
    """Result of an approximate query execution."""

    sql: str
    rows: tuple[AQPRow, ...]
    sample: Optional[SampleInfo]
    elapsed_seconds: float
    bootstrap_subqueries: int = 0
    diagnostic_subqueries: int = 0
    #: Structured account of how the query's fan-out executed: retries,
    #: crashes, timeouts, replicate/subsample completion, degradations
    #: and fallbacks.  The degraded-but-honest contract lives here.
    execution_report: Optional[ExecutionReport] = None
    #: The query-lifecycle span tree (``EngineConfig.tracing``); render
    #: it with :func:`repro.obs.render_span_tree` or export it with
    #: :func:`repro.obs.write_chrome_trace`.  ``None`` when tracing is
    #: disabled.
    trace: Optional[Trace] = None
    #: How the materialized catalog routed this query: ``"exact"``
    #: (stored answer replayed), ``"partial"`` (re-aggregated from a
    #: rollup cube), ``"miss"`` (full execution with the catalog on), or
    #: ``None`` (catalog disabled).
    catalog_route: Optional[str] = None
    #: The structured observability record emitted for this execution
    #: (``EngineConfig.event_log``); carries audit verdicts when the
    #: calibration auditor sampled the query.  ``None`` when event
    #: logging is disabled.
    event: Optional[QueryEvent] = None
    #: The pilot-derived cost plan behind a bounded (``WITHIN``) query:
    #: chosen sample fraction, replicate count, pilot size, and whether
    #: the planner fell back to a fixed budget.  ``None`` for unbounded
    #: queries or when the planner is disabled.
    plan: Optional[QueryPlan] = None

    @property
    def degraded(self) -> bool:
        """Whether any value was computed from less than the full work."""
        return (
            self.execution_report is not None
            and self.execution_report.degraded
        )

    def single(self) -> ApproximateValue:
        """The one value of a single-aggregate, ungrouped query."""
        if len(self.rows) != 1 or len(self.rows[0].values) != 1:
            raise EstimationError(
                "single() requires an ungrouped single-aggregate result"
            )
        return next(iter(self.rows[0].values.values()))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
@dataclass
class EngineConfig:
    """Tunable behaviour of :class:`AQPEngine`.

    Attributes:
        confidence: default interval coverage α.
        num_bootstrap_resamples: K for all bootstrap paths.
        diagnostic: Algorithm 1 parameters (``None`` → paper defaults,
            scaled down automatically for small samples).
        run_diagnostics: whether execute() diagnoses error estimates.
        fallback: what to do when the diagnostic rejects a query:
            ``"exact"`` (rerun on the full data), ``"large_deviation"``
            (conservative Hoeffding bars, exact when Hoeffding does not
            apply), or ``"none"`` (return the distrusted estimate,
            flagged).
    """

    confidence: float = 0.95
    num_bootstrap_resamples: int = 100
    diagnostic: Optional[DiagnosticConfig] = None
    run_diagnostics: bool = True
    fallback: str = "exact"
    #: Retry on the next larger catalog sample when a value misses the
    #: caller's error bound, before resorting to the fallback (§1's
    #: smooth accuracy/time tradeoff).
    escalate_samples: bool = True
    #: Use the order-statistics closed form for non-extreme PERCENTILE
    #: aggregates instead of the bootstrap (an extension ξ; the
    #: diagnostic still validates it per query).
    use_quantile_closed_form: bool = False
    #: Degree of parallelism for bootstrap replicates, black-box
    #: resample statistics, and diagnostic subsample evaluations.
    #: ``None`` reads the ``REPRO_WORKERS`` environment variable
    #: (default 1); ``<= 0`` means one worker per CPU.  Results are
    #: bit-identical at any setting; ``1`` never spawns a process.
    num_workers: Optional[int] = None
    #: Entries kept in the engine's analyzed-query (plan) LRU cache;
    #: repeated workload queries skip parse→analyze→plan→rewrite.
    #: ``0`` disables caching.
    plan_cache_size: int = 128
    #: Deterministic fault-injection schedule for tests and failure
    #: experiments.  ``None`` reads the ``REPRO_FAULTS`` environment
    #: variable (see :func:`repro.faults.resolve_fault_plan`).
    fault_plan: Optional[FaultPlan] = None
    #: Per-task deadline in seconds; a task exceeding it is declared
    #: hung and retried.  ``None`` disables hang detection.
    task_timeout_seconds: Optional[float] = None
    #: Whole-query deadline in seconds; work not started by the
    #: deadline is dropped and the answer degrades honestly.
    query_deadline_seconds: Optional[float] = None
    #: Extra attempts per failed task batch (transient failures only).
    max_task_retries: int = 2
    #: Base of the capped exponential retry backoff.
    retry_backoff_seconds: float = 0.05
    #: Consecutive pool-level failures tolerated before the engine
    #: degrades permanently to inline execution for the session.
    max_pool_failures: int = 2
    #: Launch speculative backup attempts for straggling tasks (the
    #: tail-at-scale mitigation).  The backup re-runs the same unit on
    #: the same per-unit RNG stream, so first-result-wins is
    #: bit-identical by construction.  Opt-in (default ``None``): a
    #: straggler then costs its full timeout before the sequential
    #: retry path starts, but crashes and hangs keep their explicit
    #: crash/timeout classification in the ExecutionReport instead of
    #: being quietly outraced by a backup.
    hedge: Optional[HedgePolicy] = None
    #: Byte budget for allocation-heavy work (weight matrices, shared
    #: arenas, resample tables, result buffers), reserved *before*
    #: allocation through a :class:`~repro.governor.memory
    #: .MemoryAccountant`.  ``None`` reads ``REPRO_MEMORY_BUDGET``
    #: (unset → track-only, never rejects).  Engines without an
    #: explicit budget share the process-wide accountant.
    memory_budget_bytes: Optional[int] = None
    #: How long a memory reservation may wait for a concurrent query to
    #: release bytes before the plan is rejected/downgraded.
    memory_wait_seconds: float = 0.2
    #: Build a query-lifecycle :class:`~repro.obs.trace.Trace` for every
    #: execute() call (``AQPResult.trace``; ``EXPLAIN ANALYZE`` in the
    #: CLI).  Default-on: the tracer touches no RNG stream, so traced
    #: and untraced runs are bit-identical, and the per-span cost is one
    #: clock read plus a list append (benchmarked < 2 % end to end).
    tracing: bool = True
    #: Materialized catalog + MV-first router.  ``None`` reads the
    #: ``REPRO_CATALOG`` environment variable (unset → enabled).
    #: Default-on is safe: routing and storing consume no engine RNG,
    #: so the first (cold) execution of any query is bit-identical with
    #: the catalog on or off, and exact hits replay that very answer.
    catalog: Optional[bool] = None
    #: Catalog sizing/TTL/persistence knobs (``None`` → defaults).
    catalog_config: Optional[CatalogConfig] = None
    #: Record one structured :class:`~repro.obs.events.QueryEvent` per
    #: execute() call into the process-wide ring
    #: (:data:`repro.obs.events.EVENTS`).  ``None`` reads the
    #: ``REPRO_EVENTS`` environment variable (unset → enabled).
    #: Default-on is safe: recording consumes no RNG, so logged and
    #: silent runs are bit-identical at any worker count.
    event_log: Optional[bool] = None
    #: Also append events to this JSONL file (``None`` reads
    #: ``REPRO_EVENT_LOG``; unset → ring only).
    event_log_path: Optional[str] = None
    #: Fraction of completed queries the calibration auditor recomputes
    #: exactly to verify interval coverage.  ``None`` reads
    #: ``REPRO_AUDIT_FRACTION`` (unset → 0, auditing off).  Sampling is
    #: a deterministic hash of the query-shape fingerprint — no RNG.
    audit_fraction: Optional[float] = None
    #: Full auditor tuning; overrides ``audit_fraction`` when given.
    audit_config: Optional[AuditConfig] = None
    #: Pilot-based bounded-error/bounded-time planning for ``WITHIN``
    #: queries (:mod:`repro.planner`).  ``None`` reads the
    #: ``REPRO_PLANNER`` environment variable (unset → enabled).  When
    #: off, a ``WITHIN x%`` bound degrades to the legacy fixed-budget
    #: path (``error_bound=x`` post-hoc gate) and time budgets are
    #: ignored — bit-identical to pre-planner behaviour.
    planner: Optional[bool] = None

    def __post_init__(self):
        if self.fallback not in ("exact", "large_deviation", "none"):
            raise PlanError(
                f"unknown fallback policy {self.fallback!r}; expected "
                "'exact', 'large_deviation', or 'none'"
            )
        if self.plan_cache_size < 0:
            raise PlanError(
                f"plan_cache_size must be non-negative, got "
                f"{self.plan_cache_size}"
            )


EVENTS_ENV = "REPRO_EVENTS"
EVENT_LOG_ENV = "REPRO_EVENT_LOG"
AUDIT_FRACTION_ENV = "REPRO_AUDIT_FRACTION"

_EVENTS_OFF = frozenset({"off", "0", "false", "no", "disabled"})


def resolve_event_log_enabled(flag: Optional[bool] = None) -> bool:
    """Whether per-query event logging is active (explicit > env > on)."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(EVENTS_ENV, "").strip().lower()
    return raw not in _EVENTS_OFF if raw else True


def resolve_audit_fraction(fraction: Optional[float] = None) -> float:
    """The calibration-audit sampling fraction (explicit > env > 0)."""
    if fraction is not None:
        return float(fraction)
    raw = os.environ.get(AUDIT_FRACTION_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        return float(raw)
    except ValueError as exc:
        raise PlanError(
            f"invalid {AUDIT_FRACTION_ENV} value {raw!r}: expected a "
            "fraction in [0, 1]"
        ) from exc


class AQPEngine:
    """A sampling-based approximate query engine with reliable error bars."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        seed: int | None = None,
        memory: MemoryAccountant | None = None,
    ):
        self.config = config or EngineConfig()
        self.catalog = SampleCatalog(seed=seed)
        self.registry: FunctionRegistry = default_function_registry()
        self._executor = QueryExecutor(self.registry)
        self._evaluator = ExpressionEvaluator(self.registry)
        self._rng = np.random.default_rng(seed)
        self._pool: Optional[WorkerPool] = None
        self._plan_cache: OrderedDict[str, AnalyzedQuery] = OrderedDict()
        self._shape_cache: OrderedDict[str, tuple[AnalyzedQuery, tuple]] = (
            OrderedDict()
        )
        self._plan_cache_hits = 0
        self._plan_cache_misses = 0
        self._seed = seed
        # Memory governance: an explicit accountant (the query governor
        # shares one across its engines) or an explicit budget makes a
        # private ledger; otherwise draw from the process-wide one.
        if memory is not None:
            self.memory = memory
        elif self.config.memory_budget_bytes is not None:
            self.memory = MemoryAccountant(
                self.config.memory_budget_bytes, name="engine"
            )
        else:
            self.memory = process_accountant()
        # The materialized catalog rides on the same accountant, so its
        # footprint competes with query execution under one budget.
        self._catalog_enabled = resolve_catalog_enabled(self.config.catalog)
        self.mv_catalog = MaterializedCatalog(
            memory=self.memory, config=self.config.catalog_config
        )
        # One storage-fault injector per engine: its save-op counter is
        # what makes an I/O fault schedule (torn@2, ...) deterministic.
        self.storage_injector = StorageFaultInjector(
            resolve_fault_plan(self.config.fault_plan)
        )
        # Answer-quality observability: per-query event records plus the
        # continuous calibration auditor.  A breaching
        # ``table:X|route:partial`` coverage scope means cube-served
        # answers for X are miscalibrated; the listener evicts the cubes
        # so traffic falls back to honest cold execution.
        self._event_log_enabled = resolve_event_log_enabled(
            self.config.event_log
        )
        event_path = self.config.event_log_path or os.environ.get(
            EVENT_LOG_ENV
        )
        if self._event_log_enabled and event_path:
            EVENTS.attach_sink(event_path)
        if self.config.audit_config is not None:
            audit_config = self.config.audit_config
        else:
            audit_config = AuditConfig(
                fraction=resolve_audit_fraction(self.config.audit_fraction)
            )
        self.auditor = CalibrationAuditor(audit_config)
        self.auditor.add_breach_listener(self._on_audit_breach)
        # Bounded-error/bounded-time planning (WITHIN queries): a pilot
        # pass sizes the final run; time budgets invert the persisted
        # per-replicate cost model, recalibrated from every cold run.
        self._planner_enabled = resolve_planner_enabled(self.config.planner)
        self._planner = CostPlanner(cost_model=CostModel.load())
        self._cost_observations_since_save = 0
        # Janitor pass: a previous process killed mid-query may have left
        # shared-memory segments behind; engine startup is the natural
        # place to reclaim them.
        swept = sweep_orphans()
        if swept:
            logger.info(
                "swept %d orphaned shared-memory segment(s) at startup: %s",
                len(swept),
                ", ".join(swept),
            )
            METRICS.counter("shm.orphans_swept").inc(len(swept))
        # Same janitor pass for the storage domain: a save that crashed
        # between stage and promote leaves dead staging/ files behind.
        if self.mv_catalog.config.directory is not None:
            self.mv_catalog.sweep_staging()

    # -- worker pool -------------------------------------------------------
    @property
    def worker_pool(self) -> Optional[WorkerPool]:
        """The engine's pool, or ``None`` in serial mode.

        Created lazily on first parallel use; ``num_workers=1`` (the
        default) never constructs a pool, so no process is ever
        spawned.
        """
        workers = resolve_num_workers(self.config.num_workers)
        if workers <= 1:
            return None
        if self._pool is None or self._pool.num_workers != workers:
            if self._pool is not None:
                self._pool.shutdown()
            self._pool = WorkerPool(workers)
        return self._pool

    def _new_supervision(
        self, cancel: CancelToken | None = None
    ) -> Supervision:
        """A fresh supervision context for one execute() call."""
        config = self.config
        policy = RetryPolicy(
            max_task_retries=config.max_task_retries,
            backoff_base_seconds=config.retry_backoff_seconds,
            task_timeout_seconds=config.task_timeout_seconds,
            max_pool_failures=config.max_pool_failures,
            hedge=config.hedge,
        )
        deadline = None
        if config.query_deadline_seconds is not None:
            deadline = time.monotonic() + config.query_deadline_seconds
        return Supervision(
            plan=resolve_fault_plan(config.fault_plan),
            policy=policy,
            deadline=deadline,
            allow_partial=True,
            cancel=cancel,
            memory=self.memory,
            memory_wait_seconds=config.memory_wait_seconds,
        )

    def close(self) -> None:
        """Shut down worker processes (idempotent; engine stays usable)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if getattr(self, "_cost_observations_since_save", 0) > 0:
            self._planner.cost_model.save()
            self._cost_observations_since_save = 0

    def __enter__(self) -> "AQPEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- setup ------------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register a base table."""
        self.catalog.register_table(name, table)
        # A replaced table may change the schema the cached analyses
        # were resolved against; stored answers and cubes are stale too.
        self.clear_plan_cache()
        self.mv_catalog.note_table_changed(name)

    def create_sample(
        self,
        table_name: str,
        size: int | None = None,
        fraction: float | None = None,
        name: str | None = None,
    ) -> SampleInfo:
        """Precompute a uniform sample of a base table."""
        info = self.catalog.create_sample(
            table_name, size=size, fraction=fraction, name=name
        )
        # A new sample can change which sample select_sample() picks, so
        # answers stored against the old choice no longer reflect what a
        # fresh execution would compute.
        self.mv_catalog.note_table_changed(table_name)
        return info

    def register_udf(self, name: str, fn, vectorized: bool = True) -> None:
        """Register a scalar UDF (disables closed forms for its queries)."""
        self.registry.register_udf(name, fn, vectorized)
        self.clear_plan_cache()

    def register_udaf(self, name: str, fn, weighted_fn=None) -> None:
        """Register a black-box aggregate (bootstrap-only error bars)."""
        self.registry.register_udaf(name, fn, weighted_fn)
        self.clear_plan_cache()

    # -- plan cache --------------------------------------------------------
    def clear_plan_cache(self) -> None:
        """Drop every cached analyzed query (stats are retained)."""
        self._plan_cache.clear()
        self._shape_cache.clear()

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current size of the plan cache."""
        return {
            "hits": self._plan_cache_hits,
            "misses": self._plan_cache_misses,
            "size": len(self._plan_cache),
            "shape_size": len(self._shape_cache),
            "max_size": self.config.plan_cache_size,
        }

    # -- execution ---------------------------------------------------------
    def analyze_sql(self, sql: str) -> AnalyzedQuery:
        """Parse and semantically analyze ``sql``, with a two-level LRU.

        Workload queries repeat; caching the analyzed form lets repeated
        executions skip parse→analyze→plan→rewrite.  Level 0 keys on the
        exact SQL text (zero-parse fast path).  Level 1 keys on the
        canonical query *shape* (:mod:`repro.sql.fingerprint`), so texts
        differing only in whitespace, keyword case, or predicate
        literals reuse the analyzed template: analysis metadata is
        invariant under predicate-literal substitution, so a template is
        rebound to the new statement with a ``dataclasses.replace``.
        Registering a table, UDF, or UDAF invalidates both levels, since
        those change name resolution.
        """
        cached = self._plan_cache.get(sql)
        if cached is not None:
            self._plan_cache_hits += 1
            METRICS.counter("plan_cache.hit").inc()
            trace_event("plan_cache.hit")
            self._plan_cache.move_to_end(sql)
            return cached
        statement = parse_select(sql)
        fingerprint = fingerprint_statement(statement)
        shaped = self._shape_cache.get(fingerprint.shape)
        if shaped is not None:
            template, template_bindings = shaped
            self._plan_cache_hits += 1
            METRICS.counter("plan_cache.hit").inc()
            trace_event("plan_cache.hit", level="shape")
            self._shape_cache.move_to_end(fingerprint.shape)
            if (
                fingerprint.bindings == template_bindings
                or not fingerprint.rebindable
            ):
                analyzed = template
            else:
                analyzed = replace(
                    template,
                    statement=statement,
                    where=statement.where,
                    having=statement.having,
                )
            self._remember_plan(sql, fingerprint, analyzed, shape=False)
            return analyzed
        self._plan_cache_misses += 1
        METRICS.counter("plan_cache.miss").inc()
        with trace_span("analyze", cached=False):
            analyzed = self._analyze_statement(statement)
        self._remember_plan(sql, fingerprint, analyzed, shape=True)
        return analyzed

    def _remember_plan(
        self, sql: str, fingerprint, analyzed: AnalyzedQuery, shape: bool
    ) -> None:
        if self.config.plan_cache_size <= 0:
            return
        self._plan_cache[sql] = analyzed
        while len(self._plan_cache) > self.config.plan_cache_size:
            self._plan_cache.popitem(last=False)
        if shape:
            self._shape_cache[fingerprint.shape] = (
                analyzed,
                fingerprint.bindings,
            )
            while len(self._shape_cache) > self.config.plan_cache_size:
                self._shape_cache.popitem(last=False)

    def _analyze_sql_uncached(self, sql: str) -> AnalyzedQuery:
        return self._analyze_statement(parse_select(sql))

    def _analyze_statement(self, statement) -> AnalyzedQuery:
        if statement.source.subquery is not None:
            base = self._base_table_of(statement)
        else:
            if statement.source.name is None:
                raise AnalysisError("FROM clause requires a table")
            base = statement.source.name
        table = self.catalog.table(base)
        return analyze(statement, table.schema, self.registry)

    def _base_table_of(self, statement) -> str:
        source = statement.source
        while source.subquery is not None:
            source = source.subquery.source
        if source.name is None:
            raise AnalysisError("FROM clause requires a base table")
        return source.name

    def execute_exact(self, sql: str) -> Table:
        """Run a query exactly on the full base table."""
        query = self.analyze_sql(sql)
        return self._executor.execute(query, self.catalog.table(query.source_table))

    def execute(
        self,
        sql: str,
        confidence: float | None = None,
        sample_name: str | None = None,
        max_sample_rows: int | None = None,
        error_bound: float | None = None,
        run_diagnostics: bool | None = None,
        cancel: CancelToken | None = None,
        timeout: float | None = None,
        degradation: DegradationLevel | None = None,
        within: WithinClause | None = None,
        plan: QueryPlan | None = None,
    ) -> AQPResult:
        """Answer ``sql`` approximately with reliable error bars.

        Args:
            sql: the query text.
            confidence: interval coverage (default from config).
            sample_name: run on this specific sample; otherwise the
                catalog picks the largest sample within
                ``max_sample_rows``.
            max_sample_rows: sample-size budget (a response-time proxy).
            error_bound: maximum acceptable relative error; estimates
                missing the bound trigger the fallback.
            run_diagnostics: override the engine-level diagnostics flag.
            cancel: cooperative cancellation token; when it fires, the
                query raises
                :class:`~repro.errors.QueryCancelledError` at the next
                stage/batch boundary, with all shared memory released.
            timeout: hard per-query deadline in seconds (shorthand for
                a self-cancelling token; ignored when ``cancel`` is
                given).
            degradation: fidelity floor imposed by the query governor
                (:class:`~repro.governor.breaker.DegradationLevel`).
                Any level above ``FULL`` is recorded in the execution
                report, so a stepped-down answer is never silent.
            within: a bounded-error/bounded-time contract supplied
                programmatically (the serve tier's submit fields).  A
                ``WITHIN`` clause in the SQL text wins over this; unlike
                SQL ``WITHIN`` (which is part of the shape fingerprint),
                a kwarg bound bypasses the materialized catalog.
            plan: a precomputed :class:`~repro.planner.QueryPlan` to
                execute instead of running the pilot (tests pin plans
                with this to check bit-identity against direct runs).

        Raises:
            BoundUnachievableError: the planner predicts no execution
                within the available samples/time can meet the bound;
                the error carries the minimum achievable bound.
        """
        started = time.perf_counter()
        if cancel is None and timeout is not None:
            cancel = CancelToken.with_timeout(timeout)
        level = (
            DegradationLevel(degradation)
            if degradation is not None
            else DegradationLevel.FULL
        )
        trace = Trace("query", sql=sql) if self.config.tracing else None
        token = activate_trace(trace) if trace is not None else None
        try:
            with cancel_scope(cancel):
                if cancel is not None:
                    cancel.check()
                confidence = confidence or self.config.confidence
                should_diagnose = (
                    self.config.run_diagnostics
                    if run_diagnostics is None
                    else run_diagnostics
                )
                query = self.analyze_sql(sql)
                if not query.is_aggregate_query:
                    raise AnalysisError(
                        "approximate execution requires an aggregate query; "
                        "use execute_exact for projections"
                    )
                within_clause = query.within
                if within_clause is None and within is not None:
                    within_clause = within
                if within_clause is not None:
                    if within_clause.confidence is not None:
                        confidence = within_clause.confidence
                    if within_clause.relative_error is not None:
                        # The legacy post-hoc gate stays armed even with
                        # the planner on: the plan is a prediction, the
                        # gate is the guarantee (zero dishonest
                        # answers).  With the planner off this mapping
                        # *is* the whole bounded path — the pre-planner
                        # fixed-budget behaviour, bit for bit.
                        error_bound = (
                            within_clause.relative_error
                            if error_bound is None
                            else min(
                                error_bound, within_clause.relative_error
                            )
                        )
                planner_active = (
                    within_clause is not None
                    and self._planner_enabled
                    and level is DegradationLevel.FULL
                )
                absolute_bound = (
                    within_clause.absolute_error if planner_active else None
                )
                plan_obj: Optional[QueryPlan] = None
                catalog_route: Optional[str] = None
                result_key: Optional[ResultKey] = None
                served = None
                shape: Optional[str] = None
                # A WITHIN passed as a kwarg is invisible to the shape
                # fingerprint (unlike SQL WITHIN, which is part of it),
                # so the catalog is bypassed for it entirely — serving
                # or storing would alias bounded and unbounded variants
                # of the same SQL text.
                catalog_ok = self._catalog_enabled and (
                    within is None or query.within is not None
                )
                if catalog_ok:
                    fingerprint = fingerprint_statement(query.statement)
                    shape = fingerprint.shape
                    result_key = ResultKey(
                        shape=fingerprint.shape,
                        bindings=fingerprint.bindings,
                        confidence=confidence,
                        error_bound=error_bound,
                        sample_name=sample_name,
                        max_sample_rows=max_sample_rows,
                        diagnostics=should_diagnose,
                    )
                    with trace_span("catalog.route") as route_span:
                        served = self._catalog_serve(
                            query,
                            result_key,
                            confidence,
                            error_bound,
                            should_diagnose
                            and level is DegradationLevel.FULL,
                            sample_name,
                            max_sample_rows,
                        )
                        if (
                            served is not None
                            and within_clause is not None
                            and within_clause.absolute_error is not None
                            and not _rows_within_half_width(
                                served[0], within_clause.absolute_error
                            )
                        ):
                            # The stored answer is honest but too wide
                            # for this absolute bound: fall through to
                            # a (planned) cold execution.
                            served = None
                        catalog_route = (
                            served[2] if served is not None else "miss"
                        )
                        if route_span is not None:
                            route_span.tags["route"] = catalog_route
                    if served is None:
                        self.mv_catalog.record_miss(
                            result_key.shape, materialization_hint(query)
                        )
                if served is not None:
                    # Served from the catalog: the stored/reconstructed
                    # rows carry their own provenance; no sample scan,
                    # no resampling, no engine RNG consumed.
                    (
                        rows,
                        info,
                        catalog_route,
                        bootstrap_subqueries,
                        diagnostic_subqueries,
                    ) = served
                    report = ExecutionReport()
                else:
                    with trace_span("select_sample") as sample_span:
                        if sample_name is not None:
                            info, sample = self.catalog.sample(
                                query.source_table, sample_name
                            )
                        else:
                            info, sample = self.catalog.select_sample(
                                query.source_table, max_rows=max_sample_rows
                            )
                        if sample_span is not None:
                            sample_span.tags["sample"] = info.name
                            sample_span.tags["rows"] = info.rows

                    if planner_active:
                        plan_obj = plan
                        if plan_obj is None:
                            plan_obj = self._plan_query(
                                query,
                                sql,
                                within_clause,
                                confidence,
                                info,
                                sample,
                                sample_name,
                                max_sample_rows,
                                cancel,
                            )
                        info, sample = self._apply_plan(
                            query, plan_obj, info, sample
                        )
                        METRICS.gauge("planner.chosen_fraction").set(
                            plan_obj.chosen_fraction
                        )
                    replicates_override: Optional[int] = None
                    diagnose_this = should_diagnose
                    if plan_obj is not None:
                        if (
                            plan_obj.replicates is not None
                            and plan_obj.replicates >= 2
                        ):
                            replicates_override = plan_obj.replicates
                        if not plan_obj.fixed_budget:
                            # Algorithm 1's verdict is meaningless at
                            # planner-chosen n (its subsamples shrink to
                            # tens of rows; measured false-failure is
                            # near-total while true coverage stays
                            # nominal), so planned runs skip it.  The
                            # bound contract is still enforced three
                            # ways: the post-hoc gates on every value,
                            # sample escalation, and the continuous
                            # calibration auditor.  Fixed-budget plans
                            # (full sample) keep the diagnostic.
                            diagnose_this = False

                    supervision = self._new_supervision(cancel)
                    if (
                        planner_active
                        and within_clause.time_budget_seconds is not None
                    ):
                        # A time bound is also a hard deadline: if the
                        # cost model underestimated, the run degrades
                        # honestly instead of silently overshooting.
                        budget_deadline = (
                            time.monotonic()
                            + within_clause.time_budget_seconds
                        )
                        supervision.deadline = (
                            budget_deadline
                            if supervision.deadline is None
                            else min(supervision.deadline, budget_deadline)
                        )
                    if level is not DegradationLevel.FULL:
                        supervision.report.note_degradation(
                            f"governor degradation level {level.label!r} "
                            "applied to this query"
                        )
                        trace_event("governor.degraded", level=level.label)
                        METRICS.counter(
                            f"engine.degradation.{level.label}"
                        ).inc()
                    bootstrap_subqueries = 0
                    diagnostic_subqueries = 0
                    attempt = 0
                    while True:
                        supervision.check_cancelled()
                        state = _ExecutionState(
                            engine=self,
                            query=query,
                            sql=sql,
                            sample_info=info,
                            sample=sample,
                            confidence=confidence,
                            should_diagnose=diagnose_this,
                            error_bound=error_bound,
                            supervision=supervision,
                            degradation=level,
                            replicates_override=replicates_override,
                            absolute_bound=absolute_bound,
                        )
                        with trace_span(
                            "execute_on_sample",
                            sample=info.name,
                            rows=info.rows,
                            escalation=attempt,
                        ):
                            rows = state.run()
                        bootstrap_subqueries += state.bootstrap_subqueries
                        diagnostic_subqueries += state.diagnostic_subqueries
                        escalation = self._next_larger_sample(
                            query, info, rows
                        )
                        if escalation is None:
                            break
                        info, sample = escalation
                        # Escalation means the planned cost missed the
                        # bound; the retry reverts to full fixed-budget
                        # semantics (default K, diagnostics restored).
                        replicates_override = None
                        diagnose_this = should_diagnose
                        attempt += 1
                        trace_event("sample_escalation", to_sample=info.name)
                    report = supervision.report
                    if report.degraded:
                        warnings.warn(
                            DegradedResultWarning(report.summary()),
                            stacklevel=2,
                        )
        finally:
            if trace is not None:
                deactivate_trace(token)
                trace.close()
        elapsed = time.perf_counter() - started
        if within_clause is not None:
            report.bound_kind = within_clause.kind
            report.bound_target = within_clause.bound_value
            report.achieved_bound = _achieved_bound(
                rows, within_clause.kind, elapsed
            )
        if plan_obj is not None:
            report.planned_fraction = plan_obj.chosen_fraction
            report.planned_replicates = plan_obj.replicates
            report.pilot_rows = plan_obj.pilot_rows
        if served is None and not report.degraded:
            # Every cold execution recalibrates the time-bound cost
            # model; the total replicate count is the n·K proxy the
            # model's per-replicate term attributes time to.
            self._planner.cost_model.observe(
                info.rows, bootstrap_subqueries, elapsed
            )
            self._cost_observations_since_save += 1
            if self._cost_observations_since_save >= 16:
                self._planner.cost_model.save()
                self._cost_observations_since_save = 0
        METRICS.counter("queries").inc()
        METRICS.histogram("query.seconds").observe(elapsed)
        if report.degraded:
            METRICS.counter("degraded_results").inc()
        if report.task_retries:
            METRICS.counter("pool.retries").inc(report.task_retries)
        if report.worker_crashes:
            METRICS.counter("pool.crashes").inc(report.worker_crashes)
        if report.task_timeouts:
            METRICS.counter("pool.timeouts").inc(report.task_timeouts)
        if report.pool_restarts:
            METRICS.counter("pool.restarts").inc(report.pool_restarts)
        result = AQPResult(
            sql=sql,
            rows=tuple(rows),
            sample=info,
            elapsed_seconds=elapsed,
            bootstrap_subqueries=bootstrap_subqueries,
            diagnostic_subqueries=diagnostic_subqueries,
            execution_report=report,
            trace=trace,
            catalog_route=catalog_route,
            plan=plan_obj,
        )
        if (
            catalog_ok
            and catalog_route == "miss"
            and result_key is not None
            and level is DegradationLevel.FULL
            and not report.degraded
        ):
            # Only full-fidelity, undegraded answers are worth replaying
            # — a degraded answer stored today would silently serve a
            # healthy dashboard tomorrow.
            self.mv_catalog.store_result(
                result_key,
                result.rows,
                info,
                query.source_table,
                bootstrap_subqueries,
                diagnostic_subqueries,
            )
        return self._observe(query, result, confidence, level, shape)

    # -- bounded-query planning ---------------------------------------------
    def _plan_query(
        self,
        query: AnalyzedQuery,
        sql: str,
        within_clause: WithinClause,
        confidence: float,
        info: SampleInfo,
        sample: Table,
        sample_name: Optional[str],
        max_sample_rows: Optional[int],
        cancel: CancelToken | None,
    ) -> QueryPlan:
        """Turn a WITHIN contract into a (sample, fraction, K) plan.

        Error bounds run the pilot pass; time budgets invert the
        calibrated cost model directly.  Refusals
        (:class:`~repro.errors.BoundUnachievableError`) are counted and
        re-raised — an honest "no" instead of a silently missed "yes".
        """
        if sample_name is not None:
            candidates = [info]
        else:
            candidates = [
                candidate
                for candidate in self.catalog.samples_for(query.source_table)
                if max_sample_rows is None
                or candidate.rows <= max_sample_rows
            ] or [info]
        closed_form = (
            not query.contains_udf
            and (query.inner is None or not query.inner.is_aggregate_query)
            and all(
                spec.closed_form_capable for spec in query.aggregates
            )
        )
        default_replicates = self.config.num_bootstrap_resamples
        try:
            if within_clause.kind == "time":
                plan_obj = self._planner.plan_for_time(
                    within_clause,
                    confidence,
                    candidates,
                    closed_form,
                    default_replicates,
                )
            else:
                measurement = self._run_pilot(
                    query, sql, confidence, info, sample, cancel
                )
                plan_obj = self._planner.plan_from_pilot(
                    within_clause,
                    confidence,
                    measurement,
                    candidates,
                    closed_form,
                    default_replicates,
                )
        except BoundUnachievableError:
            METRICS.counter("planner.refusals").inc()
            raise
        trace_event(
            "planner.plan", summary=plan_obj.summary(), reason=plan_obj.reason
        )
        return plan_obj

    def _run_pilot(
        self,
        query: AnalyzedQuery,
        sql: str,
        confidence: float,
        info: SampleInfo,
        sample: Table,
        cancel: CancelToken | None,
    ) -> PilotMeasurement:
        """One cheap deterministic pass over a prefix of the sample.

        Samples are stored shuffled, so the prefix is itself a uniform
        random subsample.  The pilot draws from a dedicated
        SeedSequence-derived RNG keyed on (engine seed, query shape) and
        consumes *nothing* from the engine's stream — pilot-then-final
        is bit-identical to a direct run at the chosen (fraction, K).

        The pilot measures variance only: Algorithm 1's verdict at
        pilot scale (subsamples of tens of rows) is noise, so
        diagnostics stay off here and run at the *chosen* n in the
        final pass, where the verdict is statistically meaningful and
        still gates the answer.  The pilot runs under a ``"none"``
        fallback: an untrustworthy pilot estimate makes the plan
        decline to the fixed budget, never triggers the exact fallback.
        """
        pilot_n = self._planner.pilot_rows(info.rows)
        pilot_info = replace(info, rows=pilot_n)
        pilot_sample = sample.head(pilot_n)
        shape_key = crc32(
            fingerprint_statement(query.statement).shape.encode("utf-8")
        )
        pilot_rng = np.random.default_rng(
            np.random.SeedSequence(
                [self._seed if self._seed is not None else 0, shape_key]
            )
        )
        pilot_replicates = max(
            2,
            min(
                self._planner.pilot_replicates,
                self.config.num_bootstrap_resamples,
            ),
        )
        state = _ExecutionState(
            engine=self,
            query=query,
            sql=sql,
            sample_info=pilot_info,
            sample=pilot_sample,
            confidence=confidence,
            should_diagnose=False,
            error_bound=None,
            supervision=self._new_supervision(cancel),
            degradation=DegradationLevel.FULL,
            replicates_override=pilot_replicates,
            rng_override=pilot_rng,
            fallback_override="none",
        )
        with trace_span("planner.pilot", rows=pilot_n):
            pilot_started = time.perf_counter()
            pilot_rows = state.run()
            pilot_elapsed = time.perf_counter() - pilot_started
        METRICS.counter("planner.pilot_runs").inc()
        verdict_ok = not state.supervision.report.degraded
        values: list[PilotValue] = []
        for row in pilot_rows:
            for value in row.values.values():
                if value.diagnostic is not None and not value.diagnostic.passed:
                    verdict_ok = False
                values.append(
                    PilotValue(
                        name=value.name,
                        estimate=float(value.estimate),
                        half_width=(
                            float(value.interval.half_width)
                            if value.interval is not None
                            else None
                        ),
                        trusted=not value.fell_back
                        and value.interval is not None,
                    )
                )
        return PilotMeasurement(
            rows=pilot_n,
            elapsed_seconds=pilot_elapsed,
            verdict_ok=verdict_ok,
            values=tuple(values),
        )

    def _apply_plan(
        self,
        query: AnalyzedQuery,
        plan_obj: QueryPlan,
        info: SampleInfo,
        sample: Table,
    ) -> tuple[SampleInfo, Table]:
        """Resolve a plan to its (possibly prefix-sliced) sample."""
        if plan_obj.sample_name != info.name:
            info, sample = self.catalog.sample(
                query.source_table, plan_obj.sample_name
            )
        if 0 < plan_obj.chosen_rows < info.rows:
            info = replace(info, rows=plan_obj.chosen_rows)
            sample = sample.head(plan_obj.chosen_rows)
        return info, sample

    # -- answer-quality observability ---------------------------------------
    def _observe(
        self,
        query: AnalyzedQuery,
        result: AQPResult,
        confidence: float,
        level: DegradationLevel,
        shape: Optional[str] = None,
    ) -> AQPResult:
        """Audit + event-log one completed execution.

        Runs after the answer is fully formed and consumes no RNG —
        observability must never change an answer, so every failure
        here is contained (counted, logged, swallowed).  The fast path
        (ring-only event, query not sampled for audit) is one pass over
        the result's values plus a deque append.
        """
        if not self._event_log_enabled and not self.auditor.enabled:
            return result
        try:
            if shape is None:
                shape = fingerprint_statement(query.statement).shape
            fingerprint = f"{crc32(shape.encode()):08x}"
            outcome = None
            if self.auditor.enabled and self.auditor.should_audit(
                fingerprint
            ):
                outcome = self.auditor.audit(
                    self, query, result, level=level.label
                )
            if not self._event_log_enabled:
                return result
            route = result.catalog_route or "cold"
            if route == "miss":
                route = "cold"
            report = result.execution_report
            # One pass over the shipped values collects every quality
            # aggregate the event carries.
            diag_seen = diag_failed = fallbacks = 0
            max_half_width = max_relative_error = None
            methods = set()
            for row in result.rows:
                for value in row.values.values():
                    methods.add(value.method)
                    if value.fell_back:
                        fallbacks += 1
                    if value.diagnostic is not None:
                        diag_seen += 1
                        if not value.diagnostic.passed:
                            diag_failed += 1
                    interval = value.interval
                    if interval is not None:
                        if (
                            max_half_width is None
                            or interval.half_width > max_half_width
                        ):
                            max_half_width = interval.half_width
                        relative = value.relative_error
                        if relative is not None and (
                            max_relative_error is None
                            or relative > max_relative_error
                        ):
                            max_relative_error = relative
            event = QueryEvent(
                sql=result.sql,
                fingerprint=fingerprint,
                table=query.source_table,
                route=route,
                level=level.label,
                verdict=(
                    "skipped"
                    if not diag_seen
                    else ("failed" if diag_failed else "passed")
                ),
                confidence=confidence,
                max_half_width=max_half_width,
                max_relative_error=max_relative_error,
                methods=tuple(sorted(methods)),
                bootstrap_k=result.bootstrap_subqueries,
                diagnostic_subqueries=result.diagnostic_subqueries,
                rows=len(result.rows),
                latency_seconds=result.elapsed_seconds,
                memory_peak_bytes=self.memory.snapshot()["peak_bytes"],
                retries=report.task_retries if report else 0,
                worker_crashes=report.worker_crashes if report else 0,
                task_timeouts=report.task_timeouts if report else 0,
                hedges_launched=report.hedges_launched if report else 0,
                hedges_won=report.hedges_won if report else 0,
                degraded=result.degraded,
                fallbacks=fallbacks,
                audited=outcome is not None,
                covered=outcome.covered if outcome is not None else None,
                audit=outcome.to_dict() if outcome is not None else {},
            )
            stamped = EVENTS.record(event)
            # The result is freshly constructed and exclusively owned
            # here; stamping the event in place avoids re-copying every
            # field of a frozen dataclass on the per-query hot path.
            object.__setattr__(result, "event", stamped)
            return result
        except Exception as exc:  # noqa: BLE001 — never fail the query
            METRICS.counter("events.errors").inc()
            logger.warning("query event emission failed: %s", exc)
            return result

    def _on_audit_breach(self, scope: str, snapshot: dict) -> None:
        """Calibration breach → evict the implicated rollup cubes.

        Only the ``table:X|route:partial`` scope names a control action
        this engine owns (cube-served answers for X are miscalibrated).
        Broader scopes are fleet signals the governor consumes
        (:class:`~repro.governor.admission.QueryGovernor` trips its
        breaker with a ``quality_breach`` cause).
        """
        if "|route:partial" not in scope or not scope.startswith("table:"):
            return
        table = scope.split("|", 1)[0].split(":", 1)[1]
        dropped = self.mv_catalog.invalidate_cubes(
            table, reason="calibration_breach"
        )
        if dropped:
            logger.warning(
                "calibration breach on %s: invalidated %d cube(s) for "
                "table %r",
                scope,
                dropped,
                table,
            )

    def _next_larger_sample(
        self, query, info, rows
    ) -> tuple[SampleInfo, Table] | None:
        """Escalate to a larger catalog sample after an error-bound miss.

        §1: error estimates let the system trade accuracy against query
        time smoothly.  When a value misses the caller's error bound on
        this sample and a larger precomputed sample exists, retry there
        before resorting to the exact fallback.  Diagnostic failures are
        *not* escalated: a bigger sample rarely rescues an untrustworthy
        estimation procedure.
        """
        if not self.config.escalate_samples:
            return None
        bound_missed = any(
            value.fell_back and "exceeds bound" in value.fallback_reason
            for row in rows
            for value in row.values.values()
        )
        if not bound_missed:
            return None
        larger = sorted(
            (
                candidate
                for candidate in self.catalog.samples_for(query.source_table)
                if candidate.rows > info.rows
            ),
            key=lambda candidate: candidate.rows,
        )
        if not larger:
            return None
        return self.catalog.sample(query.source_table, larger[0].name)

    # -- materialized catalog ----------------------------------------------
    def _catalog_serve(
        self,
        query: AnalyzedQuery,
        key: ResultKey,
        confidence: float,
        error_bound: Optional[float],
        should_diagnose: bool,
        sample_name: Optional[str],
        max_sample_rows: Optional[int],
    ) -> Optional[tuple]:
        """Exact match first, then cube re-aggregation; ``None`` on miss."""
        entry = self.mv_catalog.lookup_result(key)
        if entry is not None:
            self.mv_catalog.record_exact_hit()
            trace_event("catalog.route", route="exact")
            return (
                list(entry.rows),
                entry.sample_info,
                "exact",
                entry.bootstrap_subqueries,
                entry.diagnostic_subqueries,
            )
        for cube in self.mv_catalog.cubes_for(query.source_table):
            if sample_name is not None and cube.sample_name != sample_name:
                continue
            if (
                max_sample_rows is not None
                and cube.sample_rows > max_sample_rows
            ):
                continue
            rows = serve_from_cube(
                cube,
                query,
                self._evaluator,
                confidence,
                error_bound,
                should_diagnose,
            )
            if rows is not None:
                self.mv_catalog.record_partial_hit()
                trace_event(
                    "catalog.route",
                    route="partial",
                    cube="/".join(cube.dims),
                )
                return (rows, cube.sample_info, "partial", 0, 0)
        return None

    def materialize(
        self,
        table_name: str,
        dims,
        measures=None,
        sample_name: Optional[str] = None,
        num_resamples: Optional[int] = None,
    ) -> RollupCube:
        """Build (and register) a rollup cube over ``dims``.

        Args:
            table_name: base table; the cube is built over one of its
                precomputed samples.
            dims: grouping-key columns — the cube serves any query
                grouping/filtering on a subset of these.
            measures: numeric columns to pre-aggregate; defaults to
                every numeric non-dim column of the sample.
            sample_name: which sample to build over (default: the one
                ``select_sample`` would pick).
            num_resamples: bootstrap replicate count K (default: the
                engine's ``num_bootstrap_resamples``).
        """
        if sample_name is not None:
            info, sample = self.catalog.sample(table_name, sample_name)
        else:
            info, sample = self.catalog.select_sample(table_name)
        dims = tuple(dims)
        if measures is None:
            measures = tuple(
                name
                for name, dtype in sample.schema.items()
                if name not in dims and np.issubdtype(dtype, np.number)
            )
        else:
            measures = tuple(measures)
        with trace_span("catalog.materialize", table=table_name):
            cube = RollupCube.build(
                table_name=table_name,
                sample_info=info,
                sample=sample,
                dims=dims,
                measures=measures,
                num_resamples=(
                    num_resamples or self.config.num_bootstrap_resamples
                ),
                seed=self._seed if self._seed is not None else 0,
                table_version=self.mv_catalog.table_version(table_name),
                memory=self.memory,
                wait_seconds=self.config.memory_wait_seconds,
            )
        self.mv_catalog.add_cube(cube)
        directory = self.mv_catalog.config.directory
        if directory is not None:
            try:
                cube.save(directory, injector=self.storage_injector)
            except StorageUnavailableError as exc:
                # Persistence is best-effort: the cube still serves from
                # memory this session; only its durability is lost.
                logger.warning(
                    "cube for %s over %s not persisted: %s",
                    table_name,
                    dims,
                    exc,
                )
        METRICS.counter("catalog.materializations").inc()
        return cube

    def process_materialization_queue(
        self, limit: Optional[int] = None
    ) -> list[RollupCube]:
        """Materialize cubes for shapes that keep missing (foreground).

        The router only *enqueues* — this drains the queue, typically
        called between dashboard refreshes or from a maintenance loop.
        """
        hints = self.mv_catalog.drain_materialization_queue()
        if limit is not None:
            hints = hints[:limit]
        built: list[RollupCube] = []
        for table_name, dims, measures in hints:
            try:
                built.append(
                    self.materialize(
                        table_name, dims, measures=measures or None
                    )
                )
            except (CatalogError, ResourceExhaustedError) as exc:
                logger.info(
                    "skipping materialization of %s over %s: %s",
                    table_name,
                    dims,
                    exc,
                )
        return built

    def catalog_info(self) -> dict:
        """Hit/miss counters and footprint of the materialized catalog."""
        info = self.mv_catalog.info()
        info["enabled"] = self._catalog_enabled
        return info


@dataclass
class _ExecutionState:
    """One execute() call's worth of context and counters."""

    engine: AQPEngine
    query: AnalyzedQuery
    sql: str
    sample_info: SampleInfo
    sample: Table
    confidence: float
    should_diagnose: bool
    error_bound: Optional[float]
    supervision: Supervision = field(default_factory=Supervision.default)
    degradation: DegradationLevel = DegradationLevel.FULL
    bootstrap_subqueries: int = 0
    diagnostic_subqueries: int = 0
    #: Planner overrides.  A planned run executes at exactly the chosen
    #: replicate count; the pilot pass additionally runs on a dedicated
    #: RNG stream (consuming nothing from the engine's, so the final
    #: run's streams are bit-identical to a direct run) under a
    #: ``"none"`` fallback (a failed pilot diagnostic must never trigger
    #: the expensive exact fallback — it just makes the plan decline).
    replicates_override: Optional[int] = None
    rng_override: Optional[np.random.Generator] = None
    fallback_override: Optional[str] = None
    #: Absolute half-width honesty gate (``WITHIN <value>``); the
    #: relative gate rides the legacy ``error_bound``.
    absolute_bound: Optional[float] = None
    _exact_result: Optional[Table] = None

    @property
    def num_resamples(self) -> int:
        """Bootstrap K for this run (planner override or config)."""
        if self.replicates_override is not None:
            return self.replicates_override
        return self.engine.config.num_bootstrap_resamples

    @property
    def rng(self) -> np.random.Generator:
        """The RNG all stochastic work draws from (pilot or engine)."""
        if self.rng_override is not None:
            return self.rng_override
        return self.engine._rng

    # -- orchestration -------------------------------------------------------
    def run(self) -> list[AQPRow]:
        if self.query.inner is not None and self.query.inner.is_aggregate_query:
            return [self._run_black_box()]
        with trace_span("prepare_sample"):
            working, where_mask = self._prepare_sample()
        if not self.query.group_by:
            values = {
                spec.output_name: self._estimate_one(spec, working, where_mask)
                for spec in self.query.aggregates
            }
            return [AQPRow(group={}, values=values)]
        return self._run_grouped(working, where_mask)

    def _prepare_sample(self) -> tuple[Table, np.ndarray | None]:
        """Apply the inner pass-through query; evaluate the outer filter."""
        working = self.sample
        if self.query.inner is not None:
            working = self.engine._executor.execute(self.query.inner, working)
        where_mask = None
        if self.query.where is not None:
            where_mask = self.engine._evaluator.evaluate(
                self.query.where, working
            )
            where_mask = (
                where_mask
                if where_mask.dtype == np.bool_
                else where_mask.astype(bool)
            )
        return working, where_mask

    def _run_grouped(
        self, working: Table, where_mask: np.ndarray | None
    ) -> list[AQPRow]:
        """One estimation problem per group (§2.1), any number of keys.

        Two kernels can compute those problems.  The default
        ``segmented`` kernel answers *all* groups of an aggregate from
        one scan: a single Poissonized weight matrix feeds segmented
        reductions (§5.3.1 applied across the GROUP BY), so the cost is
        O(n·K) instead of the legacy O(G·n·K).
        ``REPRO_GROUPED_KERNEL=reference`` restores the per-group loop —
        the statistical oracle the segmented kernel is validated
        against.
        """
        from repro.plan.executor import _group_rows

        key_arrays = [
            self.engine._evaluator.evaluate(expr, working)
            for expr in self.query.group_by
        ]
        group_ids, group_keys = _group_rows(key_arrays)
        num_groups = len(group_keys[0]) if group_keys else 0
        group_dicts = [
            {
                name: group_keys[key_index][g]
                for key_index, name in enumerate(self.query.group_by_names)
            }
            for g in range(num_groups)
        ]
        if resolve_grouped_kernel_mode() == "reference":
            return self._run_grouped_reference(
                working, where_mask, group_ids, group_dicts
            )
        per_spec = [
            self._estimate_grouped(
                spec, working, where_mask, group_ids, num_groups, group_dicts
            )
            for spec in self.query.aggregates
        ]
        return [
            AQPRow(
                group=group_dicts[g],
                values={
                    spec.output_name: per_spec[index][g]
                    for index, spec in enumerate(self.query.aggregates)
                },
            )
            for g in range(num_groups)
        ]

    def _run_grouped_reference(
        self,
        working: Table,
        where_mask: np.ndarray | None,
        group_ids: np.ndarray,
        group_dicts: list[dict],
    ) -> list[AQPRow]:
        """The reference kernel: one full estimation pipeline per group."""
        rows: list[AQPRow] = []
        for g, group in enumerate(group_dicts):
            group_mask = group_ids == g
            combined = (
                group_mask if where_mask is None else group_mask & where_mask
            )
            values = {
                spec.output_name: self._estimate_one(
                    spec, working, combined, group
                )
                for spec in self.query.aggregates
            }
            rows.append(AQPRow(group=group, values=values))
        return rows

    def _estimate_grouped(
        self,
        spec,
        working: Table,
        where_mask: np.ndarray | None,
        group_ids: np.ndarray,
        num_groups: int,
        group_dicts: list[dict],
    ) -> list[ApproximateValue]:
        """Every group's estimate for one aggregate, from shared scans.

        The routing mirrors :meth:`_estimate_one` decision-for-decision;
        only the *work* is consolidated.  Groups the segmented formulas
        cannot serve — emptied by the WHERE mask, or where the scalar
        closed form would have raised — are routed through
        :meth:`_estimate_one` individually, so their behaviour
        (error messages, fallback policy) stays exactly legacy.
        """
        self.supervision.check_cancelled()
        with trace_span(
            "estimate", aggregate=spec.output_name, groups=num_groups
        ) as span:
            if spec.argument is None:
                argument_values = np.ones(working.num_rows, dtype=np.float64)
            else:
                argument_values = self.engine._evaluator.evaluate(
                    spec.argument, working
                )
            target = GroupedTarget(
                values=np.asarray(argument_values, dtype=np.float64),
                group_ids=group_ids,
                num_groups=num_groups,
                aggregate=spec.function,
                mask=where_mask,
                dataset_rows=self.sample_info.dataset_rows,
                extensive=spec.extensive,
            )

            def route_one(g: int) -> ApproximateValue:
                combined = group_ids == g
                if where_mask is not None:
                    combined = combined & where_mask
                return self._estimate_one(
                    spec, working, combined, group_dicts[g]
                )

            def scalar_target(g: int) -> EstimationTarget:
                combined = group_ids == g
                if where_mask is not None:
                    combined = combined & where_mask
                return EstimationTarget(
                    values=target.values,
                    aggregate=spec.function,
                    mask=combined,
                    dataset_rows=self.sample_info.dataset_rows,
                    extensive=spec.extensive,
                )

            results: list[ApproximateValue] = [None] * num_groups
            counts = target.group_index.counts
            for g in np.flatnonzero(counts == 0):
                # The WHERE mask emptied this group: the legacy scalar
                # path owns that edge (COUNT's exact 0 ± 0 closed form,
                # the bootstrap's matched-no-rows fallback).
                results[g] = route_one(int(g))
            active = np.flatnonzero(counts > 0)
            if active.size == 0:
                return results

            if spec.closed_form_capable and not self.query.contains_udf:
                return self._grouped_closed_form(
                    spec, target, active, results, span,
                    route_one, scalar_target, group_dicts,
                )
            if self.engine.config.use_quantile_closed_form:
                from repro.core.quantile_closed_form import (
                    QuantileClosedFormEstimator,
                )
                from repro.engine.aggregates import PercentileAggregate

                if isinstance(
                    spec.function, PercentileAggregate
                ) and not spec.contains_udf:
                    probe = EstimationTarget(
                        values=np.empty(0), aggregate=spec.function
                    )
                    if QuantileClosedFormEstimator().applicable(probe):
                        # The quantile closed form is an inherently
                        # scalar derivation; evaluate it per group.
                        for g in active:
                            results[g] = route_one(int(g))
                        return results
            return self._grouped_bootstrap(
                spec, target, active, results, span,
                route_one, scalar_target, group_dicts,
            )

    def _grouped_closed_form(
        self,
        spec,
        target: GroupedTarget,
        active: np.ndarray,
        results: list,
        span,
        route_one,
        scalar_target,
        group_dicts: list[dict],
    ) -> list[ApproximateValue]:
        if span is not None:
            span.tags["estimator"] = "closed_form"
        try:
            points, half_widths = grouped_closed_form_intervals(
                target, self.confidence
            )
        except EstimationError:
            # The whole-sample geometry is degenerate (e.g. an empty
            # sample): the scalar path raises the same way per group
            # and applies the configured fallback.
            for g in active:
                results[g] = route_one(int(g))
            return results
        diagnostics = self._grouped_diagnostics(
            target, points, "closed_form", "closed_form"
        )
        for g in active:
            g = int(g)
            if not np.isfinite(half_widths[g]):
                # NaN marks "the scalar formula would have raised here"
                # (e.g. AVG of a single row): replay it through the
                # scalar path for the identical error and fallback.
                results[g] = route_one(g)
                continue
            interval = ConfidenceInterval(
                estimate=float(points[g]),
                half_width=float(half_widths[g]),
                confidence=self.confidence,
                method="closed_form",
            )
            results[g] = self._finish_grouped_value(
                spec, interval, "closed_form",
                diagnostics[g] if diagnostics is not None else None,
                scalar_target, g, group_dicts,
            )
        return results

    def _grouped_bootstrap(
        self,
        spec,
        target: GroupedTarget,
        active: np.ndarray,
        results: list,
        span,
        route_one,
        scalar_target,
        group_dicts: list[dict],
    ) -> list[ApproximateValue]:
        num_resamples = self.num_resamples
        if num_resamples < 2:
            raise EstimationError(
                f"bootstrap needs at least 2 resamples, got {num_resamples}"
            )
        if self.degradation >= DegradationLevel.CLOSED_FORM:
            # The governor floored this query below the bootstrap:
            # substitute per-group honest answers, never run replicates.
            reason = (
                f"governor degradation level {self.degradation.label!r}"
            )
            allow_closed_form = (
                self.degradation == DegradationLevel.CLOSED_FORM
            )
            for g in active:
                g = int(g)
                results[g] = self._degraded_value(
                    spec,
                    scalar_target(g),
                    reason=reason,
                    group=group_dicts[g],
                    allow_closed_form=allow_closed_form,
                )
            return results
        if span is not None:
            span.tags["estimator"] = "bootstrap"
        try:
            replicates = grouped_bootstrap_replicates(
                target,
                num_resamples,
                seed_from_rng(self.rng),
                pool=self.engine.worker_pool,
                supervision=self.supervision,
                replicate_cap=self._replicate_cap(),
            )
        except EstimationError as exc:
            for g in active:
                g = int(g)
                results[g] = self._fall_back(
                    spec, scalar_target(g), reason=str(exc),
                    group=group_dicts[g],
                )
            return results
        except ResourceExhaustedError as exc:
            for g in active:
                g = int(g)
                results[g] = self._degraded_value(
                    spec, scalar_target(g), str(exc), group=group_dicts[g]
                )
            return results
        except ExecutionError as exc:
            for g in active:
                g = int(g)
                results[g] = self._degraded_value(
                    spec, scalar_target(g), str(exc), group=group_dicts[g]
                )
            return results
        # One consolidated scan answered every group: K resample
        # subqueries total, not K per group (§5.3.1 accounting).
        self.bootstrap_subqueries += num_resamples
        points = target.point_estimates()
        half_widths, reasons = grouped_half_widths(
            replicates, points, self.confidence
        )
        inflation = 1.0
        if replicates.shape[1] < num_resamples:
            inflation = float(
                np.sqrt(num_resamples / replicates.shape[1])
            )
        diagnostics = self._grouped_diagnostics(
            target, points, "bootstrap", "bootstrap"
        )
        for g in active:
            g = int(g)
            if reasons[g] is not None:
                results[g] = self._fall_back(
                    spec, scalar_target(g), reason=reasons[g],
                    group=group_dicts[g],
                )
                continue
            interval = ConfidenceInterval(
                estimate=float(points[g]),
                half_width=float(half_widths[g]) * inflation,
                confidence=self.confidence,
                method="bootstrap",
            )
            results[g] = self._finish_grouped_value(
                spec, interval, "bootstrap",
                diagnostics[g] if diagnostics is not None else None,
                scalar_target, g, group_dicts,
            )
        return results

    def _finish_grouped_value(
        self,
        spec,
        interval: ConfidenceInterval,
        method: str,
        diagnostic: DiagnosticResult | None,
        scalar_target,
        g: int,
        group_dicts: list[dict],
    ) -> ApproximateValue:
        """Apply the verdict and error-bound gates to one group's value."""
        if diagnostic is not None and not diagnostic.passed:
            return self._fall_back(
                spec,
                scalar_target(g),
                reason=f"diagnostic failed: {diagnostic.reason}",
                diagnostic=diagnostic,
                group=group_dicts[g],
            )
        if (
            self.error_bound is not None
            and interval.relative_error > self.error_bound
        ):
            return self._fall_back(
                spec,
                scalar_target(g),
                reason=(
                    f"relative error {interval.relative_error:.3f} "
                    f"exceeds bound {self.error_bound}"
                ),
                diagnostic=diagnostic,
                group=group_dicts[g],
            )
        if (
            self.absolute_bound is not None
            and interval.half_width > self.absolute_bound
        ):
            return self._fall_back(
                spec,
                scalar_target(g),
                reason=(
                    f"half-width {interval.half_width:.4g} "
                    f"exceeds bound {self.absolute_bound}"
                ),
                diagnostic=diagnostic,
                group=group_dicts[g],
            )
        return ApproximateValue(
            name=spec.output_name,
            estimate=interval.estimate,
            interval=interval,
            method=method,
            diagnostic=diagnostic,
        )

    def _grouped_diagnostics(
        self,
        target: GroupedTarget,
        points: np.ndarray,
        estimator_kind: str,
        estimator_name: str,
    ) -> list[DiagnosticResult] | None:
        """Per-group verdicts from one consolidated diagnostic pass."""
        if not (self.should_diagnose and self._diagnostics_allowed):
            return None
        config = self.engine.config.diagnostic or _auto_diagnostic_config(
            target.total_sample_rows
        )
        if config is None:
            return None
        try:
            verdicts, shared_evaluations = grouped_diagnose(
                target,
                points,
                estimator_kind,
                estimator_name,
                self.num_resamples,
                self.confidence,
                config,
                self.rng,
                pool=self.engine.worker_pool,
                supervision=self.supervision,
            )
        except ResourceExhaustedError as exc:
            self.supervision.report.note_degradation(
                f"diagnostic skipped under memory pressure: {exc}"
            )
            return None
        except ExecutionError as exc:
            failed = DiagnosticResult(
                passed=False,
                reports=(),
                estimator_name=estimator_name,
                reason=f"diagnostic execution failed: {exc}",
            )
            return [failed] * target.num_groups
        self.diagnostic_subqueries += shared_evaluations
        return verdicts

    # -- per-aggregate estimation ------------------------------------------
    def _estimate_one(
        self,
        spec,
        working: Table,
        mask: np.ndarray | None,
        group: dict | None = None,
    ) -> ApproximateValue:
        self.supervision.check_cancelled()
        with trace_span("estimate", aggregate=spec.output_name) as span:
            if spec.argument is None:
                argument_values = np.ones(working.num_rows, dtype=np.float64)
            else:
                argument_values = self.engine._evaluator.evaluate(
                    spec.argument, working
                )
            target = EstimationTarget(
                values=np.asarray(argument_values, dtype=np.float64),
                aggregate=spec.function,
                mask=mask,
                dataset_rows=self.sample_info.dataset_rows,
                extensive=spec.extensive,
            )
            estimator = self._pick_estimator(spec)
            if (
                estimator.name == "bootstrap"
                and self.degradation >= DegradationLevel.CLOSED_FORM
            ):
                # The governor floored this query below the bootstrap:
                # substitute the closed form when it applies, else the
                # flagged point estimate — never run the K replicates.
                return self._degraded_value(
                    spec,
                    target,
                    reason=(
                        "governor degradation level "
                        f"{self.degradation.label!r}"
                    ),
                    group=group,
                    allow_closed_form=(
                        self.degradation == DegradationLevel.CLOSED_FORM
                    ),
                )
            if span is not None:
                span.tags["estimator"] = estimator.name
            rng = self.rng
            try:
                interval = estimator.estimate(target, self.confidence, rng)
            except EstimationError as exc:
                return self._fall_back(
                    spec, target, reason=str(exc), group=group
                )
            except ResourceExhaustedError as exc:
                # The plan's memory footprint does not fit the budget:
                # it was refused before allocation, so degrade to a
                # cheaper (honest) estimate rather than crash or swap.
                return self._degraded_value(
                    spec, target, str(exc), group=group
                )
            except ExecutionError as exc:
                # The bootstrap fan-out is entirely unavailable (every
                # replicate chunk failed).  Degrade honestly instead of
                # crashing: substitute a reliable estimate when one
                # exists, else flag the point estimate as unreliable.
                return self._degraded_value(
                    spec, target, str(exc), group=group
                )
            if estimator.name == "bootstrap":
                self.bootstrap_subqueries += self.num_resamples

            diagnostic = None
            if self.should_diagnose and self._diagnostics_allowed:
                diagnostic = self._diagnose(target, estimator)
                if diagnostic is not None and not diagnostic.passed:
                    return self._fall_back(
                        spec,
                        target,
                        reason=f"diagnostic failed: {diagnostic.reason}",
                        diagnostic=diagnostic,
                        group=group,
                    )
            if (
                self.error_bound is not None
                and interval.relative_error > self.error_bound
            ):
                return self._fall_back(
                    spec,
                    target,
                    reason=(
                        f"relative error {interval.relative_error:.3f} "
                        f"exceeds bound {self.error_bound}"
                    ),
                    diagnostic=diagnostic,
                    group=group,
                )
            if (
                self.absolute_bound is not None
                and interval.half_width > self.absolute_bound
            ):
                return self._fall_back(
                    spec,
                    target,
                    reason=(
                        f"half-width {interval.half_width:.4g} "
                        f"exceeds bound {self.absolute_bound}"
                    ),
                    diagnostic=diagnostic,
                    group=group,
                )
            return ApproximateValue(
                name=spec.output_name,
                estimate=interval.estimate,
                interval=interval,
                method=estimator.name,
                diagnostic=diagnostic,
            )

    @property
    def _diagnostics_allowed(self) -> bool:
        """Diagnostics only run at full fidelity.

        Every rung below ``FULL`` exists to shed work under pressure,
        and the diagnostic's p×k subsample evaluations are the most
        expendable work there is: the result is already flagged
        degraded, so skipping the diagnostic never hides anything.
        """
        return self.degradation is DegradationLevel.FULL

    def _replicate_cap(self) -> Optional[int]:
        """The reduced-K budget, or ``None`` at full fidelity.

        A quarter of the configured K (at least 2); the ops layer
        rounds it to a whole chunk so the computed replicates stay
        bit-identical to the leading chunks of a full run, and the
        estimator widens the CI by ``sqrt(K/K')``.
        """
        if self.degradation < DegradationLevel.REDUCED_K:
            return None
        return max(2, self.engine.config.num_bootstrap_resamples // 4)

    def _pick_estimator(self, spec) -> ErrorEstimator:
        if spec.closed_form_capable and not self.query.contains_udf:
            return ClosedFormEstimator()
        if self.engine.config.use_quantile_closed_form:
            from repro.core.quantile_closed_form import (
                QuantileClosedFormEstimator,
            )
            from repro.engine.aggregates import PercentileAggregate

            quantile_estimator = QuantileClosedFormEstimator()
            if isinstance(
                spec.function, PercentileAggregate
            ) and not spec.contains_udf:
                probe = EstimationTarget(
                    values=np.empty(0), aggregate=spec.function
                )
                if quantile_estimator.applicable(probe):
                    return quantile_estimator
        return BootstrapEstimator(
            self.num_resamples,
            self.rng,
            pool=self.engine.worker_pool,
            supervision=self.supervision,
            replicate_cap=self._replicate_cap(),
        )

    def _diagnose(self, target, estimator) -> DiagnosticResult | None:
        config = self.engine.config.diagnostic or _auto_diagnostic_config(
            target.total_sample_rows
        )
        if config is None:
            return None
        try:
            result = diagnose(
                target,
                estimator,
                self.confidence,
                config,
                self.rng,
                pool=self.engine.worker_pool,
                supervision=self.supervision,
            )
        except ResourceExhaustedError as exc:
            # The diagnostic's footprint does not fit the memory budget.
            # It is advisory work: skip it (recorded as a degradation)
            # rather than trigger the exact fallback, whose full-data
            # scan is the *most* expensive response to memory pressure.
            self.supervision.report.note_degradation(
                f"diagnostic skipped under memory pressure: {exc}"
            )
            return None
        except ExecutionError as exc:
            # No subsample evaluation completed at some size: the
            # diagnostic could not run, which is *not* evidence that
            # error estimation works — treat it as a failed verdict so
            # the configured fallback engages.
            result = DiagnosticResult(
                passed=False,
                reports=(),
                estimator_name=estimator.name,
                reason=f"diagnostic execution failed: {exc}",
            )
        self.diagnostic_subqueries += result.num_subqueries
        return result

    def _degraded_value(
        self,
        spec,
        target: EstimationTarget | None,
        reason: str,
        group: dict | None = None,
        allow_closed_form: bool = True,
    ) -> ApproximateValue:
        """Honest answer when the bootstrap cannot (or must not) run.

        Used both when the fan-out is entirely down and when the
        governor floors a query below the bootstrap.  Falls back to the
        closed-form error estimate when one is mathematically
        applicable to this aggregate (even for queries the planner
        routed to the bootstrap), otherwise returns the sample point
        estimate with no interval, flagged ``unreliable``.  Never a
        silent wrong answer, never a spurious crash.  The
        ``POINT_ESTIMATE`` ladder rung disables the closed form too.
        """
        report = self.supervision.report
        report.note_degradation(f"bootstrap unavailable: {reason}")
        trace_event(
            "degraded", aggregate=spec.output_name, reason=reason
        )
        closed = ClosedFormEstimator()
        if (
            allow_closed_form
            and isinstance(target, EstimationTarget)
            and closed.applicable(target)
        ):
            report.note_fallback(
                "bootstrap unavailable; closed-form error estimate "
                "substituted"
            )
            interval = closed.estimate(target, self.confidence)
            return ApproximateValue(
                name=spec.output_name,
                estimate=interval.estimate,
                interval=interval,
                method=closed.name,
                fell_back=True,
                fallback_reason=reason,
            )
        report.note_fallback(
            "no error estimate available; point estimate returned "
            "flagged unreliable"
        )
        estimate = (
            target.point_estimate() if target is not None else float("nan")
        )
        return ApproximateValue(
            name=spec.output_name,
            estimate=estimate,
            interval=None,
            method="unreliable",
            fell_back=True,
            fallback_reason=reason,
        )

    # -- black-box path for nested aggregation ---------------------------------
    def _run_black_box(self) -> AQPRow:
        with trace_span("black_box"):
            return self._run_black_box_inner()

    def _run_black_box_inner(self) -> AQPRow:
        self.supervision.check_cancelled()
        target = TableQueryTarget(
            table=self.sample, query=self.query, executor=self.engine._executor
        )
        spec = self.query.aggregates[0]
        if self.degradation >= DegradationLevel.CLOSED_FORM:
            # No closed form exists for a black-box nested query, so
            # both lower rungs collapse to the flagged point estimate.
            value = self._degraded_value(
                spec,
                target,
                reason=(
                    "governor degradation level "
                    f"{self.degradation.label!r}"
                ),
            )
            return AQPRow(group={}, values={spec.output_name: value})
        estimator = BlackBoxBootstrapEstimator(
            self.num_resamples,
            self.rng,
            pool=self.engine.worker_pool,
            supervision=self.supervision,
            replicate_cap=self._replicate_cap(),
        )
        try:
            interval = estimator.estimate(target, self.confidence)
        except (ExecutionError, ResourceExhaustedError) as exc:
            value = self._degraded_value(spec, target, str(exc))
            return AQPRow(group={}, values={spec.output_name: value})
        self.bootstrap_subqueries += self.num_resamples
        diagnostic = None
        if self.should_diagnose and self._diagnostics_allowed:
            config = self.engine.config.diagnostic or _auto_diagnostic_config(
                target.total_sample_rows, black_box=True
            )
            if config is not None:
                try:
                    diagnostic = diagnose(
                        target,
                        estimator,
                        self.confidence,
                        config,
                        self.rng,
                        pool=self.engine.worker_pool,
                        supervision=self.supervision,
                    )
                except ResourceExhaustedError as exc:
                    self.supervision.report.note_degradation(
                        f"diagnostic skipped under memory pressure: {exc}"
                    )
                    diagnostic = None
                except ExecutionError as exc:
                    diagnostic = DiagnosticResult(
                        passed=False,
                        reports=(),
                        estimator_name=estimator.name,
                        reason=f"diagnostic execution failed: {exc}",
                    )
                if diagnostic is not None:
                    self.diagnostic_subqueries += diagnostic.num_subqueries
        if diagnostic is not None and not diagnostic.passed:
            value = self._fall_back(
                spec,
                None,
                reason=f"diagnostic failed: {diagnostic.reason}",
                diagnostic=diagnostic,
            )
        else:
            value = ApproximateValue(
                name=spec.output_name,
                estimate=interval.estimate,
                interval=interval,
                method=estimator.name,
                diagnostic=diagnostic,
            )
        return AQPRow(group={}, values={spec.output_name: value})

    # -- fallbacks -----------------------------------------------------------
    def _fall_back(
        self,
        spec,
        target: EstimationTarget | None,
        reason: str,
        diagnostic: DiagnosticResult | None = None,
        group: dict | None = None,
    ) -> ApproximateValue:
        policy = self.fallback_override or self.engine.config.fallback
        trace_event(
            "fallback", aggregate=spec.output_name, policy=policy,
            reason=reason,
        )
        METRICS.counter("fallbacks").inc()
        if policy == "large_deviation" and target is not None:
            hoeffding = HoeffdingEstimator()
            if hoeffding.applicable(target):
                interval = hoeffding.estimate(target, self.confidence)
                return ApproximateValue(
                    name=spec.output_name,
                    estimate=interval.estimate,
                    interval=interval,
                    method="hoeffding",
                    diagnostic=diagnostic,
                    fell_back=True,
                    fallback_reason=reason,
                )
            # Hoeffding not derivable for this aggregate: fall through to
            # exact, the always-available reliable path.
        if policy == "none":
            estimate = (
                target.point_estimate() if target is not None else float("nan")
            )
            return ApproximateValue(
                name=spec.output_name,
                estimate=estimate,
                interval=None,
                method="untrusted",
                diagnostic=diagnostic,
                fell_back=True,
                fallback_reason=reason,
            )
        exact_value = self._exact_value_for(spec, group)
        return ApproximateValue(
            name=spec.output_name,
            estimate=exact_value,
            interval=ConfidenceInterval(
                estimate=exact_value,
                half_width=0.0,
                confidence=self.confidence,
                method="exact",
            ),
            method="exact",
            diagnostic=diagnostic,
            fell_back=True,
            fallback_reason=reason,
        )

    def _exact_value_for(self, spec, group: dict | None = None) -> float:
        if self._exact_result is None:
            base = self.engine.catalog.table(self.query.source_table)
            with trace_span("exact_execution", rows=base.num_rows):
                self._exact_result = self.engine._executor.execute(
                    self.query, base
                )
        result = self._exact_result
        if group:
            for key_name, key_value in group.items():
                result = result.filter(result.column(key_name) == key_value)
        if result.num_rows != 1:
            raise EstimationError(
                f"exact fallback expected one row for group {group!r}, got "
                f"{result.num_rows}"
            )
        return float(result.column(spec.output_name)[0])


def _rows_within_half_width(rows, bound: float) -> bool:
    """Whether every value's interval is at most ``bound`` wide."""
    for row in rows:
        for value in row.values.values():
            if value.interval is None or value.interval.half_width > bound:
                return False
    return True


def _achieved_bound(rows, kind: str, elapsed: float) -> Optional[float]:
    """The realized bound value of a finished bounded query.

    The worst (max) value across all groups/aggregates, matching the
    contract: *every* reported value satisfies the bound.
    """
    if kind == "time":
        return elapsed
    achieved: Optional[float] = None
    for row in rows:
        for value in row.values.values():
            if value.interval is None:
                continue
            realized = (
                value.relative_error
                if kind == "relative"
                else value.interval.half_width
            )
            if realized is None:
                continue
            if achieved is None or realized > achieved:
                achieved = float(realized)
    return achieved


def _auto_diagnostic_config(
    sample_rows: int, black_box: bool = False
) -> DiagnosticConfig | None:
    """A diagnostic configuration sized to the sample.

    The paper's p=100 needs ``100 × b_k ≤ |S|``; for small samples we
    shrink p, and below a floor we skip the diagnostic entirely (there
    is no room for honest subsamples).  Black-box targets get a smaller
    p because each ξ evaluation re-executes the full query.
    """
    p = 25 if black_box else 100
    while p >= 10:
        config = DiagnosticConfig(num_subsamples=p, num_sizes=3)
        try:
            config.resolve_sizes(sample_rows)
            return config
        except Exception:
            p //= 2
    return None
