"""Single-pass grouped-bootstrap kernels (§5.3.1 applied across groups).

A GROUP BY query is, statistically, one estimation problem per group
(§2.1): each group's point estimate and confidence interval are defined
exactly as for a single-aggregate query whose WHERE clause additionally
selects the group.  Executing it that way, however, costs O(n·G) — the
naive path re-scans the sample, regenerates Poisson weights, and re-runs
K replicate reductions once per group.

This module collapses that to one pass: a single Poissonized weight
matrix (chunked under the usual byte budget) is shared by *all* groups,
and segmented reductions over a factorised :class:`GroupIndex` produce
every group's point estimate, K replicate values, and closed-form
moments at once.  Per-group estimation semantics are unchanged — only
the schedule is.

Two kernel modes exist so the consolidation can be validated:

* ``segmented`` (default) — vectorised segmented reductions via
  :meth:`AggregateFunction.compute_grouped_resamples`.
* ``reference`` — a per-group masked loop over the *same* weight
  matrix.  Given identical inputs the two modes are bit-identical for
  selection-based aggregates and for sums of integer-representable
  data; the property tests in ``tests/test_grouped_kernel.py`` pin
  this down.

The pipeline-level switch ``REPRO_GROUPED_KERNEL=reference`` restores
the legacy one-estimation-per-group execution path end to end (per-group
RNG streams and all); it exists as the statistical oracle and as the
baseline for the ``grouped_bootstrap`` benchmarks.

This module must not import :mod:`repro.parallel.ops` (which imports it
for the chunked worker kernels).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Optional

import numpy as np

from repro.core.ci import symmetric_half_width
from repro.core.closed_form import normal_quantile
from repro.engine.aggregates import AggregateFunction, GroupIndex
from repro.errors import EstimationError

GROUPED_KERNEL_ENV = "REPRO_GROUPED_KERNEL"

_KERNEL_MODES = ("segmented", "reference")


def resolve_grouped_kernel_mode(mode: Optional[str] = None) -> str:
    """The active grouped-kernel mode (explicit > env > segmented)."""
    if mode is None:
        mode = os.environ.get(GROUPED_KERNEL_ENV, "").strip() or "segmented"
    if mode not in _KERNEL_MODES:
        raise EstimationError(
            f"unknown grouped kernel mode {mode!r}; expected one of "
            f"{_KERNEL_MODES} (set via {GROUPED_KERNEL_ENV})"
        )
    return mode


@dataclass(frozen=True)
class GroupedTarget:
    """Every aggregate-per-group of one GROUP BY query, as one target.

    The geometry mirrors :class:`~repro.core.estimators.EstimationTarget`
    with one addition: each of the ``n`` sample rows carries a group id.
    Group ``g``'s matched rows are those with ``mask`` set *and*
    ``group_ids == g`` — i.e. group membership acts as an extra filter
    conjunct, which is exactly how the legacy per-group path modelled it
    (``total_sample_rows`` and the extensive ``|D| / n`` scale factor are
    whole-sample quantities, identical for every group).

    Attributes:
        values: aggregate argument on every sample row (pre-filter).
        group_ids: ``(n,)`` integer group ids in ``[0, num_groups)``.
        num_groups: number of groups ``G``.
        aggregate: the weighted aggregate function.
        mask: boolean WHERE mask, or ``None`` for no filter.
        dataset_rows: ``|D|`` for extensive scaling; ``None`` if unknown.
        extensive: whether the statistic needs the ``|D| / n`` factor.
    """

    values: np.ndarray
    group_ids: np.ndarray
    num_groups: int
    aggregate: AggregateFunction
    mask: Optional[np.ndarray] = None
    dataset_rows: Optional[int] = None
    extensive: bool = False

    def __post_init__(self):
        values = np.asarray(self.values)
        group_ids = np.asarray(self.group_ids)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "group_ids", group_ids)
        if group_ids.shape != values.shape:
            raise EstimationError(
                f"group_ids shape {group_ids.shape} does not match values "
                f"shape {values.shape}"
            )
        if self.mask is not None:
            mask = np.asarray(self.mask)
            if mask.shape != values.shape:
                raise EstimationError(
                    f"mask shape {mask.shape} does not match values shape "
                    f"{values.shape}"
                )
            if mask.dtype != np.bool_:
                raise EstimationError("mask must be boolean")
            object.__setattr__(self, "mask", mask)

    # -- basic geometry ------------------------------------------------------
    @property
    def total_sample_rows(self) -> int:
        """Sample size before filtering (the n of the theory)."""
        return len(self.values)

    @cached_property
    def matched_values(self) -> np.ndarray:
        """Argument values of the rows that passed the WHERE filter."""
        if self.mask is None:
            return self.values
        return self.values[self.mask]

    @cached_property
    def matched_group_ids(self) -> np.ndarray:
        """Group ids of the rows that passed the WHERE filter."""
        if self.mask is None:
            return self.group_ids
        return self.group_ids[self.mask]

    @cached_property
    def group_index(self) -> GroupIndex:
        """Factorised index over the *matched* rows (built once)."""
        return GroupIndex.from_ids(self.matched_group_ids, self.num_groups)

    @property
    def scale_factor(self) -> float:
        """Factor applied to sample statistics to estimate θ(D)."""
        if not self.extensive or self.dataset_rows is None:
            return 1.0
        if self.total_sample_rows == 0:
            raise EstimationError("cannot scale a zero-row sample")
        return self.dataset_rows / self.total_sample_rows

    # -- evaluation ----------------------------------------------------------
    def point_estimates(self) -> np.ndarray:
        """Per-group plug-in estimates θ_g(S), scaled to full-data units."""
        return self.scale_factor * self.aggregate.compute_grouped(
            self.matched_values, self.group_index
        )

    def subset(self, indices: np.ndarray) -> "GroupedTarget":
        """The target restricted to a row subset of the sample.

        Used by the diagnostic: subsamples slice the *sample*, and the
        group structure (with the full group count) rides along so every
        group's statistic is re-evaluated on the subsample.
        """
        return replace(
            self,
            values=self.values[indices],
            group_ids=self.group_ids[indices],
            mask=None if self.mask is None else self.mask[indices],
        )


def grouped_resample_estimates_kernel(
    matched_values: np.ndarray,
    index: GroupIndex,
    aggregate: AggregateFunction,
    weight_matrix: np.ndarray,
    rng: np.random.Generator | None,
    *,
    extensive: bool,
    dataset_rows: Optional[int],
    total_sample_rows: int,
    mode: str = "segmented",
) -> np.ndarray:
    """θ_g over K resamples for every group, from one weight matrix.

    The grouped analogue of
    :func:`repro.core.estimators.resample_estimates_kernel` and, like
    it, the single source of truth shared by the inline path and the
    chunked parallel workers — which is what keeps fan-out over
    replicate chunks bit-identical to serial execution at any worker
    count.

    Args:
        matched_values: ``(m,)`` argument values of matched rows.
        index: group index over those ``m`` rows.
        aggregate: the weighted aggregate.
        weight_matrix: ``(m, K)`` Poisson weights shared by all groups.
        rng: stream used *after* the weight matrix for the
            unmatched-weight-total draws of extensive aggregates.
        extensive: whether to apply realised-size normalisation.
        dataset_rows: ``|D|`` (or ``None`` to stay in sample units).
        total_sample_rows: pre-filter sample size ``n``.
        mode: ``"segmented"`` (vectorised) or ``"reference"``
            (per-group masked loop over the same matrix).

    Returns:
        Array of shape ``(G, K)``.

    Extensive aggregates are normalised by the *whole-sample* realised
    resample size — the matched weight total of all groups plus one
    Poisson draw for the ``n − m`` unmatched rows — mirroring the
    ungrouped kernel.  (The legacy per-group path drew a separate
    unmatched total per group; the two denominators are identically
    distributed, so per-group estimates are statistically equivalent,
    and sharing one denominator is what lets a single matrix serve all
    groups.)
    """
    mode = resolve_grouped_kernel_mode(mode)
    if mode == "segmented":
        raw = aggregate.compute_grouped_resamples(
            matched_values, index, weight_matrix
        )
    else:
        matched_values = np.asarray(matched_values)
        raw = np.empty(
            (index.num_groups, weight_matrix.shape[1]), dtype=np.float64
        )
        for g in range(index.num_groups):
            rows = index.group_ids == g
            if not rows.any():
                raw[g] = aggregate.compute(matched_values[:0])
                continue
            raw[g] = aggregate.compute_resamples(
                matched_values[rows], weight_matrix[rows]
            )
    if not extensive or dataset_rows is None:
        return raw
    if total_sample_rows == 0:
        raise EstimationError("cannot scale a zero-row sample")
    matched_weight_totals = weight_matrix.sum(axis=0, dtype=np.float64)
    unmatched_rows = total_sample_rows - index.num_rows
    if unmatched_rows > 0:
        rng = rng or np.random.default_rng()
        unmatched_totals = rng.poisson(
            unmatched_rows, size=weight_matrix.shape[1]
        ).astype(np.float64)
    else:
        unmatched_totals = 0.0
    realized_sizes = matched_weight_totals + unmatched_totals
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            realized_sizes > 0,
            dataset_rows * raw / realized_sizes,
            np.nan,
        )


def _grouped_central_moments(
    values: np.ndarray, index: GroupIndex
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group (mean, m2, m4): mean and 2nd/4th central moments."""
    counts = index.counts.astype(np.float64)
    sums = index.segment_sum(values)
    with np.errstate(divide="ignore", invalid="ignore"):
        means = np.where(counts > 0, sums / counts, np.nan)
        values_sorted = values[index.order]
        deviations = values_sorted - means[index.group_ids[index.order]]
        squared = deviations * deviations
        m2 = np.where(
            counts > 0, index.segment_sum_sorted(squared) / counts, np.nan
        )
        m4 = np.where(
            counts > 0,
            index.segment_sum_sorted(squared * squared) / counts,
            np.nan,
        )
    return means, m2, m4


def grouped_closed_form_std_errors(target: GroupedTarget) -> np.ndarray:
    """Per-group CLT standard errors, computed segment-wise.

    The grouped analogue of
    :meth:`AggregateFunction.closed_form_std_error` with the same
    formulas per group; where the scalar method would raise for a group
    (too few rows, degenerate data), that group's entry is NaN and the
    caller routes it to the per-group fallback chain.

    Raises:
        EstimationError: when the aggregate has no closed form at all,
            or the sample is empty (whole-query conditions, identical
            for every group).
    """
    aggregate = target.aggregate
    if not aggregate.closed_form_capable:
        raise EstimationError(
            f"no closed-form standard error is known for {aggregate.name}"
        )
    index = target.group_index
    values = np.asarray(target.matched_values, dtype=np.float64)
    counts = index.counts.astype(np.float64)
    n = int(target.total_sample_rows)
    name = aggregate.name
    if name in ("COUNT", "SUM") and n <= 0:
        raise EstimationError("sample must be non-empty")
    with np.errstate(divide="ignore", invalid="ignore"):
        if name == "COUNT":
            matched_fraction = counts / n
            return np.sqrt(n * matched_fraction * (1.0 - matched_fraction))
        if name == "SUM":
            # Rows outside the group (or failing the filter) contribute
            # zero to y; Var(sum) = n · Var(y).
            mean_y = index.segment_sum(values) / n
            mean_y2 = index.segment_sum(values * values) / n
            variance_y = np.maximum(mean_y2 - mean_y * mean_y, 0.0)
            return np.sqrt(n * variance_y)
        if name == "AVG":
            __, m2, __ = _grouped_central_moments(values, index)
            # Unbiased variance = m2 · m / (m − 1); se = sqrt(var / m).
            variance = np.where(
                counts > 1, m2 * counts / (counts - 1.0), np.nan
            )
            return np.where(counts > 1, np.sqrt(variance / counts), np.nan)
        if name == "VARIANCE":
            __, m2, m4 = _grouped_central_moments(values, index)
            core = np.maximum(m4 - m2 * m2, 0.0) / counts
            return np.where(counts > 1, np.sqrt(core), np.nan)
        if name == "STDEV":
            __, m2, m4 = _grouped_central_moments(values, index)
            core = np.maximum(m4 - m2 * m2, 0.0) / counts
            return np.where(
                (counts > 1) & (m2 > 0),
                np.sqrt(core / (4.0 * m2)),
                np.nan,
            )
    raise EstimationError(
        f"no closed-form standard error is known for {name}"
    )


def grouped_closed_form_intervals(
    target: GroupedTarget, confidence: float = 0.95
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group (point estimate, closed-form half-width) arrays.

    NaN half-widths mark groups where the scalar closed form would have
    raised; the pipeline re-routes those groups individually.
    """
    std_errors = grouped_closed_form_std_errors(target)
    estimates = target.point_estimates()
    half_widths = (
        normal_quantile(confidence) * std_errors * target.scale_factor
    )
    return estimates, half_widths


def grouped_half_widths(
    replicates: np.ndarray,
    centers: np.ndarray,
    confidence: float,
) -> tuple[np.ndarray, list[Optional[str]]]:
    """Per-group symmetric half-widths from a ``(G, K)`` replicate matrix.

    Vectorised over the common case (every replicate finite); groups
    with NaN replicates fall back to the scalar
    :func:`~repro.core.ci.symmetric_half_width`, and groups where that
    raises (all replicates NaN) get a NaN half-width plus the error
    message, so the caller can apply the same fallback policy the
    per-group path would.

    Returns:
        ``(half_widths, failure_reasons)`` — shape ``(G,)`` and a
        length-G list of ``None`` or the scalar error message.
    """
    replicates = np.asarray(replicates, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    num_groups = replicates.shape[0]
    half_widths = np.full(num_groups, np.nan)
    reasons: list[Optional[str]] = [None] * num_groups
    vectorisable = np.isfinite(replicates).all(axis=1) & np.isfinite(centers)
    if vectorisable.any():
        deviations = np.abs(
            replicates[vectorisable] - centers[vectorisable, None]
        )
        half_widths[vectorisable] = np.quantile(
            deviations, confidence, axis=1, method="inverted_cdf"
        )
    for g in np.flatnonzero(~vectorisable):
        try:
            half_widths[g] = symmetric_half_width(
                replicates[g], centers[g], confidence
            )
        except EstimationError as error:
            reasons[g] = str(error)
    return half_widths, reasons
