"""Closed-form (CLT) error estimation (§2.3.2).

Approximates the sampling distribution of θ(S) by ``Normal(θ(S), σ²)``
with σ² estimated by an aggregate-specific formula derived by "careful
manual study of θ".  The formulas live with the aggregates themselves
(:meth:`~repro.engine.aggregates.AggregateFunction.closed_form_std_error`);
this module turns a standard error into a symmetric centered interval
and enforces applicability — only COUNT, SUM, AVG, VARIANCE, and STDEV
have known closed forms, which is why only 37.21 % of the paper's
Facebook queries can use this estimator at all.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.ci import ConfidenceInterval
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.errors import EstimationError


def normal_quantile(confidence: float) -> float:
    """The two-sided normal critical value z such that P(|Z| ≤ z) = α."""
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


class ClosedFormEstimator(ErrorEstimator):
    """CLT-based closed-form confidence intervals.

    Deterministic and far cheaper than the bootstrap (no resampling),
    but restricted to aggregates with a known variance formula and
    subject to the same small-``n`` / outlier failure modes.
    """

    name = "closed_form"

    def applicable(self, target: EstimationTarget) -> bool:
        return target.aggregate.closed_form_capable

    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        if not self.applicable(target):
            raise EstimationError(
                f"closed-form error estimation does not apply to "
                f"{target.aggregate.name}"
            )
        std_error = target.aggregate.closed_form_std_error(
            target.matched_values, total_sample_rows=target.total_sample_rows
        )
        half_width = normal_quantile(confidence) * std_error * target.scale_factor
        return ConfidenceInterval(
            estimate=target.point_estimate(),
            half_width=half_width,
            confidence=confidence,
            method=self.name,
        )
