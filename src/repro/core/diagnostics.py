"""The error-estimation diagnostic of Kleiner et al. (§4, Algorithm 1).

Given a sample S, a query θ, and an error-estimation procedure ξ, the
diagnostic asks: *will ξ's error bars be reliable for this query on this
sample?* — without touching the full dataset.  It exploits the fact that
disjoint partitions of a simple random sample are themselves independent
samples of D:

1. For each of k increasing subsample sizes ``b_1 < ... < b_k``, cut p
   disjoint subsamples out of S.
2. Compute θ on each subsample; the spread of those p values around
   θ(S) yields the *true* interval half-width ``x_i`` at size ``b_i``.
3. Run ξ on each subsample to get p estimated half-widths ``x̂_ij``.
4. Summarise agreement per size — relative deviation ``Δ_i``, relative
   spread ``σ_i``, and the proportion ``π_i`` of estimates within ``c_3``
   of the truth — and accept if deviations and spreads shrink (or are
   small) as ``b_i`` grows and ``π_k ≥ ρ`` at the largest size.

Kleiner et al. designed and evaluated this for the bootstrap; the paper
generalises it to *any* ξ — closed forms included — by plugging the
procedure into step 3, which is exactly what this implementation does
(any :class:`~repro.core.estimators.ErrorEstimator` works).

The paper's parameter settings (Appendix A): ``p = 100``, ``k = 3``,
``c_1 = c_2 = 0.2``, ``c_3 = 0.5``, ``ρ = 0.95``, with subsample sizes
doubling (50 MB / 100 MB / 200 MB of rows in their deployment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ci import symmetric_half_width
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.core.grouped import GroupedTarget
from repro.errors import DiagnosticError, EstimationError
from repro.obs.metrics import METRICS
from repro.obs.trace import trace_span
from repro.parallel.ops import (
    DEFAULT_REPLICATE_CHUNK,
    diagnostic_evaluations,
    grouped_diagnostic_evaluations,
)
from repro.parallel.pool import WorkerPool, pool_scope
from repro.parallel.rng import seed_from_rng
from repro.parallel.supervise import Supervision
from repro.sampling.subsample import subsample_index_blocks

#: Paper defaults (Appendix A).
DEFAULT_NUM_SUBSAMPLES = 100
DEFAULT_NUM_SIZES = 3


@dataclass(frozen=True)
class DiagnosticConfig:
    """Parameters of Algorithm 1.

    Attributes:
        subsample_sizes: the increasing row counts ``b_1 < ... < b_k``.
            Leave empty to derive a doubling ladder from the sample size
            (largest size = ``num_rows // num_subsamples``, halved k−1
            times), mirroring the paper's 50/100/200 MB ladder.
        num_subsamples: p, disjoint subsamples per size.
        num_sizes: k, used only when ``subsample_sizes`` is empty.
        deviation_threshold: c₁ — acceptable relative deviation Δᵢ.
        spread_threshold: c₂ — acceptable relative spread σᵢ.
        closeness_threshold: c₃ — per-estimate relative deviation counted
            as "acceptably close" for πᵢ.
        min_final_proportion: ρ — required πₖ at the largest size.
    """

    subsample_sizes: tuple[int, ...] = ()
    num_subsamples: int = DEFAULT_NUM_SUBSAMPLES
    num_sizes: int = DEFAULT_NUM_SIZES
    deviation_threshold: float = 0.2
    spread_threshold: float = 0.2
    closeness_threshold: float = 0.5
    min_final_proportion: float = 0.95

    def resolve_sizes(self, sample_rows: int) -> tuple[int, ...]:
        """The subsample-size ladder for a sample of ``sample_rows`` rows."""
        if self.subsample_sizes:
            sizes = tuple(sorted(self.subsample_sizes))
            if len(set(sizes)) != len(sizes):
                raise DiagnosticError("subsample sizes must be distinct")
            if sizes[0] < 2:
                raise DiagnosticError(
                    f"smallest subsample size {sizes[0]} is too small"
                )
            if sizes[-1] * self.num_subsamples > sample_rows:
                raise DiagnosticError(
                    f"largest subsample size {sizes[-1]} × p="
                    f"{self.num_subsamples} exceeds the sample "
                    f"({sample_rows} rows)"
                )
            return sizes
        largest = sample_rows // self.num_subsamples
        if largest < 2 ** (self.num_sizes - 1) * 2:
            raise DiagnosticError(
                f"sample of {sample_rows} rows is too small for "
                f"p={self.num_subsamples} subsamples at {self.num_sizes} "
                "doubling sizes"
            )
        return tuple(
            largest // (2 ** (self.num_sizes - 1 - i))
            for i in range(self.num_sizes)
        )


@dataclass(frozen=True)
class SubsampleSizeReport:
    """Diagnostic statistics for one subsample size ``b_i``.

    Attributes:
        size: ``b_i`` in rows.
        true_half_width: ``x_i`` — the empirical α-interval half-width of
            θ over the p subsamples, centered on θ(S).
        mean_estimated_half_width: ``mean(x̂_i·)``.
        deviation: ``Δ_i = |mean(x̂_i·) − x_i| / x_i``.
        spread: ``σ_i = stddev(x̂_i·) / x_i``.
        proportion_close: ``π_i``, fraction of x̂ within c₃ of x_i.
        deviation_acceptable / spread_acceptable: acceptance-criterion
            outcomes (``None`` for the first size, which has no
            predecessor to compare against).
    """

    size: int
    true_half_width: float
    mean_estimated_half_width: float
    deviation: float
    spread: float
    proportion_close: float
    deviation_acceptable: Optional[bool] = None
    spread_acceptable: Optional[bool] = None


@dataclass(frozen=True)
class DiagnosticResult:
    """Outcome of running the diagnostic for one (query, sample, ξ)."""

    passed: bool
    reports: tuple[SubsampleSizeReport, ...]
    estimator_name: str
    reason: str = ""
    #: Total θ evaluations performed (subsample point estimates); the
    #: estimator's own resampling work is additional (K per subsample for
    #: the bootstrap) — the paper's "tens of thousands of subqueries".
    num_subqueries: int = 0

    def __bool__(self) -> bool:
        return self.passed


def diagnose(
    target: EstimationTarget,
    estimator: ErrorEstimator,
    confidence: float = 0.95,
    config: DiagnosticConfig | None = None,
    rng: np.random.Generator | None = None,
    pool: WorkerPool | int | None = None,
    supervision: Supervision | None = None,
) -> DiagnosticResult:
    """Run Algorithm 1 for ``estimator`` on ``target``.

    Each of the p×k (subsample, ξ) evaluations is independent, so they
    fan out across ``pool`` when one is given; every subsample ``j`` of
    a size is bound to child RNG stream ``j`` of a seed drawn once from
    ``rng``, making the verdict bit-identical at any worker count.

    Args:
        target: the query bound to its sample (any object providing
            ``total_sample_rows``, ``point_estimate`` and ``subset`` —
            table-level targets from the pipeline work too).
        estimator: the ξ to validate.
        confidence: α, the coverage level of the intervals under test.
        config: algorithm parameters; paper defaults when omitted.
        rng: randomness for subsample cutting and resampling.
        pool: a :class:`~repro.parallel.pool.WorkerPool`, a worker
            count, or ``None`` for inline execution.
        supervision: optional fault-tolerance context; with partial
            results allowed, the verdict is computed over whichever
            subsample evaluations completed (the reduced p is reflected
            in ``num_subqueries`` and in the supervision report).

    Returns:
        A :class:`DiagnosticResult`; truthy iff error estimation is
        predicted to be reliable.

    Raises:
        DiagnosticError: when the sample cannot support the requested
            subsample ladder.
    """
    config = config or DiagnosticConfig()
    rng = rng or np.random.default_rng()
    with trace_span("diagnostic", estimator=estimator.name) as span:
        with pool_scope(pool) as scoped:
            result = _diagnose(
                target, estimator, confidence, config, rng, scoped, supervision
            )
    if span is not None:
        span.tags["verdict"] = "passed" if result.passed else "failed"
        if result.reason:
            span.tags["reason"] = result.reason
        span.add_counter("subqueries", result.num_subqueries)
    METRICS.counter(
        "diagnostic.verdicts."
        + ("passed" if result.passed else "failed")
    ).inc()
    return result


def _diagnose(
    target: EstimationTarget,
    estimator: ErrorEstimator,
    confidence: float,
    config: DiagnosticConfig,
    rng: np.random.Generator,
    pool: WorkerPool | None,
    supervision: Supervision | None = None,
) -> DiagnosticResult:
    if not estimator.applicable(target):
        return DiagnosticResult(
            passed=False,
            reports=(),
            estimator_name=estimator.name,
            reason=f"{estimator.name} is not applicable to this query",
        )

    num_rows = target.total_sample_rows
    sizes = config.resolve_sizes(num_rows)
    p = config.num_subsamples
    full_estimate = target.point_estimate()

    reports: list[SubsampleSizeReport] = []
    num_subqueries = 0
    for size in sizes:
        with trace_span("diagnostic.size", size=size, subsamples=p):
            blocks = subsample_index_blocks(num_rows, size, p, rng)
            point_estimates, estimated_half_widths = diagnostic_evaluations(
                target,
                estimator,
                confidence,
                blocks,
                seed_from_rng(rng),
                pool=pool,
                supervision=supervision,
            )
        if len(point_estimates) == 0:
            return DiagnosticResult(
                passed=False,
                reports=tuple(reports),
                estimator_name=estimator.name,
                reason=(
                    f"no subsample evaluations completed at size {size}"
                ),
                num_subqueries=num_subqueries,
            )
        # Under degraded execution some of the p evaluations may have
        # been dropped; account for the work actually done.
        num_subqueries += len(point_estimates)

        true_half_width = symmetric_half_width(
            point_estimates, full_estimate, confidence
        )
        if true_half_width <= 0 or not np.isfinite(true_half_width):
            return DiagnosticResult(
                passed=False,
                reports=tuple(reports),
                estimator_name=estimator.name,
                reason=(
                    f"degenerate true interval at subsample size {size}; "
                    "θ does not vary across subsamples"
                ),
                num_subqueries=num_subqueries,
            )
        finite = estimated_half_widths[np.isfinite(estimated_half_widths)]
        if len(finite) == 0:
            return DiagnosticResult(
                passed=False,
                reports=tuple(reports),
                estimator_name=estimator.name,
                reason=f"ξ produced no finite estimates at size {size}",
                num_subqueries=num_subqueries,
            )
        deviation = abs(float(finite.mean()) - true_half_width) / true_half_width
        spread = float(finite.std(ddof=0)) / true_half_width
        proportion_close = float(
            np.mean(
                np.abs(estimated_half_widths - true_half_width)
                / true_half_width
                <= config.closeness_threshold
            )
        )
        reports.append(
            SubsampleSizeReport(
                size=size,
                true_half_width=true_half_width,
                mean_estimated_half_width=float(finite.mean()),
                deviation=deviation,
                spread=spread,
                proportion_close=proportion_close,
            )
        )

    return _apply_acceptance_criteria(
        reports, config, estimator.name, num_subqueries
    )


def grouped_diagnose(
    target: GroupedTarget,
    full_estimates: np.ndarray,
    estimator_kind: str,
    estimator_name: str,
    num_resamples: int,
    confidence: float = 0.95,
    config: DiagnosticConfig | None = None,
    rng: np.random.Generator | None = None,
    pool: WorkerPool | int | None = None,
    supervision: Supervision | None = None,
    mode: str = "segmented",
    chunk_size: int = DEFAULT_REPLICATE_CHUNK,
) -> tuple[list[DiagnosticResult], int]:
    """Run Algorithm 1 for every group of a GROUP BY query in one pass.

    The verdict semantics are per group and identical to
    :func:`diagnose` — each group gets its own Δ/σ/π ladder, failure
    reasons, and :class:`DiagnosticResult` — but the *work* is
    consolidated per §5.3.1: each (size, subsample) cell is cut once
    and evaluated for all groups from shared weight matrices via
    :func:`~repro.parallel.ops.grouped_diagnostic_evaluations`.
    (The legacy per-group path cut an independent set of subsamples per
    group; sharing one set is statistically equivalent and is what
    makes the cost independent of G.)

    Args:
        target: the grouped query bound to its sample.
        full_estimates: ``(G,)`` per-group whole-sample point estimates
            (the centers the true interval widths are measured around).
        estimator_kind: ``"bootstrap"`` or ``"closed_form"`` — the ξ
            under diagnosis.
        estimator_name: the ξ's reported name (as on its intervals).
        num_resamples: inner bootstrap K (ignored for closed form).
        confidence / config / rng / pool / supervision: as
            :func:`diagnose`.
        mode: grouped kernel mode for the inner replicates.
        chunk_size: replicate chunk width of the inner bootstrap.

    Returns:
        ``(results, shared_evaluations)`` — one
        :class:`DiagnosticResult` per group, plus the number of
        subsample evaluations actually performed (shared across groups;
        each group's ``num_subqueries`` still reports its own ladder
        for parity with the per-group path).
    """
    config = config or DiagnosticConfig()
    rng = rng or np.random.default_rng()
    with trace_span(
        "diagnostic.grouped",
        estimator=estimator_name,
        groups=target.num_groups,
    ) as span:
        with pool_scope(pool) as scoped:
            results, shared_evaluations = _grouped_diagnose(
                target,
                full_estimates,
                estimator_kind,
                estimator_name,
                num_resamples,
                confidence,
                config,
                rng,
                scoped,
                supervision,
                mode,
                chunk_size,
            )
    num_passed = sum(1 for result in results if result.passed)
    if span is not None:
        span.tags["passed"] = num_passed
        span.tags["failed"] = len(results) - num_passed
        span.add_counter("subqueries", shared_evaluations)
    if num_passed:
        METRICS.counter("diagnostic.verdicts.passed").inc(num_passed)
    if len(results) - num_passed:
        METRICS.counter("diagnostic.verdicts.failed").inc(
            len(results) - num_passed
        )
    return results, shared_evaluations


def _grouped_diagnose(
    target: GroupedTarget,
    full_estimates: np.ndarray,
    estimator_kind: str,
    estimator_name: str,
    num_resamples: int,
    confidence: float,
    config: DiagnosticConfig,
    rng: np.random.Generator,
    pool: WorkerPool | None,
    supervision: Supervision | None,
    mode: str,
    chunk_size: int,
) -> tuple[list[DiagnosticResult], int]:
    num_groups = target.num_groups
    if (
        estimator_kind == "closed_form"
        and not target.aggregate.closed_form_capable
    ):
        not_applicable = DiagnosticResult(
            passed=False,
            reports=(),
            estimator_name=estimator_name,
            reason=f"{estimator_name} is not applicable to this query",
        )
        return [not_applicable] * num_groups, 0

    num_rows = target.total_sample_rows
    sizes = config.resolve_sizes(num_rows)
    p = config.num_subsamples

    results: list[Optional[DiagnosticResult]] = [None] * num_groups
    reports: list[list[SubsampleSizeReport]] = [[] for _ in range(num_groups)]
    group_subqueries = np.zeros(num_groups, dtype=np.int64)
    shared_evaluations = 0

    def fail(group: int, reason: str) -> None:
        results[group] = DiagnosticResult(
            passed=False,
            reports=tuple(reports[group]),
            estimator_name=estimator_name,
            reason=reason,
            num_subqueries=int(group_subqueries[group]),
        )

    for size in sizes:
        active = [g for g in range(num_groups) if results[g] is None]
        if not active:
            break
        with trace_span("diagnostic.size", size=size, subsamples=p):
            blocks = subsample_index_blocks(num_rows, size, p, rng)
            points, estimated_half_widths = grouped_diagnostic_evaluations(
                target,
                estimator_kind,
                num_resamples,
                confidence,
                blocks,
                seed_from_rng(rng),
                chunk_size=chunk_size,
                pool=pool,
                supervision=supervision,
                mode=mode,
            )
        completed = points.shape[0]
        if completed == 0:
            for g in active:
                fail(g, f"no subsample evaluations completed at size {size}")
            break
        shared_evaluations += completed
        for g in active:
            # Under degraded execution some of the p evaluations may
            # have been dropped; account for the work actually done.
            group_subqueries[g] += completed
            try:
                true_half_width = symmetric_half_width(
                    points[:, g], float(full_estimates[g]), confidence
                )
            except EstimationError as error:
                fail(g, str(error))
                continue
            if true_half_width <= 0 or not np.isfinite(true_half_width):
                fail(
                    g,
                    f"degenerate true interval at subsample size {size}; "
                    "θ does not vary across subsamples",
                )
                continue
            estimated = estimated_half_widths[:, g]
            finite = estimated[np.isfinite(estimated)]
            if len(finite) == 0:
                fail(g, f"ξ produced no finite estimates at size {size}")
                continue
            deviation = (
                abs(float(finite.mean()) - true_half_width) / true_half_width
            )
            spread = float(finite.std(ddof=0)) / true_half_width
            proportion_close = float(
                np.mean(
                    np.abs(estimated - true_half_width) / true_half_width
                    <= config.closeness_threshold
                )
            )
            reports[g].append(
                SubsampleSizeReport(
                    size=size,
                    true_half_width=true_half_width,
                    mean_estimated_half_width=float(finite.mean()),
                    deviation=deviation,
                    spread=spread,
                    proportion_close=proportion_close,
                )
            )

    final: list[DiagnosticResult] = []
    for g in range(num_groups):
        if results[g] is None:
            results[g] = _apply_acceptance_criteria(
                reports[g], config, estimator_name, int(group_subqueries[g])
            )
        final.append(results[g])
    return final, shared_evaluations


def _apply_acceptance_criteria(
    reports: list[SubsampleSizeReport],
    config: DiagnosticConfig,
    estimator_name: str,
    num_subqueries: int,
) -> DiagnosticResult:
    """Algorithm 1's final acceptance checks over the per-size reports."""
    finalized: list[SubsampleSizeReport] = [reports[0]]
    failures: list[str] = []
    for i in range(1, len(reports)):
        current, previous = reports[i], reports[i - 1]
        deviation_ok = (
            current.deviation < previous.deviation
            or current.deviation < config.deviation_threshold
        )
        spread_ok = (
            current.spread < previous.spread
            or current.spread < config.spread_threshold
        )
        finalized.append(
            SubsampleSizeReport(
                size=current.size,
                true_half_width=current.true_half_width,
                mean_estimated_half_width=current.mean_estimated_half_width,
                deviation=current.deviation,
                spread=current.spread,
                proportion_close=current.proportion_close,
                deviation_acceptable=deviation_ok,
                spread_acceptable=spread_ok,
            )
        )
        if not deviation_ok:
            failures.append(
                f"deviation Δ not decreasing/small at size {current.size} "
                f"({current.deviation:.3f} after {previous.deviation:.3f})"
            )
        if not spread_ok:
            failures.append(
                f"spread σ not decreasing/small at size {current.size} "
                f"({current.spread:.3f} after {previous.spread:.3f})"
            )
    final_proportion = finalized[-1].proportion_close
    if final_proportion < config.min_final_proportion:
        failures.append(
            f"final proportion π={final_proportion:.2f} below "
            f"ρ={config.min_final_proportion}"
        )
    return DiagnosticResult(
        passed=not failures,
        reports=tuple(finalized),
        estimator_name=estimator_name,
        reason="; ".join(failures),
        num_subqueries=num_subqueries,
    )
