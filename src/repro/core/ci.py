"""Symmetric centered confidence intervals (§2.2).

The paper evaluates error estimation through *symmetric centered*
confidence intervals: an interval ``[estimate - a, estimate + a]`` whose
half-width ``a`` is chosen so that the (estimated or true) sampling
distribution places mass ``α`` inside it.  Unlike raw coverage, the width
of such an interval is directly comparable to a ground-truth width, which
is what makes the paper's failure metric ``δ`` well defined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric centered confidence interval.

    Attributes:
        estimate: the point estimate at the interval's center.
        half_width: distance from the center to either endpoint.
        confidence: target coverage level α in (0, 1).
        method: name of the procedure that produced the interval
            (``"bootstrap"``, ``"closed_form"``, ``"hoeffding"``, ...).
    """

    estimate: float
    half_width: float
    confidence: float
    method: str

    def __post_init__(self):
        if not 0.0 < self.confidence < 1.0:
            raise EstimationError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.half_width < 0:
            raise EstimationError(
                f"half_width must be non-negative, got {self.half_width}"
            )

    @property
    def lower(self) -> float:
        return self.estimate - self.half_width

    @property
    def upper(self) -> float:
        return self.estimate + self.half_width

    @property
    def width(self) -> float:
        return 2.0 * self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width relative to the magnitude of the estimate."""
        if self.estimate == 0:
            return float("inf") if self.half_width > 0 else 0.0
        return self.half_width / abs(self.estimate)

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.estimate:.6g} ± {self.half_width:.6g} "
            f"({self.confidence:.0%} {self.method})"
        )


def symmetric_half_width(
    distribution: np.ndarray, center: float, confidence: float
) -> float:
    """Half-width of the smallest symmetric interval around ``center``
    covering proportion ``confidence`` of ``distribution``.

    This is the interval construction the paper uses both for estimated
    intervals (distribution = bootstrap resample estimates) and for the
    ground-truth interval (distribution = true sampling distribution).
    NaN entries (degenerate resamples) are ignored.
    """
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    distribution = np.asarray(distribution, dtype=np.float64)
    finite = distribution[np.isfinite(distribution)]
    if len(finite) == 0:
        raise EstimationError(
            "cannot build a confidence interval from an empty or all-NaN "
            "distribution"
        )
    deviations = np.abs(finite - center)
    return float(np.quantile(deviations, confidence, method="inverted_cdf"))


def interval_from_distribution(
    distribution: np.ndarray,
    center: float,
    confidence: float,
    method: str,
) -> ConfidenceInterval:
    """Build a symmetric centered interval from a sampling distribution."""
    half = symmetric_half_width(distribution, center, confidence)
    return ConfidenceInterval(
        estimate=center, half_width=half, confidence=confidence, method=method
    )


def relative_width_deviation(
    true_half_width: float, estimated_half_width: float
) -> float:
    """The paper's failure metric δ for one estimated interval.

    Defined so that δ > 0 means the estimate is too *wide* (pessimistic)
    and δ < 0 means too *narrow* (optimistic), matching the paper's §3
    prose ("if [δ] is often positive and large ... the procedure is
    pessimistic").  (The formula as typeset in §2.2 has the numerator
    order flipped, which contradicts that prose; we follow the prose.)

    Raises:
        EstimationError: when the true width is zero, making relative
            deviation undefined.
    """
    if true_half_width <= 0:
        raise EstimationError(
            "true confidence interval width must be positive to compute δ"
        )
    return (estimated_half_width - true_half_width) / true_half_width
