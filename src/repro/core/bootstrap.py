"""Nonparametric bootstrap error estimation (§2.3.1).

Efron's bootstrap substitutes the sample ``S`` for the dataset ``D``:
draw *K* resamples of ``S`` with replacement, compute the query on each,
and treat the spread of those K estimates as the sampling distribution
of θ(S).  It applies to arbitrarily complex queries (UDFs, nested
aggregation) but costs K query replications and fails when the statistic
is sensitive to rare extreme values or the sample is too small.

Two implementations are provided:

* :class:`BootstrapEstimator` — the fast path used by the optimised
  pipeline: Poissonized weight matrices over the filtered argument values
  (one consolidated scan, §5.3).
* :func:`bootstrap_table_statistic` — the generic path for black-box
  per-table statistics (e.g. nested aggregation queries), which
  materialises resample tables; this mirrors the §5.2 baseline and the
  EARL-style execution model.

Both paths execute through :mod:`repro.parallel.ops`: replicates are
cut into fixed-size chunks, chunk *i* always consumes child RNG stream
*i* of a single root seed, and chunks either run inline (serial) or fan
out across a :class:`~repro.parallel.pool.WorkerPool` — with bit-
identical results either way.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.ci import ConfidenceInterval, interval_from_distribution
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.engine.table import Table
from repro.errors import EstimationError
from repro.obs.trace import trace_counter, trace_span
from repro.parallel.ops import (
    DEFAULT_REPLICATE_CHUNK,
    bootstrap_replicates,
    table_statistic_replicates,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.rng import seed_from_rng
from repro.parallel.supervise import Supervision

#: The paper's default number of bootstrap resamples.
DEFAULT_NUM_RESAMPLES = 100


class BootstrapEstimator(ErrorEstimator):
    """Poissonized bootstrap over an estimation target.

    Args:
        num_resamples: K, the number of resamples (paper default 100).
        rng: default random generator used when ``estimate`` is not given
            one explicitly.
        pool: optional worker pool; replicate chunks fan out across it.
            Results are bit-identical with and without a pool.
        chunk_size: resamples per chunk (and per child RNG stream).
        supervision: optional fault-tolerance context.  When it allows
            partial results and some replicate chunks stay failed after
            retries, the CI is computed from the completed replicates
            and widened by the Monte-Carlo inflation factor
            ``sqrt(K_requested / K_completed)``.
        replicate_cap: optional governor budget on the number of
            replicates actually computed (the reduced-K rung of the
            degradation ladder).  The run truncates at a whole-chunk
            boundary and the same inflation factor widens the CI, so a
            capped answer is honest about its extra Monte-Carlo noise.
    """

    name = "bootstrap"

    def __init__(
        self,
        num_resamples: int = DEFAULT_NUM_RESAMPLES,
        rng: np.random.Generator | None = None,
        pool: WorkerPool | None = None,
        chunk_size: int = DEFAULT_REPLICATE_CHUNK,
        supervision: Supervision | None = None,
        replicate_cap: int | None = None,
    ):
        if num_resamples < 2:
            raise EstimationError(
                f"bootstrap needs at least 2 resamples, got {num_resamples}"
            )
        self.num_resamples = num_resamples
        self.chunk_size = chunk_size
        self.replicate_cap = replicate_cap
        self._rng = rng or np.random.default_rng()
        self._pool = pool
        self._supervision = supervision

    def __getstate__(self):
        # Estimators travel to worker processes inside diagnostic tasks;
        # pools and supervision contexts are process-local and must
        # never nest.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_supervision"] = None
        return state

    def resample_distribution(
        self,
        target: EstimationTarget,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """The K bootstrap replicate estimates for ``target``.

        Weights are generated only for the rows that pass the filter —
        this is exactly the resampling-operator pushdown of §5.3.2 (the
        Poisson weights of filtered-out rows can never reach the
        aggregate, so they are never drawn).

        The replicates are computed in fixed-size chunks, each from its
        own child stream of one seed drawn from ``rng``, so the result
        does not depend on the worker count.
        """
        rng = rng or self._rng
        return bootstrap_replicates(
            target,
            self.num_resamples,
            seed_from_rng(rng),
            chunk_size=self.chunk_size,
            pool=self._pool,
            supervision=self._supervision,
            replicate_cap=self.replicate_cap,
        )

    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        with trace_span("bootstrap.estimate", resamples=self.num_resamples):
            center = target.point_estimate()
            distribution = self.resample_distribution(target, rng)
            trace_counter("replicates", len(distribution))
            interval = interval_from_distribution(
                distribution, center, confidence, self.name
            )
            if len(distribution) < self.num_resamples:
                # Fewer replicates survived than requested: the quantile
                # estimate itself is noisier, so widen by the Monte-Carlo
                # inflation factor sqrt(K/K') — honest error bars from
                # partial work, never a silently optimistic interval.
                inflation = float(
                    np.sqrt(self.num_resamples / len(distribution))
                )
                interval = ConfidenceInterval(
                    estimate=interval.estimate,
                    half_width=interval.half_width * inflation,
                    confidence=interval.confidence,
                    method=interval.method,
                )
            return interval


def bootstrap_table_statistic(
    table: Table,
    statistic: Callable[[Table], float],
    num_resamples: int = DEFAULT_NUM_RESAMPLES,
    rng: np.random.Generator | None = None,
    method: str = "poisson",
    pool: WorkerPool | None = None,
    chunk_size: int = DEFAULT_REPLICATE_CHUNK,
    supervision: Supervision | None = None,
    replicate_cap: int | None = None,
) -> np.ndarray:
    """Bootstrap replicate values of a black-box per-table statistic.

    Args:
        table: the sample S.
        statistic: θ as a function of a table (e.g. "execute this nested
            SQL query and return its single output value").  Must be
            picklable for the fan-out to leave the calling process;
            otherwise the chunks run inline with identical results.
        num_resamples: K.
        rng: random generator.
        method: ``"poisson"`` for Poissonized resamples (approximate
            size, cheap) or ``"exact"`` for multinomial Tuple-Augmentation
            resamples (exact size n, the 8–9× slower baseline of §5.1).
        pool: optional worker pool; the table's columns are shared with
            workers via shared memory and chunks of resamples fan out.
        chunk_size: resamples per chunk (and per child RNG stream).

    Returns:
        Array of K replicate statistic values.
    """
    if num_resamples < 2:
        raise EstimationError(
            f"bootstrap needs at least 2 resamples, got {num_resamples}"
        )
    if table.num_rows == 0:
        raise EstimationError("cannot bootstrap an empty table")
    rng = rng or np.random.default_rng()
    return table_statistic_replicates(
        table,
        statistic,
        num_resamples,
        seed_from_rng(rng),
        method=method,
        chunk_size=chunk_size,
        pool=pool,
        supervision=supervision,
        replicate_cap=replicate_cap,
    )


def bootstrap_table_interval(
    table: Table,
    statistic: Callable[[Table], float],
    confidence: float = 0.95,
    num_resamples: int = DEFAULT_NUM_RESAMPLES,
    rng: np.random.Generator | None = None,
    method: str = "poisson",
    pool: WorkerPool | None = None,
) -> ConfidenceInterval:
    """Symmetric centered bootstrap CI for a black-box table statistic."""
    center = statistic(table)
    distribution = bootstrap_table_statistic(
        table, statistic, num_resamples, rng, method, pool
    )
    return interval_from_distribution(
        distribution, center, confidence, "bootstrap"
    )
