"""Nonparametric bootstrap error estimation (§2.3.1).

Efron's bootstrap substitutes the sample ``S`` for the dataset ``D``:
draw *K* resamples of ``S`` with replacement, compute the query on each,
and treat the spread of those K estimates as the sampling distribution
of θ(S).  It applies to arbitrarily complex queries (UDFs, nested
aggregation) but costs K query replications and fails when the statistic
is sensitive to rare extreme values or the sample is too small.

Two implementations are provided:

* :class:`BootstrapEstimator` — the fast path used by the optimised
  pipeline: Poissonized weight matrices over the filtered argument values
  (one consolidated scan, §5.3).
* :func:`bootstrap_table_statistic` — the generic path for black-box
  per-table statistics (e.g. nested aggregation queries), which
  materialises resample tables; this mirrors the §5.2 baseline and the
  EARL-style execution model.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.ci import ConfidenceInterval, interval_from_distribution
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.engine.table import Table
from repro.errors import EstimationError
from repro.sampling.poisson import materialize_poisson_resample, poisson_weight_matrix
from repro.sampling.tuple_augmentation import materialize_exact_resample

#: The paper's default number of bootstrap resamples.
DEFAULT_NUM_RESAMPLES = 100


class BootstrapEstimator(ErrorEstimator):
    """Poissonized bootstrap over an estimation target.

    Args:
        num_resamples: K, the number of resamples (paper default 100).
        rng: default random generator used when ``estimate`` is not given
            one explicitly.
    """

    name = "bootstrap"

    def __init__(
        self,
        num_resamples: int = DEFAULT_NUM_RESAMPLES,
        rng: np.random.Generator | None = None,
    ):
        if num_resamples < 2:
            raise EstimationError(
                f"bootstrap needs at least 2 resamples, got {num_resamples}"
            )
        self.num_resamples = num_resamples
        self._rng = rng or np.random.default_rng()

    def resample_distribution(
        self,
        target: EstimationTarget,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """The K bootstrap replicate estimates for ``target``.

        Weights are generated only for the rows that pass the filter —
        this is exactly the resampling-operator pushdown of §5.3.2 (the
        Poisson weights of filtered-out rows can never reach the
        aggregate, so they are never drawn).
        """
        rng = rng or self._rng
        matched = target.matched_values
        if len(matched) == 0:
            raise EstimationError(
                "cannot bootstrap a query whose filter matched no sample rows"
            )
        weights = poisson_weight_matrix(
            len(matched), self.num_resamples, rng, dtype=np.int32
        )
        return target.resample_estimates(weights, rng)

    def estimate(
        self,
        target: EstimationTarget,
        confidence: float = 0.95,
        rng: np.random.Generator | None = None,
    ) -> ConfidenceInterval:
        center = target.point_estimate()
        distribution = self.resample_distribution(target, rng)
        return interval_from_distribution(
            distribution, center, confidence, self.name
        )


def bootstrap_table_statistic(
    table: Table,
    statistic: Callable[[Table], float],
    num_resamples: int = DEFAULT_NUM_RESAMPLES,
    rng: np.random.Generator | None = None,
    method: str = "poisson",
) -> np.ndarray:
    """Bootstrap replicate values of a black-box per-table statistic.

    Args:
        table: the sample S.
        statistic: θ as a function of a table (e.g. "execute this nested
            SQL query and return its single output value").
        num_resamples: K.
        rng: random generator.
        method: ``"poisson"`` for Poissonized resamples (approximate
            size, cheap) or ``"exact"`` for multinomial Tuple-Augmentation
            resamples (exact size n, the 8–9× slower baseline of §5.1).

    Returns:
        Array of K replicate statistic values.
    """
    if num_resamples < 2:
        raise EstimationError(
            f"bootstrap needs at least 2 resamples, got {num_resamples}"
        )
    if table.num_rows == 0:
        raise EstimationError("cannot bootstrap an empty table")
    rng = rng or np.random.default_rng()
    if method == "poisson":
        make_resample = materialize_poisson_resample
    elif method == "exact":
        make_resample = materialize_exact_resample
    else:
        raise EstimationError(
            f"unknown resampling method {method!r}; use 'poisson' or 'exact'"
        )
    replicates = np.empty(num_resamples, dtype=np.float64)
    for k in range(num_resamples):
        replicates[k] = statistic(make_resample(table, rng))
    return replicates


def bootstrap_table_interval(
    table: Table,
    statistic: Callable[[Table], float],
    confidence: float = 0.95,
    num_resamples: int = DEFAULT_NUM_RESAMPLES,
    rng: np.random.Generator | None = None,
    method: str = "poisson",
) -> ConfidenceInterval:
    """Symmetric centered bootstrap CI for a black-box table statistic."""
    center = statistic(table)
    distribution = bootstrap_table_statistic(
        table, statistic, num_resamples, rng, method
    )
    return interval_from_distribution(
        distribution, center, confidence, "bootstrap"
    )
