"""Error estimation, diagnostics, and the AQP pipeline — the paper's core.

Submodules:

* :mod:`repro.core.ci` — symmetric centered confidence intervals and the
  δ failure metric (§2.2).
* :mod:`repro.core.estimators` — estimation targets and the ξ interface.
* :mod:`repro.core.bootstrap` — nonparametric bootstrap (§2.3.1).
* :mod:`repro.core.closed_form` — CLT closed forms (§2.3.2).
* :mod:`repro.core.large_deviation` — Hoeffding/Bernstein bounds (§2.3.3).
* :mod:`repro.core.ground_truth` — true intervals and the §3 evaluation.
* :mod:`repro.core.diagnostics` — Kleiner et al.'s diagnostic (§4).
* :mod:`repro.core.pipeline` — the end-to-end AQP engine (Fig. 5).
"""

from repro.core.ci import (
    ConfidenceInterval,
    interval_from_distribution,
    relative_width_deviation,
    symmetric_half_width,
)
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.core.bootstrap import (
    BootstrapEstimator,
    bootstrap_table_interval,
    bootstrap_table_statistic,
)
from repro.core.closed_form import ClosedFormEstimator, normal_quantile
from repro.core.large_deviation import BernsteinEstimator, HoeffdingEstimator
from repro.core.ground_truth import (
    DatasetQuery,
    EstimatorEvaluation,
    Verdict,
    classify_deltas,
    evaluate_estimator,
    sampling_distribution,
    true_interval,
)
from repro.core.diagnostics import (
    DiagnosticConfig,
    DiagnosticResult,
    SubsampleSizeReport,
    diagnose,
)
from repro.core.error_control import (
    SampleSizeSelector,
    SizeRecommendation,
    predict_half_width,
    required_sample_size,
)
from repro.core.adaptive import (
    AdaptiveBootstrapEstimator,
    AdaptiveBootstrapResult,
)
from repro.core.quantile_closed_form import QuantileClosedFormEstimator
from repro.core.pipeline import (
    ApproximateValue,
    AQPEngine,
    AQPResult,
    AQPRow,
    BlackBoxBootstrapEstimator,
    EngineConfig,
    TableQueryTarget,
)

__all__ = [
    "ConfidenceInterval",
    "interval_from_distribution",
    "relative_width_deviation",
    "symmetric_half_width",
    "ErrorEstimator",
    "EstimationTarget",
    "BootstrapEstimator",
    "bootstrap_table_interval",
    "bootstrap_table_statistic",
    "ClosedFormEstimator",
    "normal_quantile",
    "BernsteinEstimator",
    "HoeffdingEstimator",
    "DatasetQuery",
    "EstimatorEvaluation",
    "Verdict",
    "classify_deltas",
    "evaluate_estimator",
    "sampling_distribution",
    "true_interval",
    "DiagnosticConfig",
    "DiagnosticResult",
    "SubsampleSizeReport",
    "diagnose",
    "ApproximateValue",
    "AQPEngine",
    "AQPResult",
    "AQPRow",
    "BlackBoxBootstrapEstimator",
    "EngineConfig",
    "TableQueryTarget",
    "SampleSizeSelector",
    "SizeRecommendation",
    "predict_half_width",
    "required_sample_size",
    "AdaptiveBootstrapEstimator",
    "AdaptiveBootstrapResult",
    "QuantileClosedFormEstimator",
]
