"""Error-controlled sample-size selection.

§1: "error estimates help the system control error: by varying the
sample size while estimating the magnitude of the resulting error bars,
the system can make a smooth and controlled trade-off between accuracy
and query time."  This module implements that controller:

* :func:`predict_half_width` — extrapolate an interval's width from one
  sample size to another via the universal ``width ∝ 1 / sqrt(n)`` law
  (exact for CLT and large-deviation bounds; the right first-order rule
  for the bootstrap).
* :func:`required_sample_size` — invert the law: the smallest n whose
  predicted relative error meets a target.
* :class:`SampleSizeSelector` — run a cheap pilot estimate on a small
  sample, then pick the smallest catalog sample predicted to meet the
  caller's error bound (falling back to "use the full data" when none
  can).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ci import ConfidenceInterval
from repro.core.estimators import ErrorEstimator, EstimationTarget
from repro.errors import EstimationError


def predict_half_width(
    half_width: float, current_rows: int, target_rows: int
) -> float:
    """Extrapolate a half-width from ``current_rows`` to ``target_rows``."""
    if current_rows <= 0 or target_rows <= 0:
        raise EstimationError("row counts must be positive")
    return half_width * math.sqrt(current_rows / target_rows)


def required_sample_size(
    half_width: float,
    estimate: float,
    current_rows: int,
    target_relative_error: float,
) -> int:
    """Smallest n whose predicted relative error meets the target.

    Args:
        half_width: measured half-width at ``current_rows``.
        estimate: the point estimate (for relative error).
        current_rows: the pilot sample size.
        target_relative_error: required ``half_width / |estimate|``.

    Raises:
        EstimationError: if the estimate is zero (relative error is
            undefined) or the target is non-positive.
    """
    if target_relative_error <= 0:
        raise EstimationError(
            f"target relative error must be positive, got "
            f"{target_relative_error}"
        )
    if estimate == 0:
        raise EstimationError(
            "relative error is undefined for a zero estimate"
        )
    if half_width <= 0:
        return 1
    needed = current_rows * (
        half_width / (abs(estimate) * target_relative_error)
    ) ** 2
    return max(1, int(math.ceil(needed)))


@dataclass(frozen=True)
class SizeRecommendation:
    """Outcome of a pilot-based sample-size selection.

    Attributes:
        required_rows: predicted minimum sample rows for the target.
        pilot_interval: the interval measured on the pilot sample.
        feasible: whether any sample (≤ the dataset itself) suffices.
    """

    required_rows: int
    pilot_interval: ConfidenceInterval
    feasible: bool


class SampleSizeSelector:
    """Chooses the smallest sufficient sample via a pilot estimate."""

    def __init__(
        self,
        estimator: ErrorEstimator,
        confidence: float = 0.95,
        safety_factor: float = 1.2,
    ):
        """
        Args:
            estimator: the ξ used for the pilot interval.
            confidence: interval coverage level.
            safety_factor: multiplier on the predicted required size,
                absorbing extrapolation error (width predictions are
                first-order).
        """
        if safety_factor < 1.0:
            raise EstimationError(
                f"safety factor must be ≥ 1, got {safety_factor}"
            )
        self.estimator = estimator
        self.confidence = confidence
        self.safety_factor = safety_factor

    def recommend(
        self,
        pilot: EstimationTarget,
        target_relative_error: float,
        dataset_rows: Optional[int] = None,
        rng: np.random.Generator | None = None,
    ) -> SizeRecommendation:
        """Predict the sample size needed to meet the error target.

        Args:
            pilot: the query bound to a small pilot sample.
            target_relative_error: required relative error.
            dataset_rows: full-data size; determines feasibility.
            rng: randomness for resampling estimators.
        """
        interval = self.estimator.estimate(pilot, self.confidence, rng)
        required = required_sample_size(
            interval.half_width,
            interval.estimate,
            pilot.total_sample_rows,
            target_relative_error,
        )
        required = int(math.ceil(required * self.safety_factor))
        feasible = dataset_rows is None or required <= dataset_rows
        return SizeRecommendation(
            required_rows=required,
            pilot_interval=interval,
            feasible=feasible,
        )

    def pick_sample(
        self,
        pilot: EstimationTarget,
        available_sizes: list[int],
        target_relative_error: float,
        dataset_rows: Optional[int] = None,
        rng: np.random.Generator | None = None,
    ) -> tuple[Optional[int], SizeRecommendation]:
        """Pick the smallest available sample predicted to suffice.

        Returns ``(chosen_size, recommendation)``; ``chosen_size`` is
        ``None`` when no available sample meets the target (the caller
        should fall back to exact execution).
        """
        recommendation = self.recommend(
            pilot, target_relative_error, dataset_rows, rng
        )
        sufficient = sorted(
            size
            for size in available_sizes
            if size >= recommendation.required_rows
        )
        chosen = sufficient[0] if sufficient else None
        return chosen, recommendation
