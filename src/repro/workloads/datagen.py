"""Synthetic dataset generators.

Production analytic data is heavy-tailed: session durations are roughly
lognormal, byte counts Pareto, popularity Zipfian.  Error-estimation
failures in the paper are driven exactly by those tails (MIN/MAX and
rare-value sensitivity, §2.3.1), so the generators lean into them.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplingError


def zipf_categories(
    labels: list[str],
    size: int,
    rng: np.random.Generator,
    exponent: float = 1.2,
) -> np.ndarray:
    """Draw category labels with a Zipfian popularity profile."""
    if not labels:
        raise SamplingError("zipf_categories requires at least one label")
    ranks = np.arange(1, len(labels) + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    return np.asarray(labels)[rng.choice(len(labels), size=size, p=probabilities)]


def zipf_ids(
    num_entities: int,
    size: int,
    rng: np.random.Generator,
    exponent: float = 1.3,
) -> np.ndarray:
    """Entity ids (0..num_entities-1) with Zipfian access frequency."""
    ranks = np.arange(1, num_entities + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    probabilities /= probabilities.sum()
    return rng.choice(num_entities, size=size, p=probabilities)


def facebook_events_table(
    num_rows: int,
    rng: np.random.Generator | None = None,
    name: str = "events",
) -> Table:
    """A web-events table shaped like the Facebook trace's subjects.

    Columns:
        ``user_id``      Zipfian user popularity.
        ``duration``     lognormal session/action durations (heavy tail).
        ``bytes``        Pareto payload sizes (very heavy tail; the MIN/
                         MAX failure driver).
        ``score``        near-normal ranking score (benign column).
        ``revenue``      zero-inflated lognormal (mixture: most rows 0).
        ``age``          uniform integer demographic.
        ``country``      Zipfian categorical with a long tail of values.
        ``platform``     small categorical.
    """
    rng = rng or np.random.default_rng()
    if num_rows <= 0:
        raise SamplingError(f"num_rows must be positive, got {num_rows}")
    countries = [f"C{i:02d}" for i in range(40)]
    platforms = ["web", "ios", "android", "mweb"]
    revenue = rng.lognormal(1.0, 1.2, num_rows)
    revenue[rng.random(num_rows) < 0.85] = 0.0
    return Table(
        {
            "user_id": zipf_ids(num_rows // 20 + 10, num_rows, rng),
            "duration": rng.lognormal(3.0, 1.0, num_rows),
            "bytes": (rng.pareto(2.3, num_rows) + 1.0) * 1000.0,
            "score": rng.normal(50.0, 12.0, num_rows),
            "revenue": revenue,
            "age": rng.integers(13, 80, num_rows),
            "country": zipf_categories(countries, num_rows, rng),
            "platform": zipf_categories(platforms, num_rows, rng, 0.8),
        },
        name=name,
    )


def conviva_sessions_table(
    num_rows: int,
    rng: np.random.Generator | None = None,
    name: str = "media_sessions",
) -> Table:
    """A video-session table shaped like Conviva's media-access records.

    Columns:
        ``session_time``     lognormal viewing durations.
        ``buffering_ratio``  Beta-distributed fraction of time buffering.
        ``bitrate``          categorical ladder of encoded bitrates.
        ``bytes_streamed``   Pareto (heavy tail).
        ``startup_ms``       Gamma startup latency.
        ``content_id``       Zipfian content popularity.
        ``city``, ``isp``    Zipfian categoricals.
    """
    rng = rng or np.random.default_rng()
    if num_rows <= 0:
        raise SamplingError(f"num_rows must be positive, got {num_rows}")
    cities = [f"city_{i:02d}" for i in range(25)]
    isps = [f"isp_{i}" for i in range(12)]
    bitrates = np.array([235.0, 375.0, 560.0, 750.0, 1050.0, 1750.0, 2350.0, 3000.0])
    return Table(
        {
            "session_time": rng.lognormal(4.0, 1.1, num_rows),
            "buffering_ratio": rng.beta(1.2, 18.0, num_rows),
            "bitrate": bitrates[rng.integers(0, len(bitrates), num_rows)],
            "bytes_streamed": (rng.pareto(2.2, num_rows) + 1.0) * 5e6,
            "startup_ms": rng.gamma(2.0, 400.0, num_rows),
            "content_id": zipf_ids(num_rows // 50 + 10, num_rows, rng),
            "city": zipf_categories(cities, num_rows, rng),
            "isp": zipf_categories(isps, num_rows, rng, 1.0),
        },
        name=name,
    )
