"""A declarative model of single-aggregate workload queries.

The paper's evaluation unit is "a single aggregate function that returns
a single real number" (§2.1).  :class:`WorkloadQuery` captures one such
query — aggregate, argument column, optional scalar-UDF transform,
optional filter — and renders it two ways:

* :meth:`WorkloadQuery.sql` — SQL text for the AQP engine;
* :meth:`WorkloadQuery.dataset_query` — the array-form
  :class:`~repro.core.ground_truth.DatasetQuery` used by the §3
  ground-truth evaluation and the Fig. 3/4 benchmarks.

Keeping one definition for both paths guarantees the SQL the engine runs
and the arrays the evaluation uses describe the same θ.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.ground_truth import DatasetQuery
from repro.engine.aggregates import (
    AggregateFunction,
    PercentileAggregate,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.engine.table import Table
from repro.errors import AnalysisError
from repro.sql.analyzer import CLOSED_FORM_AGGREGATES, EXTENSIVE_AGGREGATES


def _trimmed_mean(values: np.ndarray) -> float:
    if len(values) < 10:
        return float(np.mean(values)) if len(values) else float("nan")
    trim = len(values) // 10
    return float(np.mean(np.sort(values)[trim:-trim]))


def _geometric_mean(values: np.ndarray) -> float:
    positive = values[values > 0]
    if len(positive) == 0:
        return float("nan")
    return float(np.exp(np.mean(np.log(positive))))


def _top_decile_share(values: np.ndarray) -> float:
    if len(values) == 0:
        return float("nan")
    total = float(values.sum())
    if total == 0:
        return float("nan")
    threshold = np.quantile(values, 0.9)
    return float(values[values >= threshold].sum() / total)


#: Scalar UDF transforms applied inside aggregate arguments.  These are
#: the "User Defined Functions" of the traces: row-wise feature
#: engineering that blocks closed-form error estimation.
TRANSFORMS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "log1p_scale": lambda v: np.log1p(np.abs(v)) * 10.0,
    "squash": lambda v: v / (1.0 + np.abs(v) / 1000.0),
    "dedupe_key": lambda v: np.floor(v / 16.0),
    "engagement": lambda v: np.sqrt(np.abs(v)) * np.sign(v),
}

#: Black-box user-defined aggregates (the UDAF side of "queries with
#: multiple aggregate operators, nested subqueries or UDFs", §7).
UDAF_FUNCTIONS: dict[str, Callable[[np.ndarray], float]] = {
    "trimmed_mean": _trimmed_mean,
    "geometric_mean": _geometric_mean,
    "top_decile_share": _top_decile_share,
}


@dataclass(frozen=True)
class WorkloadQuery:
    """One single-aggregate query over a workload table.

    Attributes:
        name: unique label within its workload.
        table_name: table the query runs on.
        aggregate_name: one of the built-in aggregate names, or a key of
            :data:`UDAF_FUNCTIONS` prefixed with ``"UDAF:"``.
        column: argument column (ignored for ``COUNT``).
        percentile: fraction for PERCENTILE aggregates.
        transform: key of :data:`TRANSFORMS` applied to the argument, or
            ``None``.  Marks the query as containing a UDF.
        filter_column / filter_op / filter_value: optional simple WHERE
            predicate (op is one of ``>``, ``<``, ``=``).
    """

    name: str
    table_name: str
    aggregate_name: str
    column: str
    percentile: Optional[float] = None
    transform: Optional[str] = None
    filter_column: Optional[str] = None
    filter_op: str = ">"
    filter_value: object = None

    # -- classification -----------------------------------------------------
    @property
    def is_udaf(self) -> bool:
        return self.aggregate_name.startswith("UDAF:")

    @property
    def has_udf(self) -> bool:
        """Whether the query contains any user-defined function."""
        return self.transform is not None or self.is_udaf

    @property
    def base_aggregate_name(self) -> str:
        if self.is_udaf:
            return self.aggregate_name.split(":", 1)[1]
        return self.aggregate_name

    @property
    def closed_form_applicable(self) -> bool:
        """The paper's closed-form rule applied to this query."""
        return (
            self.aggregate_name in CLOSED_FORM_AGGREGATES
            and not self.has_udf
        )

    @property
    def extensive(self) -> bool:
        return self.aggregate_name in EXTENSIVE_AGGREGATES

    @property
    def outlier_sensitive(self) -> bool:
        return self.make_aggregate().outlier_sensitive

    # -- instantiation ----------------------------------------------------------
    def make_aggregate(self) -> AggregateFunction:
        if self.is_udaf:
            key = self.base_aggregate_name
            if key not in UDAF_FUNCTIONS:
                raise AnalysisError(f"unknown UDAF {key!r}")
            return UserDefinedAggregate(key, UDAF_FUNCTIONS[key])
        if self.aggregate_name == "PERCENTILE":
            if self.percentile is None:
                raise AnalysisError("PERCENTILE query needs a fraction")
            return PercentileAggregate(self.percentile)
        return get_aggregate(self.aggregate_name)

    def sql(self) -> str:
        """Render the query as SQL for the AQP engine."""
        if self.aggregate_name == "COUNT" and self.transform is None:
            select = "COUNT(*)"
        else:
            argument = self.column
            if self.transform is not None:
                argument = f"{self.transform}({argument})"
            if self.aggregate_name == "PERCENTILE":
                select = f"PERCENTILE({argument}, {self.percentile})"
            elif self.aggregate_name == "COUNT_DISTINCT":
                select = f"COUNT(DISTINCT {argument})"
            elif self.is_udaf:
                select = f"{self.base_aggregate_name}({argument})"
            else:
                select = f"{self.aggregate_name}({argument})"
        sql = f"SELECT {select} AS v FROM {self.table_name}"
        if self.filter_column is not None:
            value = self.filter_value
            rendered = f"'{value}'" if isinstance(value, str) else repr(value)
            sql += f" WHERE {self.filter_column} {self.filter_op} {rendered}"
        return sql

    # -- array form ----------------------------------------------------------
    def argument_values(self, table: Table) -> np.ndarray:
        if self.aggregate_name == "COUNT" and self.transform is None:
            return np.ones(table.num_rows, dtype=np.float64)
        values = table.column(self.column).astype(np.float64)
        if self.transform is not None:
            if self.transform not in TRANSFORMS:
                raise AnalysisError(f"unknown transform {self.transform!r}")
            values = TRANSFORMS[self.transform](values)
        return values

    def filter_mask(self, table: Table) -> Optional[np.ndarray]:
        if self.filter_column is None:
            return None
        column = table.column(self.filter_column)
        if self.filter_op == ">":
            return column > self.filter_value
        if self.filter_op == "<":
            return column < self.filter_value
        if self.filter_op == "=":
            return column == self.filter_value
        raise AnalysisError(f"unsupported filter op {self.filter_op!r}")

    def dataset_query(self, table: Table) -> DatasetQuery:
        """The ground-truth array form of this query over ``table``."""
        return DatasetQuery(
            values=self.argument_values(table),
            aggregate=self.make_aggregate(),
            mask=self.filter_mask(table),
            extensive=self.extensive,
            label=self.name,
        )


def register_workload_functions(engine) -> None:
    """Register the workload's UDFs and UDAFs on an AQP engine."""
    for name, fn in TRANSFORMS.items():
        engine.register_udf(name, fn)
    for name, fn in UDAF_FUNCTIONS.items():
        engine.register_udaf(name, fn)
