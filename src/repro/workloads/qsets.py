"""QSet-1 / QSet-2 (§7) and their cost-model specifications.

The paper's performance study uses two 100-query sets over the Conviva
data: **QSet-1** — queries whose error bars admit closed forms (simple
AVG/COUNT/SUM/STDEV/VARIANCE aggregates) — and **QSet-2** — queries that
only the bootstrap can handle (complex aggregates, nested subqueries,
UDFs).  Each query ran with a 10 % error bound on a cached sample of at
most 20 GB drawn from 17 TB.

Two views are provided:

* :func:`qset1_queries` / :func:`qset2_queries` — executable
  :class:`~repro.workloads.queries.WorkloadQuery` objects for the AQP
  engine;
* :func:`qset1_specs` / :func:`qset2_specs` —
  :class:`~repro.cluster.jobs.AQPQuerySpec` cost descriptions for the
  cluster simulator (Figs. 7–9), with per-query variety in sample size
  and filter selectivity.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.config import GB
from repro.cluster.jobs import AQPQuerySpec
from repro.errors import SamplingError
from repro.workloads.conviva import conviva_workload
from repro.workloads.queries import WorkloadQuery

#: Average width of a Conviva media-access record in our cost model.
ROW_BYTES = 500


def qset1_queries(
    num_queries: int = 100,
    rng: np.random.Generator | None = None,
) -> list[WorkloadQuery]:
    """Closed-form-capable Conviva queries (§7's QSet-1)."""
    rng = rng or np.random.default_rng()
    queries: list[WorkloadQuery] = []
    while len(queries) < num_queries:
        for query in conviva_workload(4 * num_queries, rng):
            if query.closed_form_applicable:
                queries.append(query)
                if len(queries) == num_queries:
                    break
    return queries


def qset2_queries(
    num_queries: int = 100,
    rng: np.random.Generator | None = None,
) -> list[WorkloadQuery]:
    """Bootstrap-only Conviva queries (§7's QSet-2)."""
    rng = rng or np.random.default_rng()
    queries: list[WorkloadQuery] = []
    while len(queries) < num_queries:
        for query in conviva_workload(4 * num_queries, rng):
            if not query.closed_form_applicable:
                queries.append(query)
                if len(queries) == num_queries:
                    break
    return queries


def _specs(
    num_queries: int,
    closed_form: bool,
    rng: np.random.Generator,
    cached_fraction: float,
) -> list[AQPQuerySpec]:
    if num_queries <= 0:
        raise SamplingError(f"num_queries must be positive, got {num_queries}")
    specs = []
    for __ in range(num_queries):
        # "a cached random sample of at most 20 GB": sizes vary per query.
        sample_bytes = float(rng.uniform(2, 20)) * GB
        selectivity = float(np.clip(rng.lognormal(-1.6, 0.8), 0.005, 1.0))
        specs.append(
            AQPQuerySpec(
                sample_bytes=sample_bytes,
                sample_rows=int(sample_bytes / ROW_BYTES),
                selectivity=selectivity,
                closed_form=closed_form,
                cached_fraction=cached_fraction,
            )
        )
    return specs


def qset1_specs(
    num_queries: int = 100,
    rng: np.random.Generator | None = None,
    cached_fraction: float = 1.0,
) -> list[AQPQuerySpec]:
    """Cost-model specs for QSet-1 (closed-form error estimation)."""
    return _specs(
        num_queries, True, rng or np.random.default_rng(), cached_fraction
    )


def qset2_specs(
    num_queries: int = 100,
    rng: np.random.Generator | None = None,
    cached_fraction: float = 1.0,
) -> list[AQPQuerySpec]:
    """Cost-model specs for QSet-2 (bootstrap-only error estimation)."""
    return _specs(
        num_queries, False, rng or np.random.default_rng(), cached_fraction
    )
