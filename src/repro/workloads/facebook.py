"""A Facebook-like query workload.

Published statistics reproduced (§1, §3):

* aggregate shares — MIN 33.35 %, COUNT 24.67 %, AVG 12.20 %,
  SUM 10.11 %, MAX 2.87 % ("the most popular aggregate functions"),
  with the remainder assigned to VARIANCE/STDEV;
* 11.01 % of queries contain a UDF;
* closed-form error estimation applies to 56.78 % of queries
  (equivalently, 43.21 % are bootstrap-only, §3).

With the shares below and UDFs assigned independently at 11.01 %, the
expected closed-form-applicable fraction is
(0.2467 + 0.1220 + 0.1011 + 0.10 + 0.068) × (1 − 0.1101) = 56.76 %.
(Note the paper also quotes "37.21 % amenable to closed forms" in
§2.3.2 — internally inconsistent with §1/§3; we target the §1/§3
figure.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.workloads.queries import TRANSFORMS, WorkloadQuery

#: Aggregate-function shares of the Facebook trace.
FACEBOOK_MIX: dict[str, float] = {
    "MIN": 0.3335,
    "COUNT": 0.2467,
    "AVG": 0.1220,
    "SUM": 0.1011,
    "VARIANCE": 0.1000,
    "STDEV": 0.0680,
    "MAX": 0.0287,
}

#: Fraction of queries containing a UDF.
FACEBOOK_UDF_RATE = 0.1101

#: Numeric columns aggregates draw their arguments from.
_VALUE_COLUMNS = ("duration", "bytes", "score", "revenue")

#: Simple predicates with a spread of selectivities.
_FILTERS = (
    ("duration", ">", 20.0),
    ("duration", "<", 20.0),
    ("age", "<", 30),
    ("age", ">", 55),
    ("country", "=", "C00"),
    ("country", "=", "C05"),
    ("platform", "=", "web"),
    ("score", ">", 50.0),
    ("score", ">", 65.0),
)

#: Fraction of queries with no WHERE clause.
_UNFILTERED_RATE = 0.3


def facebook_workload(
    num_queries: int,
    rng: np.random.Generator | None = None,
    table_name: str = "events",
) -> list[WorkloadQuery]:
    """Generate a Facebook-like workload of single-aggregate queries."""
    if num_queries <= 0:
        raise SamplingError(f"num_queries must be positive, got {num_queries}")
    rng = rng or np.random.default_rng()
    names = list(FACEBOOK_MIX)
    probabilities = np.array([FACEBOOK_MIX[name] for name in names])
    probabilities = probabilities / probabilities.sum()
    transform_names = list(TRANSFORMS)

    queries: list[WorkloadQuery] = []
    for i in range(num_queries):
        aggregate = names[rng.choice(len(names), p=probabilities)]
        column = _VALUE_COLUMNS[rng.integers(0, len(_VALUE_COLUMNS))]
        transform = None
        if rng.random() < FACEBOOK_UDF_RATE:
            transform = transform_names[rng.integers(0, len(transform_names))]
        filter_column = filter_op = None
        filter_value = None
        if aggregate == "COUNT" or rng.random() > _UNFILTERED_RATE:
            # COUNT(*) without a filter has no sampling error; always
            # give counts a predicate, like real trace queries do.
            filter_column, filter_op, filter_value = _FILTERS[
                rng.integers(0, len(_FILTERS))
            ]
        queries.append(
            WorkloadQuery(
                name=f"fb_q{i:04d}",
                table_name=table_name,
                aggregate_name=aggregate,
                column=column,
                transform=transform,
                filter_column=filter_column,
                filter_op=filter_op or ">",
                filter_value=filter_value,
            )
        )
    return queries
