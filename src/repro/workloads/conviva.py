"""A Conviva-like query workload.

Published statistics reproduced (§3, §4.2):

* AVG, COUNT, PERCENTILE, and MAX are the most popular aggregates with
  a combined share of 32.3 %;
* 42.07 % of queries contain at least one UDF;
* 62.79 % of queries are bootstrap-only (37.21 % closed-form capable).

UDAFs (black-box aggregates like trimmed means) carry most of the UDF
share; scalar transforms are sprinkled on the rest so that the expected
UDF fraction lands at ≈ 42 % and the expected closed-form-applicable
fraction at ≈ 37 %.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.workloads.queries import TRANSFORMS, WorkloadQuery

#: Aggregate-function shares of the Conviva trace (AVG+COUNT+PERCENTILE+
#: MAX = 0.323, the paper's "combined share of 32.3 %").
CONVIVA_MIX: dict[str, float] = {
    "AVG": 0.1200,
    "COUNT": 0.0900,
    "PERCENTILE": 0.0700,
    "MAX": 0.0430,
    "SUM": 0.1500,
    "MIN": 0.0500,
    "VARIANCE": 0.0500,
    "STDEV": 0.0300,
    "COUNT_DISTINCT": 0.0900,
    "UDAF:trimmed_mean": 0.1000,
    "UDAF:geometric_mean": 0.1000,
    "UDAF:top_decile_share": 0.1070,
}

#: Scalar-transform rates, tuned so that the total UDF share (UDAFs plus
#: transformed queries) is ≈ 0.42 and closed forms apply to ≈ 0.37:
#: closed-form-type share 0.44 × (1 − 0.154) = 0.372.
_TRANSFORM_RATE_CLOSED_FORM_TYPE = 0.154
_TRANSFORM_RATE_OTHER = 0.25

_CLOSED_FORM_TYPE = frozenset({"AVG", "COUNT", "SUM", "VARIANCE", "STDEV"})

_VALUE_COLUMNS = (
    "session_time",
    "buffering_ratio",
    "bytes_streamed",
    "startup_ms",
)

_PERCENTILES = (0.5, 0.9, 0.95, 0.99)

_FILTERS = (
    ("session_time", ">", 50.0),
    ("session_time", "<", 50.0),
    ("buffering_ratio", ">", 0.1),
    ("bitrate", ">", 1000.0),
    ("bitrate", "<", 600.0),
    ("city", "=", "city_00"),
    ("isp", "=", "isp_0"),
    ("startup_ms", ">", 1500.0),
)

_UNFILTERED_RATE = 0.3


def conviva_workload(
    num_queries: int,
    rng: np.random.Generator | None = None,
    table_name: str = "media_sessions",
) -> list[WorkloadQuery]:
    """Generate a Conviva-like workload of single-aggregate queries."""
    if num_queries <= 0:
        raise SamplingError(f"num_queries must be positive, got {num_queries}")
    rng = rng or np.random.default_rng()
    names = list(CONVIVA_MIX)
    probabilities = np.array([CONVIVA_MIX[name] for name in names])
    probabilities = probabilities / probabilities.sum()
    transform_names = list(TRANSFORMS)

    queries: list[WorkloadQuery] = []
    for i in range(num_queries):
        aggregate = names[rng.choice(len(names), p=probabilities)]
        column = _VALUE_COLUMNS[rng.integers(0, len(_VALUE_COLUMNS))]
        is_udaf = aggregate.startswith("UDAF:")
        if aggregate in _CLOSED_FORM_TYPE:
            transform_rate = _TRANSFORM_RATE_CLOSED_FORM_TYPE
        elif is_udaf:
            transform_rate = 0.0  # already a UDF by definition
        else:
            transform_rate = _TRANSFORM_RATE_OTHER
        transform = None
        if rng.random() < transform_rate:
            transform = transform_names[rng.integers(0, len(transform_names))]
        percentile = None
        if aggregate == "PERCENTILE":
            percentile = _PERCENTILES[rng.integers(0, len(_PERCENTILES))]
        if aggregate == "COUNT_DISTINCT":
            column = "content_id"
        filter_column = filter_op = None
        filter_value = None
        if aggregate == "COUNT" or rng.random() > _UNFILTERED_RATE:
            filter_column, filter_op, filter_value = _FILTERS[
                rng.integers(0, len(_FILTERS))
            ]
        queries.append(
            WorkloadQuery(
                name=f"cv_q{i:04d}",
                table_name=table_name,
                aggregate_name=aggregate,
                column=column,
                percentile=percentile,
                transform=transform,
                filter_column=filter_column,
                filter_op=filter_op or ">",
                filter_value=filter_value,
            )
        )
    return queries


#: The dashboard trace's drill-down dimensions and the literal values
#: each rotates through (§3's "same queries with different constants").
_DASHBOARD_CITIES = ("city_00", "city_03", "city_08", "city_12")
_DASHBOARD_ISPS = ("isp_0", "isp_1", "isp_4")


def conviva_dashboard_mix(table_name: str = "media_sessions") -> list[str]:
    """The repeated-dashboard slice of the Conviva trace, as SQL text.

    Real dashboards refresh a fixed panel of query *shapes* whose
    predicate literals rotate (which city, which ISP, which hour).
    This mix reproduces that traffic pattern: cube-servable shapes over
    the ``city``/``isp`` drill-down dimensions with rotating literals
    (the materialized catalog's partial-hit case), plus rollup panels
    and a few non-servable shapes (PERCENTILE, MAX, metric-range
    predicates) that only repeat verbatim (the exact-hit case).
    """
    queries: list[str] = []
    for city in _DASHBOARD_CITIES:
        queries.append(
            f"SELECT COUNT(*) FROM {table_name} WHERE city = '{city}'"
        )
        queries.append(
            f"SELECT AVG(buffering_ratio) FROM {table_name} "
            f"WHERE city = '{city}'"
        )
    for isp in _DASHBOARD_ISPS:
        queries.append(
            f"SELECT COUNT(*) FROM {table_name} WHERE isp = '{isp}'"
        )
        queries.append(
            f"SELECT AVG(startup_ms) FROM {table_name} WHERE isp = '{isp}'"
        )
    queries.append(
        f"SELECT COUNT(*) FROM {table_name} "
        f"WHERE city = '{_DASHBOARD_CITIES[0]}' "
        f"AND isp = '{_DASHBOARD_ISPS[1]}'"
    )
    # Rollup panels: grouped over a cube dimension.
    queries.append(
        f"SELECT isp, COUNT(*) FROM {table_name} GROUP BY isp"
    )
    queries.append(
        f"SELECT isp, AVG(buffering_ratio) FROM {table_name} GROUP BY isp"
    )
    # Shapes no rollup cube serves; repeats hit the result store only.
    queries.append(
        f"SELECT PERCENTILE(session_time, 0.95) FROM {table_name}"
    )
    queries.append(
        f"SELECT MAX(startup_ms) FROM {table_name} "
        f"WHERE city = '{_DASHBOARD_CITIES[1]}'"
    )
    queries.append(
        f"SELECT AVG(session_time) FROM {table_name} "
        f"WHERE buffering_ratio > 0.1"
    )
    return queries
