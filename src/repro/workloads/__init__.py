"""Synthetic workloads matching the paper's published statistics.

The Facebook (69,438 Hive queries / 97.3 TB) and Conviva (18,321 queries
/ 1.7 TB) traces are proprietary; the paper itself released a synthetic
benchmark "that closely reflects the key characteristics of the Facebook
and Conviva workloads ... both in terms of the distribution of
underlying data and the query workload" (§3).  This package is our
version of that benchmark:

* :mod:`repro.workloads.datagen` — heavy-tailed tables shaped like web
  event logs and media sessions;
* :mod:`repro.workloads.queries` — a declarative single-aggregate query
  model convertible to both SQL and ground-truth array form;
* :mod:`repro.workloads.facebook` / :mod:`repro.workloads.conviva` —
  query mixes matching the published aggregate-function shares and UDF
  fractions;
* :mod:`repro.workloads.qsets` — QSet-1/QSet-2 (§7) and the cost-model
  specs for the cluster benchmarks.
"""

from repro.workloads.datagen import (
    facebook_events_table,
    conviva_sessions_table,
)
from repro.workloads.queries import (
    TRANSFORMS,
    WorkloadQuery,
)
from repro.workloads.facebook import FACEBOOK_MIX, facebook_workload
from repro.workloads.conviva import (
    CONVIVA_MIX,
    conviva_dashboard_mix,
    conviva_workload,
)
from repro.workloads.qsets import (
    qset1_specs,
    qset2_specs,
    qset1_queries,
    qset2_queries,
)

__all__ = [
    "facebook_events_table",
    "conviva_sessions_table",
    "TRANSFORMS",
    "WorkloadQuery",
    "FACEBOOK_MIX",
    "facebook_workload",
    "CONVIVA_MIX",
    "conviva_dashboard_mix",
    "conviva_workload",
    "qset1_specs",
    "qset2_specs",
    "qset1_queries",
    "qset2_queries",
]
