"""Command-line interface: approximate SQL over CSV files.

Usage::

    python -m repro --table sessions.csv \\
        --sample-fraction 0.05 \\
        "SELECT AVG(time) FROM sessions WHERE city = 'NYC'"

Loads each ``--table`` CSV as a base table (named by file stem), builds
a uniform sample, runs the query through the full AQP pipeline —
approximate answer, error bars, diagnostic, fallback — and prints the
result.  ``--exact`` bypasses approximation.  Without a query argument,
starts a tiny REPL.

Observability surfaces:

* ``EXPLAIN ANALYZE <query>`` — run the query, then print its span tree
  (per-stage wall time, % of total, per-worker task timelines) plus
  answer-quality annotations (route, verdict, audit outcome, latency
  quantiles).
* ``--trace-out FILE`` — export the last query's trace as Chrome
  ``chrome://tracing`` / Perfetto JSON.
* ``\\stats`` in the REPL — dump the process-wide metrics registry
  (histograms carry derived p50/p95/p99).
* ``\\audit`` — the calibration auditor's live coverage report;
  ``\\metrics`` — the OpenMetrics text export.
* ``--events-out FILE`` — append one JSONL :class:`QueryEvent` per
  query; ``--audit-fraction F`` — audit that fraction of queries
  against exact ground truth; ``--metrics-out FILE`` — write the
  OpenMetrics export on exit.
* ``repro audit report --events FILE`` — offline coverage-vs-nominal
  summary of an event log (``--check`` exits 1 on breach).
* ``--log-level`` / ``REPRO_LOG_LEVEL`` — stdlib logging level for the
  ``repro`` package (default WARNING).

Serving:

* ``repro serve --table sessions.csv --port 7871`` — run the
  multi-tenant serving tier (:mod:`repro.serve`) over the loaded
  tables; SIGTERM drains gracefully.
* ``repro --connect HOST:PORT [--tenant NAME] [query]`` — run a query
  (or the REPL) against a remote server instead of an in-process
  engine.  Ctrl-C while a query is queued or running cancels it
  server-side before returning to the prompt.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from contextlib import contextmanager
from pathlib import Path

from repro.core.pipeline import AQPEngine, AQPResult, EngineConfig
from repro.engine.io import load_csv
from repro.errors import QueryCancelledError, ReproError
from repro.governor import CancelToken, update_resident_gauge
from repro.faults import FaultPlan
from repro.obs import (
    METRICS,
    configure_logging,
    format_duration,
    load_events,
    quantiles_from_snapshot,
    render_audit_report,
    render_openmetrics,
    render_span_tree,
    summarize_events,
    write_chrome_trace,
)

#: Case-insensitive prefix that turns a query into a traced explanation.
EXPLAIN_ANALYZE_PREFIX = "EXPLAIN ANALYZE"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate SQL with reliable error bars over CSV data.",
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="SQL text; omit for an interactive prompt",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="CSV",
        help="CSV file to load as a base table (repeatable); the table "
        "name is the file stem",
    )
    parser.add_argument(
        "--sample-fraction",
        type=float,
        default=0.1,
        help="uniform sample fraction per table (default 0.1)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for error bars (default 0.95)",
    )
    parser.add_argument(
        "--error-bound",
        type=float,
        default=None,
        help="maximum acceptable relative error; misses escalate or "
        "fall back to exact execution",
    )
    parser.add_argument(
        "--no-diagnostics",
        action="store_true",
        help="skip the error-estimation diagnostic",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="run the query exactly on the full data",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for bootstrap/diagnostic fan-out "
        "(default: REPRO_WORKERS or 1; results are bit-identical at "
        "any setting)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection spec, e.g. 'crash@0', "
        "'hang@2:0.5', 'rate:0.05' (comma-separated; see repro.faults)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="whole-query deadline; unfinished work is dropped and the "
        "answer degrades honestly",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard per-query timeout; past it the query is cancelled "
        "cooperatively (unlike --deadline, which degrades the answer)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget for bootstrap matrices and shared memory; "
        "over-budget plans degrade to cheaper estimates instead of "
        "allocating (default: REPRO_MEMORY_BUDGET or unlimited)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the query's trace as chrome://tracing JSON "
        "(in the REPL, each query overwrites the file)",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable query-lifecycle tracing (answers are bit-identical "
        "either way)",
    )
    parser.add_argument(
        "--no-catalog",
        action="store_true",
        help="disable the materialized-sample catalog (every query "
        "recomputes from scratch; same behaviour as REPRO_CATALOG=off)",
    )
    parser.add_argument(
        "--no-planner",
        action="store_true",
        help="disable the pilot-based bounded-query planner (WITHIN "
        "relative bounds degrade to the legacy fixed-budget error "
        "gate; same behaviour as REPRO_PLANNER=off)",
    )
    parser.add_argument(
        "--audit-fraction",
        type=float,
        default=None,
        metavar="F",
        help="fraction of queries the calibration auditor recomputes "
        "exactly to verify interval coverage (default: "
        "REPRO_AUDIT_FRACTION or 0; sampling is deterministic)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="append one structured JSONL event per executed query "
        "(readable later with 'repro audit report --events FILE')",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the OpenMetrics/Prometheus text export on exit",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="logging level for the repro package (DEBUG, INFO, WARNING, "
        "ERROR; default: REPRO_LOG_LEVEL or WARNING)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="run against a remote repro server instead of an "
        "in-process engine (no --table needed)",
    )
    parser.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="tenant name for --connect submissions (default 'default')",
    )
    return parser


def build_audit_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro audit <action>`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="Offline answer-quality reports over query event logs.",
    )
    parser.add_argument(
        "action", choices=["report"], help="audit action to run"
    )
    parser.add_argument(
        "--events",
        required=True,
        metavar="FILE",
        help="JSONL event log produced by --events-out / REPRO_EVENT_LOG",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        metavar="PP",
        help="coverage slack below nominal before a group is flagged "
        "(default 0.02)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the full report as JSON",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any group's coverage breaches the tolerance",
    )
    return parser


def run_audit_command(argv: list[str]) -> int:
    """``repro audit report --events FILE``: offline coverage summary."""
    args = build_audit_parser().parse_args(argv)
    try:
        events = list(load_events(args.events))
    except OSError as error:
        print(f"error: cannot read {args.events}: {error}", file=sys.stderr)
        return 1
    report = summarize_events(events, tolerance=args.tolerance)
    print(render_audit_report(report))
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"-- report written to {path}")
    if args.check and report["breaches"]:
        return 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve approximate SQL to multiple tenants over TCP.",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        required=True,
        metavar="CSV",
        help="CSV file to load as a base table (repeatable)",
    )
    parser.add_argument(
        "--sample-fraction", type=float, default=0.1,
        help="uniform sample fraction per table (default 0.1)",
    )
    parser.add_argument(
        "--confidence", type=float, default=0.95,
        help="confidence level for error bars (default 0.95)",
    )
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes per engine",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="listen address",
    )
    parser.add_argument(
        "--port", type=int, default=7871,
        help="listen port (0 picks a free one; default 7871)",
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=4,
        help="queries executing simultaneously (default 4)",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="process-wide byte budget shared by all engines",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="global serving-queue bound (default 64)",
    )
    parser.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME[:WEIGHT[:MAX_IN_FLIGHT[:RATE_PER_SEC]]]",
        help="explicit tenant policy (repeatable); unlisted tenants get "
        "the default policy",
    )
    parser.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="crash-consistency journal directory (restarts report "
        "in-flight queries as honestly lost); omit to disable",
    )
    parser.add_argument(
        "--drain-budget", type=float, default=5.0, metavar="SECONDS",
        help="graceful-drain budget on SIGTERM (default 5)",
    )
    parser.add_argument(
        "--max-deadline", type=float, default=300.0, metavar="SECONDS",
        help="clock-skew clamp on client deadlines (default 300)",
    )
    parser.add_argument(
        "--allow-remote-drain", action="store_true",
        help="accept the 'drain' op over the wire",
    )
    parser.add_argument(
        "--no-sharing", action="store_true",
        help="disable cross-query result sharing",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="logging level (default: REPRO_LOG_LEVEL or WARNING)",
    )
    return parser


def parse_tenant_spec(spec: str):
    """``name[:weight[:max_in_flight[:rate_per_sec]]]`` → TenantConfig."""
    from repro.serve import TenantConfig

    parts = spec.split(":")
    if not parts[0]:
        raise ReproError(f"tenant spec {spec!r} is missing a name")
    kwargs = {"name": parts[0]}
    try:
        if len(parts) > 1 and parts[1]:
            kwargs["weight"] = float(parts[1])
        if len(parts) > 2 and parts[2]:
            kwargs["max_in_flight"] = int(parts[2])
        if len(parts) > 3 and parts[3]:
            kwargs["rate_limit"] = int(parts[3])
    except ValueError as error:
        raise ReproError(f"bad tenant spec {spec!r}: {error}") from None
    try:
        return TenantConfig(**kwargs)
    except ValueError as error:
        raise ReproError(f"bad tenant spec {spec!r}: {error}") from None


def run_serve_command(argv: list[str]) -> int:
    """``repro serve``: run the multi-tenant serving tier until SIGTERM."""
    import asyncio

    from repro.governor import GovernorConfig, QueryGovernor
    from repro.serve import AQPServer, ServeConfig

    args = build_serve_parser().parse_args(argv)
    configure_logging(args.log_level or "INFO")
    table_paths = [Path(p) for p in args.table]

    def engine_factory() -> AQPEngine:
        engine = AQPEngine(
            config=EngineConfig(
                confidence=args.confidence,
                num_workers=args.workers,
            ),
            seed=args.seed,
        )
        for csv_path in table_paths:
            table = load_csv(csv_path)
            engine.register_table(table.name, table)
            engine.create_sample(table.name, fraction=args.sample_fraction)
        return engine

    governor = QueryGovernor(
        engine_factory,
        GovernorConfig(
            max_concurrency=args.max_concurrency,
            memory_budget_bytes=args.memory_budget,
        ),
    )
    tenants = {}
    for spec in args.tenant:
        config = parse_tenant_spec(spec)
        tenants[config.name] = config
    server = AQPServer(
        governor,
        ServeConfig(
            host=args.host,
            port=args.port,
            tenants=tenants or None,
            max_queue_depth=args.max_queue_depth,
            max_deadline_seconds=args.max_deadline,
            drain_budget_seconds=args.drain_budget,
            allow_remote_drain=args.allow_remote_drain,
            sharing=not args.no_sharing,
            journal_dir=args.journal_dir,
        ),
    )

    async def run() -> None:
        await server.start()
        print(
            f"repro serving on {server.config.host}:{server.port} "
            f"({len(table_paths)} table(s), "
            f"max_concurrency={args.max_concurrency}); SIGTERM drains"
        )
        await server.serve_forever()

    try:
        asyncio.run(run())
    finally:
        governor.close()
    return 0


def format_remote_result(payload: dict) -> str:
    """Render a remote ``done`` poll payload like a local result."""
    result = payload.get("result") or {}
    lines = []
    for row in result.get("rows", []):
        prefix = ""
        group = row.get("group") or {}
        if group:
            prefix = ", ".join(f"{k}={v}" for k, v in group.items()) + ": "
        for value in row.get("values", []):
            interval = value.get("interval")
            if interval and interval.get("half_width", 0) > 0:
                body = (
                    f"{value['name']} = {value['estimate']:.6g} "
                    f"± {interval['half_width']:.4g} "
                    f"({interval['confidence']:.0%}, {value['method']})"
                )
            else:
                body = (
                    f"{value['name']} = {value['estimate']:.6g} "
                    f"({value['method']})"
                )
            if value.get("fell_back"):
                reason = (value.get("fallback_reason") or "").split(";")[0]
                body += f"  [fallback: {reason}]"
            lines.append(prefix + body)
    sample = result.get("sample")
    elapsed = payload.get("elapsed_seconds")
    footer = f"-- sample {sample}" if sample else "-- remote"
    if elapsed is not None:
        footer += f", {format_duration(elapsed)} end to end"
    if result.get("shared"):
        footer += " (shared execution)"
    lines.append(footer)
    if result.get("degraded"):
        lines.append(f"-- execution: {result.get('report')}")
    return "\n".join(lines)


def remote_repl(client, args: argparse.Namespace) -> int:
    """The REPL against a remote server (``--connect``).

    Ctrl-C while a query is waiting sends a protocol ``cancel`` — a
    still-queued query is removed server-side without ever executing,
    a running one is cooperatively cancelled — then returns to the
    prompt.
    """
    from repro.errors import AdmissionRejectedError
    from repro.serve.client import RemoteQueryError

    print(
        f"repro> remote shell ({client.host}:{client.port}, tenant "
        f"{client.tenant!r}); empty line or Ctrl-D to exit "
        "(\\stats for server stats)"
    )
    while True:
        try:
            line = input("repro> ").strip()
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            print()
            continue
        if not line:
            return 0
        if line == "\\stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            continue
        try:
            payload = client.run(
                line,
                deadline_seconds=getattr(args, "timeout", None),
                error_bound=args.error_bound,
                confidence=args.confidence,
                run_diagnostics=not args.no_diagnostics,
            )
            print(format_remote_result(payload))
        except KeyboardInterrupt:
            print("query cancelled (Ctrl-C)", file=sys.stderr)
        except AdmissionRejectedError as error:
            retry = error.retry_after_seconds
            hint = (
                f" (retry after {retry:.2f}s)" if retry is not None else ""
            )
            print(f"rejected [{error.reason}]: {error}{hint}", file=sys.stderr)
        except RemoteQueryError as error:
            print(f"{error.state}: {error}", file=sys.stderr)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)


def run_remote(args: argparse.Namespace) -> int:
    """``--connect HOST:PORT``: one query or the remote REPL."""
    from repro.errors import AdmissionRejectedError
    from repro.serve import ServeClient
    from repro.serve.client import RemoteQueryError

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 1
    client = ServeClient(host, int(port_text), tenant=args.tenant)
    try:
        client.ping()
    except (OSError, ReproError) as error:
        print(f"error: cannot reach {args.connect}: {error}", file=sys.stderr)
        return 1
    try:
        if args.query is None:
            return remote_repl(client, args)
        try:
            payload = client.run(
                args.query,
                deadline_seconds=getattr(args, "timeout", None),
                error_bound=args.error_bound,
                confidence=args.confidence,
                run_diagnostics=not args.no_diagnostics,
            )
            print(format_remote_result(payload))
            return 0
        except AdmissionRejectedError as error:
            print(f"rejected [{error.reason}]: {error}", file=sys.stderr)
            return 1
        except (RemoteQueryError, ReproError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    finally:
        client.close()


def make_engine(args: argparse.Namespace) -> AQPEngine:
    """Build an engine with the requested tables and samples loaded."""
    if not args.table:
        raise ReproError("at least one --table CSV is required")
    fault_plan = None
    if getattr(args, "faults", None):
        fault_plan = FaultPlan.from_spec(
            args.faults, seed=args.seed or 0
        )
    engine = AQPEngine(
        config=EngineConfig(
            confidence=args.confidence,
            num_workers=getattr(args, "workers", None),
            fault_plan=fault_plan,
            query_deadline_seconds=getattr(args, "deadline", None),
            tracing=not getattr(args, "no_tracing", False),
            catalog=(False if getattr(args, "no_catalog", False) else None),
            planner=(False if getattr(args, "no_planner", False) else None),
            memory_budget_bytes=getattr(args, "memory_budget", None),
            audit_fraction=getattr(args, "audit_fraction", None),
            event_log_path=getattr(args, "events_out", None),
        ),
        seed=args.seed,
    )
    for csv_path in args.table:
        table = load_csv(Path(csv_path))
        engine.register_table(table.name, table)
        engine.create_sample(table.name, fraction=args.sample_fraction)
    return engine


def format_result(result: AQPResult) -> str:
    """Human-readable rendering of an approximate result."""
    lines = []
    for row in result.rows:
        prefix = ""
        if row.group:
            prefix = (
                ", ".join(f"{k}={v}" for k, v in row.group.items()) + ": "
            )
        for value in row.values.values():
            if value.interval is not None and value.interval.half_width > 0:
                body = (
                    f"{value.name} = {value.estimate:.6g} "
                    f"± {value.interval.half_width:.4g} "
                    f"({value.interval.confidence:.0%}, {value.method})"
                )
            else:
                body = f"{value.name} = {value.estimate:.6g} ({value.method})"
            if value.fell_back:
                body += f"  [fallback: {value.fallback_reason.split(';')[0]}]"
            lines.append(prefix + body)
    lines.append(
        f"-- sample {result.sample.name} ({result.sample.rows:,} rows), "
        f"{format_duration(result.elapsed_seconds)}"
    )
    if result.catalog_route is not None:
        lines.append(f"-- route: catalog {result.catalog_route}")
    if result.plan is not None:
        lines.append(f"-- plan: {result.plan.summary()}")
    report = result.execution_report
    if report is not None and report.bound_kind is not None:
        achieved = report.achieved_bound
        lines.append(
            f"-- bound: {report.bound_kind} target "
            f"{report.bound_target:.4g}, achieved "
            + ("n/a" if achieved is None else f"{achieved:.4g}")
        )
    if report is not None and (
        report.degraded
        or report.recovered
        or report.degraded_to_inline
        or report.fallbacks
    ):
        lines.append(f"-- execution: {report.summary()}")
    return "\n".join(lines)


def strip_explain_analyze(sql: str) -> tuple[str, bool]:
    """Split an optional ``EXPLAIN ANALYZE`` prefix off ``sql``."""
    stripped = sql.lstrip()
    if stripped[: len(EXPLAIN_ANALYZE_PREFIX)].upper() == (
        EXPLAIN_ANALYZE_PREFIX
    ):
        remainder = stripped[len(EXPLAIN_ANALYZE_PREFIX):]
        if remainder[:1].isspace() or remainder == "":
            return remainder.strip(), True
    return sql, False


@contextmanager
def _sigint_cancels(token: CancelToken):
    """While a query runs, Ctrl-C flips its cancel token.

    Cooperative cancellation unwinds through the normal cleanup paths
    (shared memory released, workers not stranded) instead of a
    KeyboardInterrupt landing at an arbitrary bytecode boundary.
    Outside the main thread — or in an embedded interpreter that owns
    SIGINT — this degrades to a no-op.
    """
    try:
        previous = signal.signal(
            signal.SIGINT,
            lambda signum, frame: token.cancel("interrupted (Ctrl-C)"),
        )
    except ValueError:
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def run_query(engine: AQPEngine, sql: str, args: argparse.Namespace) -> str:
    sql, explain = strip_explain_analyze(sql)
    if explain and not sql:
        raise ReproError("EXPLAIN ANALYZE requires a query")
    if args.exact:
        table = engine.execute_exact(sql)
        header = "  ".join(table.column_names)
        rows = [
            "  ".join(str(value) for value in row.values())
            for row in table.to_rows()
        ]
        return "\n".join([header, *rows])
    timeout = getattr(args, "timeout", None)
    token = (
        CancelToken.with_timeout(timeout)
        if timeout is not None
        else CancelToken()
    )
    with _sigint_cancels(token):
        result = engine.execute(
            sql,
            error_bound=args.error_bound,
            run_diagnostics=not args.no_diagnostics,
            cancel=token,
        )
    out = format_result(result)
    trace_out = getattr(args, "trace_out", None)
    if trace_out and result.trace is not None:
        path = write_chrome_trace(result.trace, trace_out)
        out += f"\n-- trace written to {path} (load in chrome://tracing)"
    if explain:
        if result.trace is None:
            out += "\n-- no trace: tracing is disabled (--no-tracing)"
        else:
            out += "\n\n" + render_span_tree(result.trace)
        out += "\n" + format_quality_annotations(result)
    return out


def format_quality_annotations(result: AQPResult) -> str:
    """EXPLAIN ANALYZE's answer-quality footer.

    What the trace tree cannot show: how this answer was routed and
    degraded, what the diagnostic said, whether the calibration auditor
    checked it against ground truth, and where its latency sits in the
    process-wide distribution.
    """
    lines = ["-- quality:"]
    event = result.event
    if event is not None:
        lines.append(
            f"--   route={event.route} level={event.level} "
            f"verdict={event.verdict} confidence={event.confidence:.0%}"
        )
        if event.max_relative_error is not None:
            lines.append(
                f"--   max relative error {event.max_relative_error:.4g} "
                f"(half-width {event.max_half_width:.4g})"
            )
        if event.audited:
            audit = event.audit
            lines.append(
                f"--   audited: {audit.get('covered_values', 0)}/"
                f"{audit.get('audited_values', 0)} interval(s) covered "
                f"ground truth (worst z={audit.get('worst_z')})"
            )
        else:
            lines.append("--   audited: no (sampled out or auditing off)")
    else:
        lines.append("--   event logging disabled (REPRO_EVENTS=off)")
    latency = METRICS.snapshot().get("query.seconds")
    if latency and latency.get("count"):
        quantiles = quantiles_from_snapshot(latency)
        rendered = " ".join(
            f"{label}={format_duration(value)}"
            for label, value in quantiles.items()
            if value is not None
        )
        lines.append(
            f"--   latency {format_duration(result.elapsed_seconds)} "
            f"(process {rendered} over {latency['count']} queries)"
        )
    return "\n".join(lines)


def format_stats() -> str:
    """The REPL's ``\\stats``: the metrics registry as indented JSON.

    Refreshes the ``process.resident_bytes`` gauge first, so the
    governor's memory picture (budget usage, resident set) is current
    at the moment of the snapshot.  Histogram snapshots are augmented
    with derived p50/p95/p99 estimates.
    """
    update_resident_gauge()
    snapshot = METRICS.snapshot()
    for entry in snapshot.values():
        if entry.get("type") == "histogram":
            entry["quantiles"] = quantiles_from_snapshot(entry)
    return json.dumps(snapshot, indent=2, sort_keys=True)


def repl(engine: AQPEngine, args: argparse.Namespace) -> int:
    print(
        "repro> approximate SQL shell; empty line or Ctrl-D to exit "
        "(\\stats for metrics, \\audit for calibration, \\metrics for "
        "OpenMetrics, EXPLAIN ANALYZE <query> for a trace)"
    )
    while True:
        try:
            line = input("repro> ").strip()
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            # Ctrl-C abandons the current input line, not the shell.
            print()
            continue
        if not line:
            return 0
        if line == "\\stats":
            print(format_stats())
            continue
        if line == "\\audit":
            print(render_audit_report(engine.auditor.report()))
            continue
        if line == "\\metrics":
            print(render_openmetrics(), end="")
            continue
        try:
            print(run_query(engine, line, args))
        except QueryCancelledError as error:
            # Ctrl-C during a query flips its cancel token; the query
            # unwinds cleanly and the shell lives on.
            print(f"cancelled: {error}", file=sys.stderr)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
        except KeyboardInterrupt:
            print("query interrupted", file=sys.stderr)


def _write_metrics_out(path: str | None) -> None:
    if not path:
        return
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    update_resident_gauge()
    target.write_text(render_openmetrics())
    print(f"-- metrics written to {target}")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "audit":
        return run_audit_command(argv[1:])
    if argv and argv[0] == "serve":
        try:
            return run_serve_command(argv[1:])
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    if args.connect:
        return run_remote(args)
    try:
        engine = make_engine(args)
        if args.query is None:
            code = repl(engine, args)
            _write_metrics_out(args.metrics_out)
            return code
        print(run_query(engine, args.query, args))
        _write_metrics_out(args.metrics_out)
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
