"""Command-line interface: approximate SQL over CSV files.

Usage::

    python -m repro --table sessions.csv \\
        --sample-fraction 0.05 \\
        "SELECT AVG(time) FROM sessions WHERE city = 'NYC'"

Loads each ``--table`` CSV as a base table (named by file stem), builds
a uniform sample, runs the query through the full AQP pipeline —
approximate answer, error bars, diagnostic, fallback — and prints the
result.  ``--exact`` bypasses approximation.  Without a query argument,
starts a tiny REPL.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.pipeline import AQPEngine, AQPResult, EngineConfig
from repro.engine.io import load_csv
from repro.errors import ReproError
from repro.faults import FaultPlan


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate SQL with reliable error bars over CSV data.",
    )
    parser.add_argument(
        "query",
        nargs="?",
        help="SQL text; omit for an interactive prompt",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="CSV",
        help="CSV file to load as a base table (repeatable); the table "
        "name is the file stem",
    )
    parser.add_argument(
        "--sample-fraction",
        type=float,
        default=0.1,
        help="uniform sample fraction per table (default 0.1)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence level for error bars (default 0.95)",
    )
    parser.add_argument(
        "--error-bound",
        type=float,
        default=None,
        help="maximum acceptable relative error; misses escalate or "
        "fall back to exact execution",
    )
    parser.add_argument(
        "--no-diagnostics",
        action="store_true",
        help="skip the error-estimation diagnostic",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="run the query exactly on the full data",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for bootstrap/diagnostic fan-out "
        "(default: REPRO_WORKERS or 1; results are bit-identical at "
        "any setting)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault-injection spec, e.g. 'crash@0', "
        "'hang@2:0.5', 'rate:0.05' (comma-separated; see repro.faults)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="whole-query deadline; unfinished work is dropped and the "
        "answer degrades honestly",
    )
    return parser


def make_engine(args: argparse.Namespace) -> AQPEngine:
    """Build an engine with the requested tables and samples loaded."""
    if not args.table:
        raise ReproError("at least one --table CSV is required")
    fault_plan = None
    if getattr(args, "faults", None):
        fault_plan = FaultPlan.from_spec(
            args.faults, seed=args.seed or 0
        )
    engine = AQPEngine(
        config=EngineConfig(
            confidence=args.confidence,
            num_workers=getattr(args, "workers", None),
            fault_plan=fault_plan,
            query_deadline_seconds=getattr(args, "deadline", None),
        ),
        seed=args.seed,
    )
    for csv_path in args.table:
        table = load_csv(Path(csv_path))
        engine.register_table(table.name, table)
        engine.create_sample(table.name, fraction=args.sample_fraction)
    return engine


def format_result(result: AQPResult) -> str:
    """Human-readable rendering of an approximate result."""
    lines = []
    for row in result.rows:
        prefix = ""
        if row.group:
            prefix = (
                ", ".join(f"{k}={v}" for k, v in row.group.items()) + ": "
            )
        for value in row.values.values():
            if value.interval is not None and value.interval.half_width > 0:
                body = (
                    f"{value.name} = {value.estimate:.6g} "
                    f"± {value.interval.half_width:.4g} "
                    f"({value.interval.confidence:.0%}, {value.method})"
                )
            else:
                body = f"{value.name} = {value.estimate:.6g} ({value.method})"
            if value.fell_back:
                body += f"  [fallback: {value.fallback_reason.split(';')[0]}]"
            lines.append(prefix + body)
    lines.append(
        f"-- sample {result.sample.name} ({result.sample.rows:,} rows), "
        f"{result.elapsed_seconds * 1e3:.0f} ms"
    )
    report = result.execution_report
    if report is not None and (
        report.degraded
        or report.recovered
        or report.degraded_to_inline
        or report.fallbacks
    ):
        lines.append(f"-- execution: {report.summary()}")
    return "\n".join(lines)


def run_query(engine: AQPEngine, sql: str, args: argparse.Namespace) -> str:
    if args.exact:
        table = engine.execute_exact(sql)
        header = "  ".join(table.column_names)
        rows = [
            "  ".join(str(value) for value in row.values())
            for row in table.to_rows()
        ]
        return "\n".join([header, *rows])
    result = engine.execute(
        sql,
        error_bound=args.error_bound,
        run_diagnostics=not args.no_diagnostics,
    )
    return format_result(result)


def repl(engine: AQPEngine, args: argparse.Namespace) -> int:
    print("repro> approximate SQL shell; empty line or Ctrl-D to exit")
    while True:
        try:
            line = input("repro> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            return 0
        try:
            print(run_query(engine, line, args))
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        engine = make_engine(args)
        if args.query is None:
            return repl(engine, args)
        print(run_query(engine, args.query, args))
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
