"""A discrete cluster simulator standing in for the paper's EC2 testbed.

The paper's performance study (§6–§7, Figs. 7–9) ran on 100 Amazon EC2
``m1.large`` machines over 17 TB of Conviva data.  We reproduce the
latency *shapes* — baseline-vs-optimised gaps, the degree-of-parallelism
sweet spot, the cache-fraction sweet spot, straggler effects — with a
wave-scheduling simulator whose cost model is driven by the *measured*
work of real plan executions (passes, rows, weight cells, subqueries
from :class:`repro.plan.executor.CostProfile`).

Modules:

* :mod:`repro.cluster.config` — machine and cost-model parameters,
  including :data:`PAPER_CLUSTER`, the §7 deployment.
* :mod:`repro.cluster.stragglers` — straggler duration model and the
  §6.3 speculative-execution mitigation.
* :mod:`repro.cluster.simulator` — stage/job wave scheduling.
* :mod:`repro.cluster.jobs` — build simulator jobs from AQP phase costs.
"""

from repro.cluster.config import ClusterConfig, PAPER_CLUSTER
from repro.cluster.simulator import (
    ClusterSimulator,
    Job,
    JobTiming,
    Stage,
)
from repro.cluster.stragglers import straggler_multipliers
from repro.cluster.autotune import TuningResult, tune_parallelism
from repro.cluster.jobs import (
    AQPQuerySpec,
    QueryPhases,
    build_phases,
    diagnostics_phase,
    error_estimation_phase,
    query_execution_phase,
)

__all__ = [
    "ClusterConfig",
    "PAPER_CLUSTER",
    "ClusterSimulator",
    "Job",
    "JobTiming",
    "Stage",
    "straggler_multipliers",
    "AQPQuerySpec",
    "QueryPhases",
    "build_phases",
    "diagnostics_phase",
    "error_estimation_phase",
    "query_execution_phase",
    "TuningResult",
    "tune_parallelism",
]
