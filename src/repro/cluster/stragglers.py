"""Straggler modelling and speculative-execution mitigation (§6.3).

A small fraction of tasks in a real cluster run abnormally slowly (bad
disks, contention, GC pauses).  The paper mitigates them by spawning
10 % extra speculative copies on different machines and not waiting for
the original slow tasks.

We model a straggling task as its base duration multiplied by
``1 + Exponential(mean_slowdown)``; with mitigation, a duplicated task
finishes at the *minimum* of two independent draws, at the price of 10 %
extra task load on the cluster.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.errors import SimulationError

#: Fraction of tasks duplicated speculatively (§6.3: "always spawn 10%
#: more tasks on identical random samples of underlying data").
SPECULATIVE_FRACTION = 0.10


def straggler_multipliers(
    num_tasks: int,
    config: ClusterConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-task slowdown multipliers (1.0 for healthy tasks)."""
    if num_tasks < 0:
        raise SimulationError(f"num_tasks must be non-negative, got {num_tasks}")
    multipliers = np.ones(num_tasks)
    if config.straggler_probability <= 0:
        return multipliers
    straggling = rng.random(num_tasks) < config.straggler_probability
    count = int(straggling.sum())
    if count:
        multipliers[straggling] = 1.0 + rng.exponential(
            config.straggler_mean_slowdown, size=count
        )
    return multipliers


def apply_speculative_mitigation(
    durations: np.ndarray,
    base_durations: np.ndarray,
    config: ClusterConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Re-draw the slowest tasks' durations as min(original, fresh copy).

    Args:
        durations: task durations including straggler effects.
        base_durations: the straggler-free durations (speculative copies
            draw fresh straggler multipliers against these).
        config: cluster parameters.
        rng: randomness source.

    Returns:
        ``(new_durations, extra_tasks)`` where ``extra_tasks`` is the
        number of speculative copies launched (the added cluster load).
    """
    num_tasks = len(durations)
    if num_tasks == 0:
        return durations, 0
    num_speculative = max(1, int(np.ceil(num_tasks * SPECULATIVE_FRACTION)))
    slowest = np.argsort(durations)[-num_speculative:]
    fresh_multipliers = straggler_multipliers(num_speculative, config, rng)
    fresh = base_durations[slowest] * fresh_multipliers
    new_durations = durations.copy()
    new_durations[slowest] = np.minimum(durations[slowest], fresh)
    return new_durations, num_speculative
