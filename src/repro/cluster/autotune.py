"""Automatic degree-of-parallelism selection (§7.3's future work).

"Choosing the degree of parallelism automatically is a topic of future
work." — we implement it.  Given a job (or a set of phase jobs) and the
simulator, :func:`tune_parallelism` searches machine counts for the one
minimising expected latency, averaging several stochastic simulations
per candidate to smooth straggler noise.

The search exploits the sweep's characteristic unimodal-with-noise
shape (falling parallelism gains vs rising coordination/fan-in costs):
a coarse geometric grid localises the basin, then a local refinement
scans its neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.simulator import ClusterSimulator, Job
from repro.errors import SimulationError


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a parallelism search.

    Attributes:
        best_machines: the chosen machine count.
        best_seconds: its mean simulated latency.
        evaluated: machine count → mean latency for every candidate
            tried (for inspection/plots).
    """

    best_machines: int
    best_seconds: float
    evaluated: dict[int, float]


def _mean_latency(
    simulator: ClusterSimulator,
    jobs: list[Job],
    machines: int,
    repetitions: int,
    straggler_mitigation: bool,
    rng: np.random.Generator,
) -> float:
    totals = []
    for __ in range(repetitions):
        totals.append(
            sum(
                simulator.simulate(
                    job, machines, straggler_mitigation, rng
                ).total_seconds
                for job in jobs
            )
        )
    return float(np.mean(totals))


def tune_parallelism(
    simulator: ClusterSimulator,
    jobs: list[Job] | Job,
    repetitions: int = 5,
    straggler_mitigation: bool = True,
    rng: np.random.Generator | None = None,
) -> TuningResult:
    """Search machine counts for the latency-minimising configuration.

    Args:
        simulator: the cluster model.
        jobs: one job or the list of phase jobs run back-to-back.
        repetitions: stochastic simulations averaged per candidate.
        straggler_mitigation: whether tuned runs use speculative
            execution (§6.3).
        rng: randomness source.

    Raises:
        SimulationError: if the fleet has no machines (cannot happen
            with a validated config) or repetitions is non-positive.
    """
    if repetitions <= 0:
        raise SimulationError(
            f"repetitions must be positive, got {repetitions}"
        )
    if isinstance(jobs, Job):
        jobs = [jobs]
    rng = rng or np.random.default_rng()
    fleet = simulator.config.num_machines

    # Coarse pass: geometric grid up to the fleet size.
    candidates: list[int] = []
    machines = 1
    while machines < fleet:
        candidates.append(machines)
        machines *= 2
    candidates.append(fleet)

    evaluated: dict[int, float] = {}
    for candidate in candidates:
        evaluated[candidate] = _mean_latency(
            simulator, jobs, candidate, repetitions, straggler_mitigation, rng
        )
    coarse_best = min(evaluated, key=evaluated.get)

    # Refinement: scan between the coarse best's neighbours.
    index = candidates.index(coarse_best)
    low = candidates[max(0, index - 1)]
    high = candidates[min(len(candidates) - 1, index + 1)]
    step = max(1, (high - low) // 8)
    for candidate in range(low, high + 1, step):
        if candidate not in evaluated:
            evaluated[candidate] = _mean_latency(
                simulator,
                jobs,
                candidate,
                repetitions,
                straggler_mitigation,
                rng,
            )

    best = min(evaluated, key=evaluated.get)
    return TuningResult(
        best_machines=best,
        best_seconds=evaluated[best],
        evaluated=dict(sorted(evaluated.items())),
    )
