"""Cluster and cost-model configuration.

:data:`PAPER_CLUSTER` encodes the §7 deployment: 100 EC2 m1.large
instances (4 ECUs, 7.5 GB RAM, 840 GB disk each), 75 TB of distributed
disk and 600 GB of distributed RAM cache.  Bandwidths and overheads are
set to era-appropriate values (2013 Hive/Shark deployments): ~100 MB/s
sequential disk per machine, ~1 GB/s effective in-memory scan per slot,
and per-task scheduling/launch overheads in the tens of milliseconds —
the overhead that makes thousands of tiny subqueries non-interactive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class ClusterConfig:
    """Machine fleet parameters and cost-model constants.

    Attributes:
        num_machines: machines in the fleet.
        slots_per_machine: concurrent task slots per machine (≈ cores).
        ram_per_machine_bytes: RAM available per machine for caching
            inputs *and* for execution working memory.
        disk_bandwidth: sequential scan bandwidth from disk, per slot.
        memory_bandwidth: scan bandwidth from the RAM cache, per slot.
        cpu_throughput_rows: rows/s one slot can push through simple
            filter + aggregate work.
        cpu_throughput_weights: Poisson-weight cells/s one slot can
            generate and fold into weighted aggregates.
        scheduler_delay_seconds: per-task scheduling cost (the paper's
            "per-task overhead" that penalises thousands of subqueries).
        task_launch_overhead_seconds: per-task JVM/launch cost.
        result_fanin_seconds: per-task cost of the many-to-one
            aggregation phase (§6.1's communication overhead).
        coordination_seconds_per_machine: per-stage driver/executor
            coordination cost that grows with the number of machines
            used — the overhead that makes very wide parallelism
            counterproductive (Fig. 8(c)).
        straggler_probability: chance a task runs abnormally slow.
        straggler_mean_slowdown: mean extra slowdown multiplier of a
            straggling task (exponential tail).
        spill_penalty: multiplier applied to compute time when
            intermediate data exceeds execution memory (§6.2's
            cache-vs-working-memory tradeoff).
    """

    num_machines: int = 100
    slots_per_machine: int = 4
    ram_per_machine_bytes: int = int(7.5 * GB)
    disk_bandwidth: float = 100 * MB
    memory_bandwidth: float = 1 * GB
    cpu_throughput_rows: float = 25e6
    cpu_throughput_weights: float = 100e6
    scheduler_delay_seconds: float = 0.02
    task_launch_overhead_seconds: float = 0.05
    result_fanin_seconds: float = 0.004
    coordination_seconds_per_machine: float = 0.03
    straggler_probability: float = 0.05
    straggler_mean_slowdown: float = 2.0
    spill_penalty: float = 3.0

    def __post_init__(self):
        if self.num_machines <= 0 or self.slots_per_machine <= 0:
            raise SimulationError("machines and slots must be positive")
        if self.disk_bandwidth <= 0 or self.memory_bandwidth <= 0:
            raise SimulationError("bandwidths must be positive")
        if not 0.0 <= self.straggler_probability < 1.0:
            raise SimulationError(
                "straggler probability must be in [0, 1)"
            )

    @property
    def total_slots(self) -> int:
        return self.num_machines * self.slots_per_machine

    @property
    def total_ram_bytes(self) -> int:
        return self.num_machines * self.ram_per_machine_bytes

    def with_machines(self, num_machines: int) -> "ClusterConfig":
        """A copy of this config limited to ``num_machines`` machines."""
        from dataclasses import replace

        return replace(self, num_machines=num_machines)

    def scan_seconds(self, input_bytes: float, cached_fraction: float) -> float:
        """Per-slot time to stream ``input_bytes`` given cache residency."""
        if not 0.0 <= cached_fraction <= 1.0:
            raise SimulationError(
                f"cached_fraction must be in [0, 1], got {cached_fraction}"
            )
        cached = input_bytes * cached_fraction
        uncached = input_bytes - cached
        return cached / self.memory_bandwidth + uncached / self.disk_bandwidth


#: The §7 deployment: 100 × m1.large, 600 GB aggregate RAM cache.
PAPER_CLUSTER = ClusterConfig()
