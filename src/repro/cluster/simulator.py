"""Wave-scheduling cluster simulation.

A :class:`Job` is a sequence of :class:`Stage`\\ s; each stage carries a
*total* amount of work (bytes to scan, rows to process, weight cells to
generate).  At simulation time the stage is split into tasks: elastic
stages re-partition to exploit the available slots (what Shark does when
the operator asked for more parallelism), while ``fixed_tasks`` stages
keep their granularity — the §5.2 baseline's thousands of independent
subqueries cannot be merged, which is precisely why it is slow.

One task costs::

    scheduler delay + launch overhead
    + scan(bytes, cache residency) + cpu(rows) + cpu(weight cells)

Straggler multipliers and the §6.3 speculative mitigation apply per
task; tasks are placed on slots greedily (LPT); each stage then pays a
many-to-one fan-in cost proportional to its task count and a
coordination cost proportional to the number of machines used (§6.1) —
together these produce the degree-of-parallelism sweet spot of
Fig. 8(c).  The §6.2 cache-vs-working-memory tradeoff is modelled at
job level via a spill penalty (Fig. 8(d)).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.config import MB, ClusterConfig
from repro.cluster.stragglers import (
    apply_speculative_mitigation,
    straggler_multipliers,
)
from repro.errors import SimulationError

#: Finest repartitioning granularity for elastic stages.
MIN_PARTITION_BYTES = 32 * MB
#: Natural partition size when data volume, not parallelism, decides.
PARTITION_BYTES = 128 * MB
#: Work floor per elastic task, so tiny stages don't shatter into
#: thousands of no-op tasks just because slots are available.
MIN_TASK_SECONDS = 0.05


@dataclass(frozen=True)
class Stage:
    """A stage's total work, split into tasks at simulation time.

    Attributes:
        name: label for reporting.
        total_bytes: input bytes the stage scans in aggregate.
        total_rows: rows the stage filters/aggregates in aggregate.
        total_weight_cells: Poisson weight cells generated in aggregate.
        fixed_tasks: pin the task count (naive per-subquery execution);
            ``None`` lets the simulator choose based on slots.
        cached_fraction: fraction of this stage's input resident in RAM.
        spillable: whether compute pays the spill penalty when the job's
            working set exceeds free execution memory.
    """

    name: str
    total_bytes: float = 0.0
    total_rows: float = 0.0
    total_weight_cells: float = 0.0
    fixed_tasks: int | None = None
    cached_fraction: float = 1.0
    spillable: bool = False

    def __post_init__(self):
        if min(self.total_bytes, self.total_rows, self.total_weight_cells) < 0:
            raise SimulationError(
                f"stage {self.name!r} has negative work amounts"
            )
        if self.fixed_tasks is not None and self.fixed_tasks <= 0:
            raise SimulationError(
                f"stage {self.name!r}: fixed_tasks must be positive"
            )


@dataclass(frozen=True)
class Job:
    """A multi-stage job plus its memory footprint.

    Attributes:
        name: label for reporting.
        stages: stages executed sequentially (tasks within a stage run
            in parallel).
        cached_input_bytes: RAM consumed by cached inputs while this job
            runs; it competes with working memory (§6.2).
        intermediate_bytes: the job's execution working set.
    """

    name: str
    stages: tuple[Stage, ...]
    cached_input_bytes: float = 0.0
    intermediate_bytes: float = 0.0


@dataclass(frozen=True)
class JobTiming:
    """Simulated timing of one job."""

    total_seconds: float
    stage_seconds: dict[str, float] = field(default_factory=dict)
    tasks_launched: int = 0
    speculative_tasks: int = 0
    spilled: bool = False
    #: Tasks hit by an injected fault schedule (crashed-and-reexecuted
    #: or hung), summed over stages.
    faulted_tasks: int = 0


#: Simulated seconds before the supervisor notices a lost task (a
#: crashed task pays this plus one full re-execution).
FAULT_DETECTION_SECONDS = 5.0


def _lpt_makespan(durations: np.ndarray, slots: int) -> float:
    """Longest-processing-time greedy schedule makespan."""
    if len(durations) == 0:
        return 0.0
    if slots <= 0:
        raise SimulationError("need at least one slot")
    if len(durations) <= slots:
        return float(durations.max())
    loads = [0.0] * slots
    heapq.heapify(loads)
    for duration in np.sort(durations)[::-1]:
        least = heapq.heappop(loads)
        heapq.heappush(loads, least + float(duration))
    return max(loads)


class ClusterSimulator:
    """Simulates jobs on a configurable fleet."""

    def __init__(self, config: ClusterConfig):
        self.config = config

    # -- task shaping ---------------------------------------------------------
    def _work_seconds(self, stage: Stage, spill_factor: float) -> float:
        """Pure work time of the whole stage on one slot."""
        config = self.config
        scan = config.scan_seconds(stage.total_bytes, stage.cached_fraction)
        cpu = (
            stage.total_rows / config.cpu_throughput_rows
            + stage.total_weight_cells / config.cpu_throughput_weights
        )
        work = scan + cpu
        if stage.spillable:
            work *= spill_factor
        return work

    def _num_tasks(self, stage: Stage, slots: int, work_seconds: float) -> int:
        if stage.fixed_tasks is not None:
            return stage.fixed_tasks
        by_work = max(1, int(work_seconds / MIN_TASK_SECONDS))
        natural = max(1, int(-(-stage.total_bytes // PARTITION_BYTES)))
        candidates = [slots, by_work]
        if stage.total_bytes > 0:
            # Input-bound stages cannot be cut finer than the partition floor.
            candidates.append(
                max(1, int(-(-stage.total_bytes // MIN_PARTITION_BYTES)))
            )
        # Repartition up to the slot count when there is enough work, but
        # never below the natural partitioning.
        return max(natural, min(candidates))

    # -- memory ------------------------------------------------------------
    def _spill_factor(self, job: Job) -> tuple[float, bool]:
        # Cached samples and shuffle state live fleet-wide regardless of
        # how many machines this query's tasks were capped to.
        total_ram = self.config.num_machines * self.config.ram_per_machine_bytes
        working = total_ram - job.cached_input_bytes
        if working <= 0:
            return self.config.spill_penalty, True
        if job.intermediate_bytes <= working:
            return 1.0, False
        overflow = (job.intermediate_bytes - working) / job.intermediate_bytes
        return 1.0 + (self.config.spill_penalty - 1.0) * overflow, True

    # -- simulation --------------------------------------------------------
    def simulate(
        self,
        job: Job,
        num_machines: int | None = None,
        straggler_mitigation: bool = False,
        rng: np.random.Generator | None = None,
        fault_plan=None,
        fault_detection_seconds: float = FAULT_DETECTION_SECONDS,
    ) -> JobTiming:
        """Simulate ``job`` on up to ``num_machines`` machines.

        Args:
            job: the job description.
            num_machines: machine cap (defaults to the whole fleet); the
                §6.1 degree-of-parallelism knob.
            straggler_mitigation: enable §6.3 speculative execution.
            rng: randomness for stragglers (fresh generator if omitted).
            fault_plan: optional :class:`~repro.faults.plan.FaultPlan`;
                the same deterministic schedules that drive the
                in-process fault tests price crashes (detection delay +
                re-execution) and hangs (stalls) here, per stage.
                Speculative mitigation applies *after* fault delays, so
                §6.3 also rescues fault-induced stragglers.
            fault_detection_seconds: simulated time before the
                supervisor notices a crashed task.
        """
        rng = rng or np.random.default_rng()
        if num_machines is not None and num_machines <= 0:
            raise SimulationError(
                f"num_machines must be positive, got {num_machines}"
            )
        machines = num_machines or self.config.num_machines
        machines = min(machines, self.config.num_machines)
        slots = machines * self.config.slots_per_machine
        spill_factor, spilled = self._spill_factor(job)

        total = 0.0
        stage_seconds: dict[str, float] = {}
        tasks_launched = 0
        speculative_total = 0
        faulted_total = 0
        for stage in job.stages:
            work = self._work_seconds(stage, spill_factor)
            num_tasks = self._num_tasks(stage, slots, work)
            per_task = (
                self.config.scheduler_delay_seconds
                + self.config.task_launch_overhead_seconds
                + work / num_tasks
            )
            base = np.full(num_tasks, per_task)
            durations = base * straggler_multipliers(
                num_tasks, self.config, rng
            )
            if fault_plan is not None:
                extra, faulted = fault_plan.simulated_task_delays(
                    num_tasks, per_task, fault_detection_seconds
                )
                durations = durations + extra
                faulted_total += faulted
            speculative = 0
            if straggler_mitigation:
                durations, speculative = apply_speculative_mitigation(
                    durations, base, self.config, rng
                )
                # Speculative copies occupy slots; count their load.
                durations = np.concatenate(
                    [durations, base[:speculative]]
                )
            makespan = _lpt_makespan(durations, slots)
            fanin = self.config.result_fanin_seconds * num_tasks
            coordination = (
                self.config.coordination_seconds_per_machine * machines
            )
            seconds = makespan + fanin + coordination
            stage_seconds[stage.name] = seconds
            total += seconds
            tasks_launched += num_tasks + speculative
            speculative_total += speculative
        return JobTiming(
            total_seconds=total,
            stage_seconds=stage_seconds,
            tasks_launched=tasks_launched,
            speculative_tasks=speculative_total,
            spilled=spilled,
            faulted_tasks=faulted_total,
        )

    def sweep_machines(
        self,
        job: Job,
        machine_counts: list[int],
        rng: np.random.Generator | None = None,
        straggler_mitigation: bool = False,
        repetitions: int = 5,
    ) -> dict[int, float]:
        """Mean simulated latency per machine count (Fig. 8(c) sweeps)."""
        rng = rng or np.random.default_rng()
        results: dict[int, float] = {}
        for machines in machine_counts:
            samples = [
                self.simulate(
                    job, machines, straggler_mitigation, rng
                ).total_seconds
                for __ in range(repetitions)
            ]
            results[machines] = float(np.mean(samples))
        return results
