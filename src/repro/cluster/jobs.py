"""Build simulator jobs for the three phases of an AQP query.

The paper decomposes every query's response time into three components
(Figs. 7/9): the **query execution time** (the query on the sample), the
**error estimation overhead**, and the **diagnostics overhead**.  This
module turns a compact description of one query (:class:`AQPQuerySpec`)
into :class:`~repro.cluster.simulator.Job`\\ s for each phase, in either
the naive §5.2 shape or the optimised §5.3 shape:

====================  ===============================  =========================
phase                 naive                            optimised
====================  ===============================  =========================
query execution       1 pass over the sample           identical
error estimation      K extra full passes              0 extra passes; weight
                      (bootstrap) or 2 extra passes    cells only on filtered
                      (closed forms)                   rows (pushdown)
diagnostics           p·k·K tiny subqueries            shared scan + weight
                      (bootstrap) or p·k (closed       cells on subsample rows
                      form), one task each
====================  ===============================  =========================

The naive phases carry ``fixed_tasks`` — each §5.2 subquery schedules
independently, which is where the per-task overhead bites; the optimised
phases are elastic stages the simulator repartitions freely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import MB
from repro.cluster.simulator import Job, PARTITION_BYTES, Stage
from repro.errors import SimulationError

#: The paper's diagnostic subsample sizes (§5.3.1): 50/100/200 MB.
PAPER_DIAG_SIZES_BYTES = (50 * MB, 100 * MB, 200 * MB)

#: Bytes of intermediate state per generated weight cell (int32).
WEIGHT_CELL_BYTES = 4


@dataclass(frozen=True)
class AQPQuerySpec:
    """Compact description of one approximate query for cost modelling.

    Attributes:
        sample_bytes: size of the sample the query runs on.
        sample_rows: rows in the sample (wide analytic rows: the §7
            Conviva records are a few hundred bytes each).
        selectivity: fraction of rows surviving the WHERE clause —
            what the §5.3.2 pushdown saves on.
        closed_form: True for QSet-1-style queries (closed-form error),
            False for QSet-2 (bootstrap only).
        bootstrap_k: K bootstrap resamples.
        diag_p: p diagnostic subsamples per size.
        diag_sizes_bytes: diagnostic subsample sizes (bytes each).
        cached_fraction: fraction of the sample resident in RAM.
    """

    sample_bytes: float
    sample_rows: int
    selectivity: float = 1.0
    closed_form: bool = False
    bootstrap_k: int = 100
    diag_p: int = 100
    diag_sizes_bytes: tuple[float, ...] = PAPER_DIAG_SIZES_BYTES
    cached_fraction: float = 1.0

    def __post_init__(self):
        if self.sample_bytes <= 0 or self.sample_rows <= 0:
            raise SimulationError("sample must be non-empty")
        if not 0.0 < self.selectivity <= 1.0:
            raise SimulationError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )

    @property
    def bytes_per_row(self) -> float:
        return self.sample_bytes / self.sample_rows

    def rows_for_bytes(self, num_bytes: float) -> float:
        return num_bytes / self.bytes_per_row


@dataclass(frozen=True)
class QueryPhases:
    """The three jobs whose latencies Fig. 7/9 stack per query."""

    execution: Job
    error_estimation: Job
    diagnostics: Job


def _natural_partitions(sample_bytes: float) -> int:
    return max(1, int(-(-sample_bytes // PARTITION_BYTES)))


def query_execution_phase(spec: AQPQuerySpec) -> Job:
    """One pass over the sample: scan, filter, aggregate."""
    stage = Stage(
        name="scan+aggregate",
        total_bytes=spec.sample_bytes,
        total_rows=spec.sample_rows,
        cached_fraction=spec.cached_fraction,
    )
    return Job(
        name="query_execution",
        stages=(stage,),
        cached_input_bytes=spec.sample_bytes * spec.cached_fraction,
        intermediate_bytes=spec.sample_bytes * 0.05,
    )


def error_estimation_phase(spec: AQPQuerySpec, optimized: bool) -> Job:
    """The additional work of producing error bars."""
    if optimized:
        if spec.closed_form:
            # One streaming moments computation over already-cached rows.
            stage = Stage(
                name="closed_form",
                total_rows=spec.sample_rows,
                spillable=True,
            )
            intermediate = 0.0
        else:
            # Consolidated scan + pushdown: K weight cells per *filtered*
            # row, no extra input pass.
            filtered_rows = spec.sample_rows * spec.selectivity
            cells = filtered_rows * spec.bootstrap_k
            stage = Stage(
                name="bootstrap_weights",
                total_weight_cells=cells,
                spillable=True,
            )
            intermediate = cells * WEIGHT_CELL_BYTES
        return Job(
            name="error_estimation",
            stages=(stage,),
            cached_input_bytes=spec.sample_bytes * spec.cached_fraction,
            intermediate_bytes=intermediate,
        )
    partitions = _natural_partitions(spec.sample_bytes)
    if spec.closed_form:
        # Naive query-layer rewrite: one extra full pass for the moment
        # sums (the paper reports 1–2× for QSet-1 error estimation).
        num_passes = 1
        weight_cells = 0.0
    else:
        # §5.2: K separate TABLESAMPLE POISSONIZED subqueries, each a full
        # rescan with a weight drawn for every scanned row (no pushdown).
        num_passes = spec.bootstrap_k
        weight_cells = float(spec.sample_rows) * spec.bootstrap_k
    stage = Stage(
        name="rescan_subqueries",
        total_bytes=spec.sample_bytes * num_passes,
        total_rows=float(spec.sample_rows) * num_passes,
        total_weight_cells=weight_cells,
        fixed_tasks=partitions * num_passes,
        cached_fraction=spec.cached_fraction,
    )
    return Job(
        name="error_estimation",
        stages=(stage,),
        cached_input_bytes=spec.sample_bytes * spec.cached_fraction,
        intermediate_bytes=float(spec.sample_rows)
        * spec.bootstrap_k
        * WEIGHT_CELL_BYTES,
    )


def diagnostics_phase(spec: AQPQuerySpec, optimized: bool) -> Job:
    """The additional work of validating the error bars (§4, Algorithm 1)."""
    diag_bytes_total = spec.diag_p * sum(spec.diag_sizes_bytes)
    diag_rows_total = spec.rows_for_bytes(diag_bytes_total)
    resample_columns = 1 if spec.closed_form else spec.bootstrap_k
    if optimized:
        # Scan consolidation: diagnostic weight groups ride the shared
        # pass; extra work is weight generation + subsample aggregation.
        cells = diag_rows_total * resample_columns
        stage = Stage(
            name="diagnostic_weights",
            total_rows=diag_rows_total,
            total_weight_cells=cells,
            spillable=True,
        )
        return Job(
            name="diagnostics",
            stages=(stage,),
            cached_input_bytes=spec.sample_bytes * spec.cached_fraction,
            intermediate_bytes=cells * WEIGHT_CELL_BYTES,
        )
    # Naive: every subsample × resample is its own subquery task.
    subqueries_per_size = spec.diag_p * resample_columns
    stages = []
    for size_bytes in spec.diag_sizes_bytes:
        stages.append(
            Stage(
                name=f"diag_subqueries_{int(size_bytes // MB)}MB",
                total_bytes=size_bytes * subqueries_per_size,
                total_rows=spec.rows_for_bytes(size_bytes)
                * subqueries_per_size,
                fixed_tasks=subqueries_per_size,
                cached_fraction=spec.cached_fraction,
            )
        )
    return Job(
        name="diagnostics",
        stages=tuple(stages),
        cached_input_bytes=spec.sample_bytes * spec.cached_fraction,
        intermediate_bytes=diag_rows_total * WEIGHT_CELL_BYTES,
    )


def build_phases(spec: AQPQuerySpec, optimized: bool) -> QueryPhases:
    """All three phase jobs for one query."""
    return QueryPhases(
        execution=query_execution_phase(spec),
        error_estimation=error_estimation_phase(spec, optimized),
        diagnostics=diagnostics_phase(spec, optimized),
    )
