"""A calibrated per-replicate execution cost model for time budgets.

``seconds ≈ c0 + row_seconds·n + replicate_row_seconds·n·K``: a fixed
dispatch overhead, a per-row scan/aggregate term, and a per-(row ×
replicate) resampling term.  The coefficients start at conservative
defaults and are recalibrated online with an exponential moving average
from every cold execution's observed ``(rows, replicates, elapsed)``
triple — the same latency signal :mod:`repro.obs` histograms.

The model is deliberately linear: inverting it (the largest ``n`` and
``K`` that fit a budget) must be trivial and total, and a planner that
is *roughly* right about cost but honest about error is far more useful
than a precise model that sometimes cannot answer.

Persistence rides next to the benchmark baselines
(``benchmarks/results/planner_cost_model.json``, or the
``REPRO_COST_MODEL`` path): calibration learned by a bench run or a
long-lived server survives restarts, and a fresh checkout still works
from the defaults.  All persistence is best-effort — a read-only disk
must never fail a query.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

logger = logging.getLogger(__name__)

#: Environment override for the persistence path (empty/``off`` → no
#: persistence even when ``benchmarks/results`` exists).
COST_MODEL_ENV = "REPRO_COST_MODEL"

_SCHEMA = 1

#: Observations folded in before the model calls itself calibrated;
#: below this, time-bound plans stay deliberately conservative.
MIN_OBSERVATIONS = 3


def default_cost_model_path() -> Optional[Path]:
    """Where the calibrated model persists (explicit > baseline dir > off)."""
    raw = os.environ.get(COST_MODEL_ENV)
    if raw is not None:
        raw = raw.strip()
        if not raw or raw.lower() in ("off", "0", "false", "no", "disabled"):
            return None
        return Path(raw)
    baseline_dir = Path("benchmarks") / "results"
    if baseline_dir.is_dir():
        return baseline_dir / "planner_cost_model.json"
    return None


@dataclass
class CostModel:
    """Linear execution-time model, recalibrated online via EWMA."""

    c0: float = 1e-3
    row_seconds: float = 2e-7
    replicate_row_seconds: float = 2e-9
    observations: int = 0
    #: EWMA weight of a new observation (high: the workload a server
    #: actually runs beats a stale persisted calibration within a few
    #: queries).
    alpha: float = 0.3

    @property
    def calibrated(self) -> bool:
        return self.observations >= MIN_OBSERVATIONS

    def predict(self, rows: int, replicates: int) -> float:
        """Predicted wall-clock seconds for one execution."""
        rows = max(0, int(rows))
        replicates = max(0, int(replicates))
        return (
            self.c0
            + rows * self.row_seconds
            + rows * replicates * self.replicate_row_seconds
        )

    def observe(self, rows: int, replicates: int, elapsed_seconds: float) -> None:
        """Fold one completed execution into the coefficients.

        Closed-form executions (``replicates == 0``) calibrate the
        per-row term; bootstrap executions attribute the residual over
        the per-row prediction to the per-(row × replicate) term.
        """
        if rows <= 0 or elapsed_seconds <= 0:
            return
        if replicates <= 0:
            unit = max(0.0, elapsed_seconds - self.c0) / rows
            self.row_seconds = self._ewma(self.row_seconds, unit)
        else:
            residual = elapsed_seconds - self.c0 - rows * self.row_seconds
            if residual > 0:
                self.replicate_row_seconds = self._ewma(
                    self.replicate_row_seconds, residual / (rows * replicates)
                )
        self.observations += 1

    def _ewma(self, old: float, new: float) -> float:
        return (1.0 - self.alpha) * old + self.alpha * new

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["schema"] = _SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CostModel":
        if payload.get("schema") != _SCHEMA:
            return cls()
        kwargs = {
            name: payload[name]
            for name in (
                "c0",
                "row_seconds",
                "replicate_row_seconds",
                "observations",
                "alpha",
            )
            if name in payload
        }
        model = cls(**kwargs)
        if (
            model.c0 < 0
            or model.row_seconds <= 0
            or model.replicate_row_seconds <= 0
        ):
            return cls()
        return model

    @classmethod
    def load(cls, path: Optional[Path] = None) -> "CostModel":
        """Load a persisted calibration, or defaults on any failure."""
        path = path if path is not None else default_cost_model_path()
        if path is None:
            return cls()
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return cls()
        if not isinstance(payload, dict):
            return cls()
        return cls.from_dict(payload)

    def save(self, path: Optional[Path] = None) -> bool:
        """Persist the calibration; best-effort, never raises."""
        path = path if path is not None else default_cost_model_path()
        if path is None:
            return False
        try:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(path.suffix + ".tmp")
            tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
            os.replace(tmp, path)
            return True
        except OSError as exc:
            logger.debug("cost model not persisted to %s: %s", path, exc)
            return False
