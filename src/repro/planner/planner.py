"""The cost planner: turn a WITHIN contract into a (fraction, K) plan.

The planner is pure decision logic — it never executes queries itself.
The engine runs the pilot pass (a tiny :class:`_ExecutionState` over a
prefix of the shuffled sample, on a dedicated RNG stream that consumes
nothing from the engine's), summarises it into a
:class:`PilotMeasurement`, and asks the planner for a
:class:`QueryPlan`:

* **Error bounds** invert the ``width ∝ 1/√n`` law through the shared
  :func:`repro.core.error_control.required_sample_size` (the same
  formula the Figure-1 bench uses — they cannot drift) with a safety
  factor, maxed over every value the pilot produced, and pick the
  smallest catalog sample whose prefix covers the requirement.  Samples
  are stored shuffled, so any prefix is itself a uniform random sample.
* **Time budgets** invert the calibrated :class:`~repro.planner.cost
  .CostModel`, preferring rows over replicates (rows are the accuracy
  lever; K only stabilises the interval).
* When nothing fits, the planner raises
  :class:`~repro.errors.BoundUnachievableError` carrying the minimum
  bound it predicts it *could* achieve.

A failed pilot diagnostic verdict never produces a cheap plan: the
sizing law extrapolates a half-width the diagnostic just refused to
certify, so the planner falls back to the fixed-budget plan and lets
the engine's usual verdict/fallback machinery decide.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.error_control import predict_half_width, required_sample_size
from repro.errors import BoundUnachievableError, EstimationError, PlanError
from repro.planner.cost import CostModel
from repro.sampling.catalog import SampleInfo
from repro.sql.ast import WithinClause

#: Environment kill switch: ``REPRO_PLANNER=off`` reproduces the
#: pre-planner fixed-budget behaviour exactly.
PLANNER_ENV = "REPRO_PLANNER"

_PLANNER_OFF = frozenset({"off", "0", "false", "no", "disabled"})

#: Fewest bootstrap replicates a time-bound plan may choose; below this
#: the percentile interval itself is noise.
MIN_TIME_PLAN_REPLICATES = 20

#: Row-fraction ladder (of the largest candidate sample) the time-bound
#: inversion walks, largest first.
_TIME_FRACTIONS = (1.0, 0.75, 0.5, 0.35, 0.25, 0.15, 0.1, 0.05, 0.02, 0.01)


def resolve_planner_enabled(flag: Optional[bool] = None) -> bool:
    """Whether the cost planner is active (explicit > env > on)."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(PLANNER_ENV, "").strip().lower()
    return raw not in _PLANNER_OFF if raw else True


@dataclass(frozen=True)
class PilotValue:
    """One value's pilot estimate: what the sizing law extrapolates."""

    name: str
    estimate: float
    half_width: Optional[float]
    trusted: bool = True


@dataclass(frozen=True)
class PilotMeasurement:
    """Summary of one pilot pass the engine ran for the planner."""

    rows: int
    elapsed_seconds: float
    verdict_ok: bool
    values: tuple[PilotValue, ...]


@dataclass(frozen=True)
class QueryPlan:
    """A planner decision: execute at exactly this cost.

    Attributes:
        bound_kind: ``"relative"``, ``"absolute"``, or ``"time"``.
        target: the requested bound value.
        confidence: interval coverage the bound is stated at.
        sample_name: catalog sample the plan executes on.
        chosen_rows: prefix length of that sample to execute over.
        chosen_fraction: ``chosen_rows / dataset_rows``.
        replicates: bootstrap K to run, or ``None`` for the engine
            default (closed-form plans record 0 — no replicates run).
        pilot_rows: pilot prefix length, or ``None`` (time bounds plan
            from the cost model alone).
        predicted_bound: the bound value the plan predicts it achieves
            (relative error, half-width, or seconds, per ``bound_kind``).
        verdict_ok: the pilot's diagnostic verdict, when one ran.
        reason: how the plan was chosen — ``"pilot"``, ``"cost_model"``,
            or a fixed-budget fallback explanation.
    """

    bound_kind: str
    target: float
    confidence: float
    sample_name: str
    chosen_rows: int
    chosen_fraction: float
    replicates: Optional[int]
    pilot_rows: Optional[int] = None
    predicted_bound: Optional[float] = None
    verdict_ok: Optional[bool] = None
    reason: str = "pilot"

    @property
    def fixed_budget(self) -> bool:
        """Whether the planner declined to cut cost (full-budget plan)."""
        return self.reason not in ("pilot", "cost_model")

    def summary(self) -> str:
        """The EXPLAIN one-liner: ``pilot n=…, chosen fraction=…, K=…``."""
        pilot = "-" if self.pilot_rows is None else str(self.pilot_rows)
        replicates = (
            "default" if self.replicates is None else str(self.replicates)
        )
        text = (
            f"pilot n={pilot}, chosen fraction={self.chosen_fraction:.4f}, "
            f"K={replicates}"
        )
        if self.fixed_budget:
            text += f" [fixed budget: {self.reason}]"
        return text


class CostPlanner:
    """Chooses the minimal (sample fraction, K) meeting a WITHIN bound."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        safety_factor: float = 1.2,
        pilot_fraction: float = 0.05,
        min_pilot_rows: int = 200,
        max_pilot_rows: int = 2000,
        pilot_replicates: int = 30,
    ):
        if safety_factor < 1.0:
            raise PlanError(
                f"safety factor must be >= 1, got {safety_factor}"
            )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.safety_factor = safety_factor
        self.pilot_fraction = pilot_fraction
        self.min_pilot_rows = min_pilot_rows
        self.max_pilot_rows = max_pilot_rows
        self.pilot_replicates = pilot_replicates

    def pilot_rows(self, sample_rows: int) -> int:
        """Pilot prefix length for a sample of ``sample_rows`` rows."""
        sized = int(sample_rows * self.pilot_fraction)
        sized = max(self.min_pilot_rows, min(sized, self.max_pilot_rows))
        return max(1, min(sample_rows, sized))

    # -- error bounds ------------------------------------------------------
    def plan_from_pilot(
        self,
        within: WithinClause,
        confidence: float,
        pilot: PilotMeasurement,
        candidates: Sequence[SampleInfo],
        closed_form: bool,
        default_replicates: int,
    ) -> QueryPlan:
        """Size the final run from a pilot pass (relative/absolute bound).

        Raises:
            BoundUnachievableError: when even the largest candidate
                sample cannot meet the bound.
        """
        if not candidates:
            raise PlanError("planner needs at least one candidate sample")
        largest = max(candidates, key=lambda info: info.rows)
        kind = within.kind
        target = within.bound_value

        def fixed(reason: str) -> QueryPlan:
            return self._fixed_budget_plan(
                within, confidence, largest, closed_form,
                default_replicates, pilot, reason,
            )

        if not pilot.verdict_ok:
            return fixed("pilot verdict failed")
        needs: list[tuple[int, PilotValue]] = []
        for value in pilot.values:
            if not value.trusted or value.half_width is None:
                return fixed(
                    f"pilot produced no trusted interval for "
                    f"{value.name!r}"
                )
            try:
                if kind == "relative":
                    needed = required_sample_size(
                        value.half_width, value.estimate, pilot.rows, target
                    )
                else:
                    # Absolute bound: width(n) ≤ target directly.  The
                    # shared inversion solves width(n) = target·|est|,
                    # so a unit estimate turns the target into an
                    # absolute half-width.
                    needed = required_sample_size(
                        value.half_width, 1.0, pilot.rows, target
                    )
            except EstimationError as exc:
                return fixed(f"pilot not sizeable: {exc}")
            needs.append((needed, value))
        needs.sort(key=lambda pair: pair[0])
        # Many-value (grouped) queries size to the 90th-percentile
        # requirement, not the max: a rare group holds only a handful of
        # pilot rows, so its extrapolation is noise-dominated and would
        # force spurious full-budget plans (or refusals).  Tail groups
        # stay protected by the per-value bound gate, sample escalation,
        # and the exact fallback — the contract holds for every value;
        # only the *cost* is sized to the bulk.
        index = len(needs) - 1
        if len(needs) > 4:
            index = int(math.ceil(0.9 * len(needs))) - 1
        required, worst = needs[index]
        required = max(
            pilot.rows, int(math.ceil(required * self.safety_factor))
        )
        fitting = sorted(
            (info for info in candidates if info.rows >= required),
            key=lambda info: info.rows,
        )
        if not fitting:
            achievable = self._achievable_bound(
                within, pilot, largest.rows, worst
            )
            raise BoundUnachievableError(
                f"requested {kind} bound {target:g} needs ~{required} "
                f"sample rows but the largest sample "
                f"({largest.name!r}) has {largest.rows}; minimum "
                f"achievable bound is ~{achievable:.4g}",
                kind=kind,
                requested=target,
                achievable=achievable,
            )
        chosen = fitting[0]
        chosen_rows = min(required, chosen.rows)
        predicted = None
        if worst is not None and worst.half_width is not None:
            width = predict_half_width(
                worst.half_width, pilot.rows, chosen_rows
            )
            predicted = (
                width / abs(worst.estimate)
                if kind == "relative" and worst.estimate != 0
                else width
            )
        return QueryPlan(
            bound_kind=kind,
            target=target,
            confidence=confidence,
            sample_name=chosen.name,
            chosen_rows=chosen_rows,
            chosen_fraction=chosen_rows / max(1, chosen.dataset_rows),
            replicates=0 if closed_form else default_replicates,
            pilot_rows=pilot.rows,
            predicted_bound=predicted,
            verdict_ok=pilot.verdict_ok,
            reason="pilot",
        )

    def _achievable_bound(
        self,
        within: WithinClause,
        pilot: PilotMeasurement,
        max_rows: int,
        worst: Optional[PilotValue],
    ) -> float:
        """The smallest bound feasible at ``max_rows``, safety included.

        Extrapolated from the same (quantile-selected) value the
        requirement came from, so the reported achievable bound matches
        the sizing rule that refused.
        """
        achievable = 0.0
        values = (worst,) if worst is not None else pilot.values
        for value in values:
            if value is None or value.half_width is None:
                continue
            width = value.half_width * math.sqrt(
                self.safety_factor * pilot.rows / max(1, max_rows)
            )
            if within.kind == "relative":
                if value.estimate == 0:
                    continue
                width = width / abs(value.estimate)
            achievable = max(achievable, width)
        return achievable

    def _fixed_budget_plan(
        self,
        within: WithinClause,
        confidence: float,
        info: SampleInfo,
        closed_form: bool,
        default_replicates: int,
        pilot: Optional[PilotMeasurement],
        reason: str,
    ) -> QueryPlan:
        """The "planner declines" plan: full sample, default K."""
        return QueryPlan(
            bound_kind=within.kind,
            target=within.bound_value,
            confidence=confidence,
            sample_name=info.name,
            chosen_rows=info.rows,
            chosen_fraction=info.rows / max(1, info.dataset_rows),
            replicates=None,
            pilot_rows=pilot.rows if pilot is not None else None,
            verdict_ok=pilot.verdict_ok if pilot is not None else None,
            reason=reason,
        )

    # -- time budgets ------------------------------------------------------
    def plan_for_time(
        self,
        within: WithinClause,
        confidence: float,
        candidates: Sequence[SampleInfo],
        closed_form: bool,
        default_replicates: int,
    ) -> QueryPlan:
        """Largest (rows, K) the cost model predicts fits the budget.

        Rows are preferred over replicates: sample size drives the
        half-width, K only stabilises the interval estimate.

        Raises:
            BoundUnachievableError: when even the minimum viable plan
                is predicted to blow the budget.
        """
        if not candidates:
            raise PlanError("planner needs at least one candidate sample")
        budget = float(within.time_budget_seconds)
        largest = max(candidates, key=lambda info: info.rows)
        if closed_form:
            replicate_ladder = [0]
        else:
            replicate_ladder = sorted(
                {
                    default_replicates,
                    max(MIN_TIME_PLAN_REPLICATES, default_replicates * 3 // 4),
                    max(MIN_TIME_PLAN_REPLICATES, default_replicates // 2),
                    max(MIN_TIME_PLAN_REPLICATES, default_replicates // 4),
                    MIN_TIME_PLAN_REPLICATES,
                },
                reverse=True,
            )
        min_rows = min(largest.rows, max(100, int(largest.rows * 0.01)))
        for fraction in _TIME_FRACTIONS:
            rows = max(min_rows, int(largest.rows * fraction))
            for replicates in replicate_ladder:
                if self.cost_model.predict(rows, replicates) <= budget:
                    chosen = self._smallest_covering(candidates, rows)
                    return QueryPlan(
                        bound_kind="time",
                        target=budget,
                        confidence=confidence,
                        sample_name=chosen.name,
                        chosen_rows=min(rows, chosen.rows),
                        chosen_fraction=(
                            min(rows, chosen.rows)
                            / max(1, chosen.dataset_rows)
                        ),
                        replicates=replicates if not closed_form else 0,
                        predicted_bound=self.cost_model.predict(
                            rows, replicates
                        ),
                        reason="cost_model",
                    )
        floor_replicates = 0 if closed_form else MIN_TIME_PLAN_REPLICATES
        achievable = self.cost_model.predict(min_rows, floor_replicates)
        raise BoundUnachievableError(
            f"time budget {budget:g}s is below the predicted cost "
            f"{achievable:.4g}s of the minimum viable plan "
            f"({min_rows} rows, K={floor_replicates})",
            kind="time",
            requested=budget,
            achievable=achievable,
        )

    @staticmethod
    def _smallest_covering(
        candidates: Sequence[SampleInfo], rows: int
    ) -> SampleInfo:
        fitting = sorted(
            (info for info in candidates if info.rows >= rows),
            key=lambda info: info.rows,
        )
        if fitting:
            return fitting[0]
        return max(candidates, key=lambda info: info.rows)
