"""Pilot-based bounded-error / bounded-time query planning.

The engine's default contract is fixed-budget: run on the selected
sample at the configured replicate count K and *report* the resulting
error.  The planner inverts that: given a ``... WITHIN 2% AT 95%
CONFIDENCE`` (or ``... WITHIN 500ms``) contract, it chooses the
*minimal* sample fraction and K predicted to meet the bound, so
execution costs exactly what the accuracy target requires.

* Error bounds run a cheap deterministic **pilot pass** over a prefix
  of the (shuffled) sample, feed the observed half-widths into
  :func:`repro.core.error_control.required_sample_size`, and pick the
  smallest prefix that meets the requested half-width.
* Time budgets invert a calibrated per-replicate :class:`CostModel`
  (learned online from observed latencies, persisted next to the BENCH
  baselines) to pick the largest fraction/K that fits.
* When no plan fits, the planner refuses with a typed
  :class:`~repro.errors.BoundUnachievableError` carrying the minimum
  achievable bound — an honest "no" instead of a silently missed "yes".
"""

from repro.planner.cost import (
    COST_MODEL_ENV,
    CostModel,
    default_cost_model_path,
)
from repro.planner.planner import (
    PLANNER_ENV,
    CostPlanner,
    PilotMeasurement,
    PilotValue,
    QueryPlan,
    resolve_planner_enabled,
)

__all__ = [
    "COST_MODEL_ENV",
    "CostModel",
    "CostPlanner",
    "PLANNER_ENV",
    "PilotMeasurement",
    "PilotValue",
    "QueryPlan",
    "default_cost_model_path",
    "resolve_planner_enabled",
]
