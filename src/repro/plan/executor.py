"""Plan execution: an exact SQL executor and costed plan runners.

Two execution services live here:

* :class:`QueryExecutor` — exact, vectorised execution of an analyzed
  query over a table (filters, projections, GROUP BY/HAVING, ORDER
  BY/LIMIT, one level of FROM-subquery nesting).  Used for ground truth,
  for the exact fallback when the diagnostic rejects a query, and as the
  black-box θ for bootstrap over nested queries.

* :class:`PlanRunner` — executes a logical plan tree against the sample
  catalog while recording a :class:`CostProfile` (input passes, rows and
  bytes scanned, weight cells generated, subqueries launched).  The cost
  profile is what the cluster simulator prices, so the naive §5.2 plan
  and the consolidated §5.3 plan produce honestly different costs from
  the *same* code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.ci import ConfidenceInterval, interval_from_distribution
from repro.engine.aggregates import GroupIndex
from repro.engine.evaluator import ExpressionEvaluator
from repro.engine.table import Table
from repro.errors import ExecutionError, PlanError
from repro.governor.cancel import check_cancelled
from repro.obs.trace import trace_span
from repro.plan.logical import (
    LogicalAggregate,
    LogicalBootstrapSummary,
    LogicalDiagnostic,
    LogicalFilter,
    LogicalPlan,
    LogicalProject,
    LogicalResample,
    LogicalScan,
    LogicalUnionAll,
)
from repro.sampling.catalog import SampleCatalog
from repro.sampling.poisson import poisson_weight_matrix
from repro.sql import ast
from repro.sql.analyzer import AnalyzedQuery, analyze
from repro.sql.functions import FunctionRegistry, default_function_registry


# ---------------------------------------------------------------------------
# Exact query execution
# ---------------------------------------------------------------------------
class QueryExecutor:
    """Exact execution of analyzed queries over in-memory tables."""

    def __init__(self, registry: FunctionRegistry | None = None):
        self.registry = registry or default_function_registry()
        self._evaluator = ExpressionEvaluator(self.registry)

    # -- public API -----------------------------------------------------------
    def execute(self, query: AnalyzedQuery, table: Table) -> Table:
        """Run ``query`` exactly on ``table`` and return the result table."""
        # The exact fallback over the full base table is often a query's
        # single longest stage, so each physical operator boundary is a
        # cooperative cancellation checkpoint (free with no token).
        with trace_span("executor.execute", rows=table.num_rows):
            check_cancelled()
            working = self._apply_inner(query, table)
            if query.where is not None:
                with trace_span("executor.filter"):
                    check_cancelled()
                    mask = self._predicate(query.where, working)
                    working = working.filter(mask)
            if query.is_aggregate_query:
                with trace_span("executor.aggregate"):
                    check_cancelled()
                    result = self._aggregate(query, working)
            else:
                with trace_span("executor.project"):
                    check_cancelled()
                    result = self._project(query, working)
            result = self._order_and_limit(query, result)
            return result

    def scalar(self, query: AnalyzedQuery, table: Table) -> float:
        """Run a single-aggregate query and return its one value.

        This is the θ of the theory sections: a query returning a single
        real number.
        """
        result = self.execute(query, table)
        if result.num_rows != 1 or len(result.column_names) != 1:
            raise ExecutionError(
                "scalar() requires a query returning exactly one value; got "
                f"{result.num_rows} rows × {len(result.column_names)} columns"
            )
        return float(result.column(result.column_names[0])[0])

    # -- stages ---------------------------------------------------------------
    def _apply_inner(self, query: AnalyzedQuery, table: Table) -> Table:
        if query.inner is None:
            return table
        return self.execute(query.inner, table)

    def _predicate(self, expr: ast.Expression, table: Table) -> np.ndarray:
        mask = self._evaluator.evaluate(expr, table)
        return mask if mask.dtype == np.bool_ else mask.astype(bool)

    def _project(self, query: AnalyzedQuery, table: Table) -> Table:
        columns: dict[str, np.ndarray] = {}
        for ordinal, item in enumerate(query.plain_items):
            if isinstance(item.expression, ast.Star):
                columns.update(table.columns())
                continue
            name = item.output_name(ordinal)
            columns[name] = self._evaluator.evaluate(item.expression, table)
        if not columns:
            raise ExecutionError("query projects no columns")
        return Table(columns)

    def _aggregate_one(
        self, spec, table: Table
    ) -> float:
        if spec.argument is None:
            values = np.ones(table.num_rows, dtype=np.float64)
        else:
            values = self._evaluator.evaluate(spec.argument, table)
        return spec.function.compute(values)

    def _aggregate(self, query: AnalyzedQuery, table: Table) -> Table:
        if not query.group_by:
            columns = {
                spec.output_name: np.array([self._aggregate_one(spec, table)])
                for spec in query.aggregates
            }
            return Table(columns)
        return self._grouped_aggregate(query, table)

    def _grouped_aggregate(self, query: AnalyzedQuery, table: Table) -> Table:
        key_arrays = [
            self._evaluator.evaluate(expr, table) for expr in query.group_by
        ]
        group_ids, group_keys = _group_rows(key_arrays)
        num_groups = len(group_keys[0])
        index = GroupIndex.from_ids(group_ids, num_groups)

        columns: dict[str, np.ndarray] = {}
        for name, keys in zip(query.group_by_names, group_keys):
            columns[name] = keys

        # Aggregate arguments are row-wise expressions, so each is
        # evaluated once over the whole table and reduced segment-wise —
        # one pass per spec instead of one filtered sub-table per group.
        aggregate_values: dict[str, np.ndarray] = {}
        having_specs = self._having_aggregates(query)
        all_specs = list(query.aggregates) + having_specs
        for spec in all_specs:
            if spec.argument is None:
                values = np.ones(table.num_rows, dtype=np.float64)
            else:
                values = self._evaluator.evaluate(spec.argument, table)
            aggregate_values[spec.output_name] = spec.function.compute_grouped(
                values, index
            )

        for spec in query.aggregates:
            columns[spec.output_name] = aggregate_values[spec.output_name]
        result = Table(columns)

        if query.having is not None:
            having_table = result
            for spec in having_specs:
                having_table = having_table.with_column(
                    spec.output_name, aggregate_values[spec.output_name]
                )
            substituted = _substitute_aggregates(query.having)
            mask = self._predicate(substituted, having_table)
            result = result.filter(mask)
        return result

    def _having_aggregates(self, query: AnalyzedQuery) -> list:
        """Hidden aggregate specs for every aggregate call in HAVING.

        Each distinct call gets its own hidden output column (named from
        its SQL rendering) that the rewritten HAVING expression
        references, independent of the select list.
        """
        if query.having is None:
            return []
        from repro.sql.analyzer import _make_aggregate_spec  # shared helper

        seen: set[str] = set()
        specs = []
        for node in ast.walk(query.having):
            if isinstance(node, ast.FunctionCall) and self.registry.is_aggregate(
                node.name
            ):
                rendered = node.to_sql()
                if rendered in seen:
                    continue
                seen.add(rendered)
                spec = _make_aggregate_spec(
                    node,
                    _hidden_name(node),
                    self.registry,
                    set(query.referenced_columns) | {"*"},
                )
                specs.append(spec)
        return specs

    def _order_and_limit(self, query: AnalyzedQuery, result: Table) -> Table:
        statement = query.statement
        if statement.order_by:
            keys = []
            for item in reversed(statement.order_by):
                if isinstance(item.expression, ast.ColumnRef):
                    column = result.column(item.expression.name)
                else:
                    column = self._evaluator.evaluate(item.expression, result)
                keys.append((column, item.ascending))
            order = np.arange(result.num_rows)
            for column, ascending in keys:
                stable = np.argsort(column[order], kind="stable")
                if not ascending:
                    stable = stable[::-1]
                order = order[stable]
            result = result.take(order)
        if statement.limit is not None:
            result = result.head(statement.limit)
        return result


#: Mixed-radix codes must stay below this bound to avoid int64 overflow.
_GROUP_CODE_LIMIT = 2**62


def _group_rows(key_arrays: list[np.ndarray]) -> tuple[np.ndarray, list[np.ndarray]]:
    """Assign group ids and return (ids, per-key representative values).

    Groups are numbered in lexicographic order of their (factorised) key
    tuples.  Multi-key factorisation uses mixed-radix encoding of the
    per-key inverse indices — one ``np.unique`` per key plus one over
    the combined int64 codes, with no string/object composite round-trip
    and no per-group scan for representatives.  When the product of the
    per-key cardinalities cannot fit an int64 code, a lexsort over the
    inverse-index columns takes over (same ordering, no overflow).
    """
    if len(key_arrays) == 1:
        uniques, ids = np.unique(key_arrays[0], return_inverse=True)
        return ids.astype(np.int64, copy=False), [uniques]
    num_rows = len(key_arrays[0])
    if num_rows == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, [np.asarray(arr)[empty] for arr in key_arrays]
    factored = [np.unique(arr, return_inverse=True) for arr in key_arrays]
    id_columns = [ids.astype(np.int64, copy=False) for __, ids in factored]
    radices = [max(len(uniques), 1) for uniques, __ in factored]
    code_span = 1
    for radix in radices:
        code_span *= radix
        if code_span > _GROUP_CODE_LIMIT:
            break
    if code_span <= _GROUP_CODE_LIMIT:
        codes = np.zeros(num_rows, dtype=np.int64)
        for ids, radix in zip(id_columns, radices):
            codes = codes * radix + ids
        __, first_rows, group_ids = np.unique(
            codes, return_index=True, return_inverse=True
        )
    else:
        # Primary sort key is the first GROUP BY expression; np.lexsort
        # treats its *last* key as primary.
        order = np.lexsort(tuple(reversed(id_columns)))
        stacked = np.column_stack(id_columns)[order]
        new_group = np.empty(num_rows, dtype=bool)
        new_group[0] = True
        new_group[1:] = (stacked[1:] != stacked[:-1]).any(axis=1)
        sorted_ids = np.cumsum(new_group) - 1
        group_ids = np.empty(num_rows, dtype=np.int64)
        group_ids[order] = sorted_ids
        first_rows = order[np.flatnonzero(new_group)]
    representatives = [
        np.asarray(arr)[first_rows] for arr in key_arrays
    ]
    return group_ids.astype(np.int64, copy=False), representatives


def _hidden_name(call: ast.FunctionCall) -> str:
    """Stable hidden column name for an aggregate call in HAVING."""
    digest = 0
    for ch in call.to_sql():
        digest = (digest * 131 + ord(ch)) % 10**8
    return f"_having_{digest}"


def _substitute_aggregates(expr: ast.Expression) -> ast.Expression:
    """Replace aggregate calls in an expression with column references.

    The per-group aggregate values are materialised as columns named
    either by the select-list alias convention or the hidden-name
    convention; HAVING expressions are rewritten to reference them.
    """
    if isinstance(expr, ast.FunctionCall):
        return ast.ColumnRef(_hidden_name(expr))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _substitute_aggregates(expr.left),
            _substitute_aggregates(expr.right),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _substitute_aggregates(expr.operand))
    return expr


# ---------------------------------------------------------------------------
# Costed plan running
# ---------------------------------------------------------------------------
@dataclass
class CostProfile:
    """Work performed while running a logical plan.

    The cluster simulator prices these quantities; they are the honest
    output of actually executing the plan, not estimates.

    Attributes:
        input_passes: number of Scan executions (cursor passes).
        rows_scanned: total rows streamed out of scans.
        bytes_scanned: total bytes streamed out of scans.
        rows_after_filters: rows reaching the (weighted) aggregates.
        weight_cells: Poisson weights generated (rows × columns).
        weight_columns: total weight columns generated.
        subqueries: aggregate evaluations performed (resamples count
            individually — the paper's "hundreds of bootstrap queries").
    """

    input_passes: int = 0
    rows_scanned: int = 0
    bytes_scanned: int = 0
    rows_after_filters: int = 0
    weight_cells: int = 0
    weight_columns: int = 0
    subqueries: int = 0

    def merge(self, other: "CostProfile") -> None:
        self.input_passes += other.input_passes
        self.rows_scanned += other.rows_scanned
        self.bytes_scanned += other.bytes_scanned
        self.rows_after_filters += other.rows_after_filters
        self.weight_cells += other.weight_cells
        self.weight_columns += other.weight_columns
        self.subqueries += other.subqueries


@dataclass
class RunResult:
    """Output of running an error-estimation plan.

    Attributes:
        estimates: output-name → point estimate θ(S) (unscaled sample
            statistics; the pipeline applies |D|/|S| scaling).
        resample_distributions: output-name → K replicate values.
        intervals: output-name → bootstrap interval, present when the
            plan contained a BootstrapSummary operator.
        cost: the cost profile accumulated during the run.
    """

    estimates: dict[str, float] = field(default_factory=dict)
    resample_distributions: dict[str, np.ndarray] = field(default_factory=dict)
    intervals: dict[str, ConfidenceInterval] = field(default_factory=dict)
    cost: CostProfile = field(default_factory=CostProfile)


@dataclass
class _StreamState:
    """What flows between plan operators: tuples plus optional weights."""

    table: Table
    weights: Optional[np.ndarray] = None


class PlanRunner:
    """Executes logical plans against a catalog, recording costs."""

    def __init__(
        self,
        catalog: SampleCatalog,
        registry: FunctionRegistry | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.catalog = catalog
        self.registry = registry or default_function_registry()
        self._evaluator = ExpressionEvaluator(self.registry)
        self._rng = rng or np.random.default_rng()

    def run(self, plan: LogicalPlan) -> RunResult:
        """Execute ``plan`` and return results plus the cost profile."""
        result = RunResult()
        self._run_node(plan, result)
        return result

    # -- node dispatch -----------------------------------------------------
    def _run_node(self, plan: LogicalPlan, result: RunResult):
        if isinstance(plan, LogicalDiagnostic):
            # The diagnostic operator consumes resample aggregates computed
            # by the pipeline layer; at plan level it is a pass-through.
            return self._run_node(plan.child, result)
        if isinstance(plan, LogicalBootstrapSummary):
            self._run_node(plan.child, result)
            for name, distribution in result.resample_distributions.items():
                center = result.estimates.get(name)
                if center is None or len(distribution) < 2:
                    continue
                result.intervals[name] = interval_from_distribution(
                    distribution, center, plan.confidence, "bootstrap"
                )
            return None
        if isinstance(plan, LogicalUnionAll):
            for subplan in plan.subplans:
                self._run_node(subplan, result)
            return None
        if isinstance(plan, LogicalAggregate):
            state = self._run_stream(plan.child, result)
            self._run_aggregate(plan, state, result)
            return None
        raise PlanError(
            f"cannot run plan rooted at {type(plan).__name__}"
        )

    def _run_stream(self, plan: LogicalPlan, result: RunResult) -> _StreamState:
        if isinstance(plan, LogicalScan):
            if plan.sample_name is not None:
                __, table = self.catalog.sample(
                    plan.table_name, plan.sample_name
                )
            else:
                table = self.catalog.table(plan.table_name)
            result.cost.input_passes += 1
            result.cost.rows_scanned += table.num_rows
            result.cost.bytes_scanned += table.estimated_bytes()
            return _StreamState(table=table)
        if isinstance(plan, LogicalFilter):
            state = self._run_stream(plan.child, result)
            mask = self._evaluator.evaluate(plan.predicate, state.table)
            mask = mask if mask.dtype == np.bool_ else mask.astype(bool)
            weights = (
                state.weights[mask] if state.weights is not None else None
            )
            return _StreamState(table=state.table.filter(mask), weights=weights)
        if isinstance(plan, LogicalProject):
            state = self._run_stream(plan.child, result)
            columns = {}
            for ordinal, item in enumerate(plan.items):
                if isinstance(item.expression, ast.Star):
                    columns.update(state.table.columns())
                    continue
                columns[item.output_name(ordinal)] = self._evaluator.evaluate(
                    item.expression, state.table
                )
            return _StreamState(table=Table(columns), weights=state.weights)
        if isinstance(plan, LogicalResample):
            state = self._run_stream(plan.child, result)
            columns = plan.spec.total_weight_columns
            weights = poisson_weight_matrix(
                state.table.num_rows,
                columns,
                self._rng,
                rate=plan.spec.rate,
                dtype=np.int32,
            )
            result.cost.weight_cells += weights.size
            result.cost.weight_columns += columns
            return _StreamState(table=state.table, weights=weights)
        raise PlanError(
            f"operator {type(plan).__name__} cannot appear mid-stream"
        )

    def _run_aggregate(
        self,
        plan: LogicalAggregate,
        state: _StreamState,
        result: RunResult,
    ) -> None:
        query = plan.query
        if query.group_by:
            raise PlanError(
                "PlanRunner handles single-group aggregate plans; GROUP BY "
                "queries are decomposed per group by the pipeline"
            )
        result.cost.rows_after_filters += state.table.num_rows
        for spec in query.aggregates:
            if spec.argument is None:
                values = np.ones(state.table.num_rows, dtype=np.float64)
            else:
                values = self._evaluator.evaluate(spec.argument, state.table)
            if plan.weighted and state.weights is not None:
                replicates = spec.function.compute_resamples(
                    values, state.weights
                )
                result.cost.subqueries += state.weights.shape[1]
                existing = result.resample_distributions.get(spec.output_name)
                if existing is None:
                    result.resample_distributions[spec.output_name] = replicates
                else:
                    result.resample_distributions[spec.output_name] = (
                        np.concatenate([existing, replicates])
                    )
                # The plain answer rides along in the same pass: computing
                # θ(S) on the already-streamed values is free relative to
                # another scan, and BootstrapSummary needs the center.
                if spec.output_name not in result.estimates:
                    result.estimates[spec.output_name] = spec.function.compute(
                        values
                    )
            else:
                result.estimates[spec.output_name] = spec.function.compute(
                    values
                )
                result.cost.subqueries += 1


def analyze_sql(
    sql: str,
    table: Table,
    registry: FunctionRegistry | None = None,
) -> AnalyzedQuery:
    """Parse + analyze SQL text against a table's schema (convenience)."""
    from repro.sql.parser import parse_select

    return analyze(parse_select(sql), table.schema, registry)
