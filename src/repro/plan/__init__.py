"""Query planning: logical plans, the §5.3 rewriter, and execution.

The pipeline of Fig. 5 compiles a query into a logical plan with three
parts — the approximate answer θ(S), the error estimate ξ̂, and the
diagnostic — then optimises the plan (scan consolidation, resampling
operator pushdown) before physical execution.

* :mod:`repro.plan.logical` — operator tree, plus builders for the plain
  plan, the naive §5.2 UNION-ALL error plan, and the un-optimised
  resample-after-scan plan.
* :mod:`repro.plan.rewriter` — the logical plan rewriter (§5.3).
* :mod:`repro.plan.executor` — exact SQL execution and plan runners that
  record the cost profile (passes, rows, subqueries) consumed by the
  cluster simulator.
"""

from repro.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalPlan,
    LogicalProject,
    LogicalResample,
    LogicalScan,
    LogicalUnionAll,
    ResampleSpec,
    build_error_estimation_plan,
    build_naive_error_plan,
    build_plain_plan,
    explain,
)
from repro.plan.rewriter import RewriteReport, rewrite_plan
from repro.plan.executor import (
    CostProfile,
    PlanRunner,
    QueryExecutor,
)

__all__ = [
    "LogicalAggregate",
    "LogicalFilter",
    "LogicalPlan",
    "LogicalProject",
    "LogicalResample",
    "LogicalScan",
    "LogicalUnionAll",
    "ResampleSpec",
    "build_error_estimation_plan",
    "build_naive_error_plan",
    "build_plain_plan",
    "explain",
    "RewriteReport",
    "rewrite_plan",
    "CostProfile",
    "PlanRunner",
    "QueryExecutor",
]
