"""Logical plan operators and plan builders.

A logical plan is a tree of frozen dataclass nodes.  Three builders
produce the plan shapes the paper discusses:

* :func:`build_plain_plan` — ordinary execution of the query on a table
  (no resampling): Scan → Filter → Aggregate.
* :func:`build_naive_error_plan` — the §5.2 baseline: the query rewritten
  as a UNION ALL of K independent subqueries, each carrying its own
  ``TABLESAMPLE POISSONIZED`` operator, plus one subquery for the plain
  answer.  Every subquery rescans the sample.
* :func:`build_error_estimation_plan` — a single consolidated plan with
  one Resample operator carrying *all* bootstrap and diagnostic weight
  columns.  As built, the Resample operator sits immediately above the
  scan (the "ideal" position of Fig. 6(b) left); the rewriter then pushes
  it past the pass-through prefix (§5.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import PlanError
from repro.sql import ast
from repro.sql.analyzer import AnalyzedQuery


class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        child = getattr(self, "child", None)
        return (child,) if child is not None else ()

    def label(self) -> str:
        """One-line description used by :func:`explain`."""
        return type(self).__name__.removeprefix("Logical")


@dataclass(frozen=True)
class LogicalScan(LogicalPlan):
    """Scan a base table or a named sample of it."""

    table_name: str
    sample_name: Optional[str] = None

    def label(self) -> str:
        if self.sample_name:
            return f"Scan({self.table_name} sample={self.sample_name})"
        return f"Scan({self.table_name})"


@dataclass(frozen=True)
class LogicalFilter(LogicalPlan):
    """Apply a WHERE predicate."""

    child: LogicalPlan
    predicate: ast.Expression

    def label(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass(frozen=True)
class LogicalProject(LogicalPlan):
    """Row-wise projection of expressions (pass-through operator)."""

    child: LogicalPlan
    items: tuple[ast.SelectItem, ...]

    def label(self) -> str:
        rendered = ", ".join(item.to_sql() for item in self.items)
        return f"Project({rendered})"


@dataclass(frozen=True)
class ResampleSpec:
    """What weight columns a Resample operator must generate.

    Attributes:
        bootstrap_columns: K weight columns for bootstrap error estimation
            (``S_1 .. S_K`` in Fig. 6(a)).
        diagnostic_groups: ``(subsample_rows, num_subsamples, columns)``
            triples — for each diagnostic subsample size, how many
            subsamples and how many per-subsample resampling columns
            (``D_a1..``, ``D_b1..``, ``D_c1..`` in Fig. 6(a); columns is 0
            for closed-form ξ, which needs no resampling weights).
        rate: Poisson rate (1.0 for the ordinary bootstrap).
    """

    bootstrap_columns: int = 0
    diagnostic_groups: tuple[tuple[int, int, int], ...] = ()
    rate: float = 1.0

    @property
    def total_weight_columns(self) -> int:
        diag = sum(p * columns for __, p, columns in self.diagnostic_groups)
        return self.bootstrap_columns + diag


@dataclass(frozen=True)
class LogicalResample(LogicalPlan):
    """The Poissonized resampling operator (§5.2 / §5.3.1)."""

    child: LogicalPlan
    spec: ResampleSpec

    def label(self) -> str:
        parts = [f"bootstrap={self.spec.bootstrap_columns}"]
        if self.spec.diagnostic_groups:
            groups = ",".join(
                f"{rows}x{p}x{cols}"
                for rows, p, cols in self.spec.diagnostic_groups
            )
            parts.append(f"diagnostics=[{groups}]")
        return f"PoissonizedResample({' '.join(parts)})"


@dataclass(frozen=True)
class LogicalAggregate(LogicalPlan):
    """Compute the query's aggregates, optionally over weighted tuples."""

    child: LogicalPlan
    query: AnalyzedQuery
    weighted: bool = False

    def label(self) -> str:
        names = ", ".join(
            spec.function.name for spec in self.query.aggregates
        )
        suffix = " weighted" if self.weighted else ""
        group = (
            f" group_by={list(self.query.group_by_names)}"
            if self.query.group_by
            else ""
        )
        return f"Aggregate({names}{suffix}{group})"


@dataclass(frozen=True)
class LogicalBootstrapSummary(LogicalPlan):
    """Turn per-resample aggregates into a confidence interval (§5.3.1)."""

    child: LogicalPlan
    confidence: float = 0.95

    def label(self) -> str:
        return f"BootstrapSummary(confidence={self.confidence})"


@dataclass(frozen=True)
class LogicalDiagnostic(LogicalPlan):
    """Validate error estimation via the Kleiner diagnostic (§5.3.1)."""

    child: LogicalPlan
    estimator_name: str = "bootstrap"

    def label(self) -> str:
        return f"Diagnostic(estimator={self.estimator_name})"


@dataclass(frozen=True)
class LogicalUnionAll(LogicalPlan):
    """UNION ALL of independent subplans (the §5.2 baseline shape)."""

    subplans: tuple[LogicalPlan, ...] = field(default_factory=tuple)

    def children(self) -> tuple[LogicalPlan, ...]:
        return self.subplans

    def label(self) -> str:
        return f"UnionAll({len(self.subplans)} subqueries)"


Plan = Union[LogicalPlan]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def _source_chain(
    query: AnalyzedQuery, sample_name: Optional[str]
) -> LogicalPlan:
    """Scan → (inner query operators) → Filter for the outer WHERE."""
    plan: LogicalPlan = LogicalScan(query.source_table, sample_name)
    if query.inner is not None:
        inner = query.inner
        if inner.is_aggregate_query:
            raise PlanError(
                "nested aggregation cannot be planned as a pass-through "
                "chain; use the black-box execution path"
            )
        if inner.where is not None:
            plan = LogicalFilter(plan, inner.where)
        if inner.plain_items:
            plan = LogicalProject(plan, inner.plain_items)
    if query.where is not None:
        plan = LogicalFilter(plan, query.where)
    return plan


def build_plain_plan(
    query: AnalyzedQuery, sample_name: Optional[str] = None
) -> LogicalPlan:
    """The query itself, with no error estimation: Scan→Filter→Aggregate."""
    plan = _source_chain(query, sample_name)
    if query.is_aggregate_query:
        return LogicalAggregate(plan, query, weighted=False)
    if query.plain_items:
        return LogicalProject(plan, query.plain_items)
    return plan


def build_naive_error_plan(
    query: AnalyzedQuery,
    num_resamples: int,
    sample_name: Optional[str] = None,
    confidence: float = 0.95,
) -> LogicalPlan:
    """The §5.2 baseline: one subquery per resample, UNION ALL'd together.

    Each subquery is a full Scan→Resample(1 column)→Filter→Aggregate
    chain — the resample operator sits right after the scan, so weights
    are generated even for rows the filter will drop, and every subquery
    rescans the input.  The first subplan (no resample) computes the
    plain answer θ(S).
    """
    if num_resamples <= 0:
        raise PlanError(f"num_resamples must be positive, got {num_resamples}")
    if not query.is_aggregate_query:
        raise PlanError("error estimation requires an aggregate query")

    subplans: list[LogicalPlan] = [build_plain_plan(query, sample_name)]
    one_column = ResampleSpec(bootstrap_columns=1)
    for __ in range(num_resamples):
        plan: LogicalPlan = LogicalScan(query.source_table, sample_name)
        plan = LogicalResample(plan, one_column)
        if query.where is not None:
            plan = LogicalFilter(plan, query.where)
        plan = LogicalAggregate(plan, query, weighted=True)
        subplans.append(plan)
    union = LogicalUnionAll(tuple(subplans))
    return LogicalBootstrapSummary(union, confidence)


def build_error_estimation_plan(
    query: AnalyzedQuery,
    spec: ResampleSpec,
    sample_name: Optional[str] = None,
    confidence: float = 0.95,
    estimator_name: str = "bootstrap",
) -> LogicalPlan:
    """The consolidated single-scan plan, before pushdown (Fig. 6(b) left).

    The Resample operator carries every bootstrap and diagnostic weight
    column and is placed immediately after the scan; run
    :func:`repro.plan.rewriter.rewrite_plan` to push it past the
    pass-through prefix.
    """
    if not query.is_aggregate_query:
        raise PlanError("error estimation requires an aggregate query")
    plan: LogicalPlan = LogicalScan(query.source_table, sample_name)
    plan = LogicalResample(plan, spec)
    if query.where is not None:
        plan = LogicalFilter(plan, query.where)
    plan = LogicalAggregate(plan, query, weighted=True)
    plan = LogicalBootstrapSummary(plan, confidence)
    if spec.diagnostic_groups:
        plan = LogicalDiagnostic(plan, estimator_name)
    return plan


# ---------------------------------------------------------------------------
# Introspection
# ---------------------------------------------------------------------------
def walk_plan(plan: LogicalPlan):
    """Yield every node of the plan, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)


def explain(plan: LogicalPlan, indent: int = 0) -> str:
    """A readable multi-line rendering of the plan tree."""
    lines = [("  " * indent) + plan.label()]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)


def count_scans(plan: LogicalPlan) -> int:
    """Number of Scan operators — the passes over input a plan implies."""
    return sum(1 for node in walk_plan(plan) if isinstance(node, LogicalScan))
