"""The logical plan rewriter (§5.3).

Two rewrite rules take the naive error-estimation plan to the optimised
single-scan shape:

* **Scan consolidation** (§5.3.1): a UNION ALL of K per-resample
  subqueries over the same sample collapses into one scan whose Resample
  operator generates all K weight columns at once.  One pass over the
  data then feeds every bootstrap and diagnostic subquery.

* **Resampling operator pushdown** (§5.3.2): the Resample operator is
  moved from just above the scan to just above the first
  non-pass-through operator (in our operator set: just below the
  aggregate).  Weights are then only generated for tuples that survive
  filters and projections — "more often than not, the actual data used
  by the Poissonized resampling operator ... is just a tiny fraction of
  the input sample size".  (The paper frames the rewrite top-down as
  finding the longest prefix of pass-through operators; below the
  aggregate and above that prefix is the same position.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PlanError
from repro.plan.logical import (
    LogicalAggregate,
    LogicalBootstrapSummary,
    LogicalDiagnostic,
    LogicalFilter,
    LogicalPlan,
    LogicalProject,
    LogicalResample,
    LogicalScan,
    LogicalUnionAll,
    ResampleSpec,
)

#: Operators that do not change the statistical properties of the columns
#: being aggregated (§5.3.2's "pass-through" set): the Resample operator
#: may be pushed past them.
PASS_THROUGH_OPERATORS = (LogicalScan, LogicalFilter, LogicalProject)


@dataclass(frozen=True)
class RewriteReport:
    """What the rewriter did to a plan.

    Attributes:
        plan: the rewritten plan.
        rules_applied: names of rules that changed the plan, in order.
        scans_before / scans_after: input passes implied by the plan
            before and after rewriting — the headline §5.3.1 saving.
    """

    plan: LogicalPlan
    rules_applied: tuple[str, ...] = field(default_factory=tuple)
    scans_before: int = 0
    scans_after: int = 0


def _count_scans(plan: LogicalPlan) -> int:
    total = 1 if isinstance(plan, LogicalScan) else 0
    return total + sum(_count_scans(child) for child in plan.children())


# ---------------------------------------------------------------------------
# Rule 1: scan consolidation
# ---------------------------------------------------------------------------
def consolidate_scans(plan: LogicalPlan) -> tuple[LogicalPlan, bool]:
    """Collapse a UNION ALL of per-resample subqueries into one scan.

    Applies when the plan contains a :class:`LogicalUnionAll` whose
    subplans all aggregate the same query over the same source.  The
    consolidated plan keeps one subplan chain and replaces its Resample
    spec with the combined column count.
    """
    if isinstance(plan, LogicalBootstrapSummary) and isinstance(
        plan.child, LogicalUnionAll
    ):
        merged = _merge_union(plan.child)
        if merged is not None:
            return replace(plan, child=merged), True
    changed = False
    if isinstance(plan, LogicalUnionAll):
        merged = _merge_union(plan)
        if merged is not None:
            return merged, True
    new_children = []
    for child in plan.children():
        rewritten, child_changed = consolidate_scans(child)
        new_children.append(rewritten)
        changed |= child_changed
    if changed:
        plan = _with_children(plan, new_children)
    return plan, changed


def _merge_union(union: LogicalUnionAll) -> LogicalPlan | None:
    """Merge a UNION ALL of single-resample subqueries, if legal."""
    resample_plans = [
        sub for sub in union.subplans if _find_resample(sub) is not None
    ]
    if len(resample_plans) < 2:
        return None
    template = resample_plans[0]
    scans = {
        (node.table_name, node.sample_name)
        for sub in union.subplans
        for node in _scan_nodes(sub)
    }
    if len(scans) != 1:
        return None  # heterogeneous sources; cannot share a cursor
    total_columns = sum(
        _find_resample(sub).spec.total_weight_columns for sub in resample_plans
    )
    rates = {
        _find_resample(sub).spec.rate for sub in resample_plans
    }
    if len(rates) != 1:
        return None
    merged_spec = ResampleSpec(
        bootstrap_columns=total_columns, rate=rates.pop()
    )
    return _replace_resample_spec(template, merged_spec)


def _scan_nodes(plan: LogicalPlan) -> list[LogicalScan]:
    found = [plan] if isinstance(plan, LogicalScan) else []
    for child in plan.children():
        found.extend(_scan_nodes(child))
    return found


def _find_resample(plan: LogicalPlan) -> LogicalResample | None:
    if isinstance(plan, LogicalResample):
        return plan
    for child in plan.children():
        result = _find_resample(child)
        if result is not None:
            return result
    return None


def _replace_resample_spec(
    plan: LogicalPlan, spec: ResampleSpec
) -> LogicalPlan:
    if isinstance(plan, LogicalResample):
        return replace(plan, spec=spec)
    new_children = [
        _replace_resample_spec(child, spec) for child in plan.children()
    ]
    return _with_children(plan, new_children)


# ---------------------------------------------------------------------------
# Rule 2: resampling operator pushdown
# ---------------------------------------------------------------------------
def push_down_resample(plan: LogicalPlan) -> tuple[LogicalPlan, bool]:
    """Move each Resample operator past the pass-through prefix above it.

    Implemented as a local rotation applied to fixpoint: whenever a
    pass-through operator sits directly on top of a Resample, swap them.
    """
    changed = False
    while True:
        plan, swapped = _rotate_once(plan)
        if not swapped:
            break
        changed = True
    return plan, changed


def _rotate_once(plan: LogicalPlan) -> tuple[LogicalPlan, bool]:
    if (
        isinstance(plan, (LogicalFilter, LogicalProject))
        and isinstance(plan.child, LogicalResample)
    ):
        resample = plan.child
        rotated = LogicalResample(
            child=replace(plan, child=resample.child), spec=resample.spec
        )
        return rotated, True
    for index, child in enumerate(plan.children()):
        new_child, swapped = _rotate_once(child)
        if swapped:
            children = list(plan.children())
            children[index] = new_child
            return _with_children(plan, children), True
    return plan, False


def _with_children(plan: LogicalPlan, children: list[LogicalPlan]) -> LogicalPlan:
    """Rebuild a node with new children (frozen dataclasses)."""
    if isinstance(plan, LogicalUnionAll):
        return LogicalUnionAll(tuple(children))
    if hasattr(plan, "child"):
        if len(children) != 1:
            raise PlanError(
                f"{type(plan).__name__} expects one child, got {len(children)}"
            )
        return replace(plan, child=children[0])
    if children:
        raise PlanError(f"{type(plan).__name__} is a leaf but got children")
    return plan


# ---------------------------------------------------------------------------
# The rewriter entry point
# ---------------------------------------------------------------------------
def rewrite_plan(plan: LogicalPlan) -> RewriteReport:
    """Apply scan consolidation then resampling pushdown."""
    scans_before = _count_scans(plan)
    rules: list[str] = []
    plan, consolidated = consolidate_scans(plan)
    if consolidated:
        rules.append("scan_consolidation")
    plan, pushed = push_down_resample(plan)
    if pushed:
        rules.append("resample_pushdown")
    return RewriteReport(
        plan=plan,
        rules_applied=tuple(rules),
        scans_before=scans_before,
        scans_after=_count_scans(plan),
    )
