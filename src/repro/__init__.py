"""repro — a reproduction of "Knowing When You're Wrong: Building Fast
and Reliable Approximate Query Processing Systems" (SIGMOD 2014).

The package provides:

* a sampling-based approximate query engine with error bars
  (:class:`AQPEngine`);
* three error-estimation procedures — bootstrap, CLT closed forms, and
  large-deviation bounds — plus ground-truth evaluation machinery;
* the Kleiner et al. diagnostic that predicts, per query, whether an
  error-estimation procedure can be trusted;
* the query-plan optimisations (scan consolidation, Poissonized
  resampling-operator pushdown) that make error estimation and
  diagnosis interactive;
* a discrete-event cluster simulator reproducing the paper's
  performance study (Figs. 7–9);
* synthetic Facebook-/Conviva-like workload generators matching the
  published workload statistics.

Quickstart::

    import numpy as np
    from repro import AQPEngine, Table

    engine = AQPEngine(seed=0)
    engine.register_table("sessions", Table({
        "time": np.random.default_rng(0).lognormal(3, 1, 1_000_000),
    }))
    engine.create_sample("sessions", fraction=0.05)
    result = engine.execute("SELECT AVG(time) FROM sessions")
    print(result.single().interval)
"""

from repro.core import (
    AQPEngine,
    AQPResult,
    AQPRow,
    ApproximateValue,
    BernsteinEstimator,
    BootstrapEstimator,
    ClosedFormEstimator,
    ConfidenceInterval,
    DatasetQuery,
    DiagnosticConfig,
    DiagnosticResult,
    EngineConfig,
    ErrorEstimator,
    EstimationTarget,
    HoeffdingEstimator,
    Verdict,
    classify_deltas,
    diagnose,
    evaluate_estimator,
    true_interval,
)
from repro.catalog import (
    CatalogConfig,
    MaterializedCatalog,
    ResultKey,
    RollupCube,
)
from repro.engine import Table
from repro.errors import (
    AdmissionRejectedError,
    QueryCancelledError,
    ReproError,
    ResourceError,
    ResourceExhaustedError,
)
from repro.governor import (
    CancelToken,
    DegradationLevel,
    GovernorConfig,
    MemoryAccountant,
    QueryGovernor,
)
from repro.sampling import SampleCatalog
from repro.sql.fingerprint import QueryFingerprint, fingerprint_statement

__version__ = "1.0.0"

__all__ = [
    "AQPEngine",
    "AQPResult",
    "AQPRow",
    "AdmissionRejectedError",
    "ApproximateValue",
    "BernsteinEstimator",
    "BootstrapEstimator",
    "CancelToken",
    "CatalogConfig",
    "ClosedFormEstimator",
    "ConfidenceInterval",
    "DatasetQuery",
    "DegradationLevel",
    "DiagnosticConfig",
    "DiagnosticResult",
    "EngineConfig",
    "ErrorEstimator",
    "EstimationTarget",
    "GovernorConfig",
    "HoeffdingEstimator",
    "MaterializedCatalog",
    "MemoryAccountant",
    "QueryCancelledError",
    "QueryFingerprint",
    "QueryGovernor",
    "ReproError",
    "ResultKey",
    "RollupCube",
    "ResourceError",
    "ResourceExhaustedError",
    "SampleCatalog",
    "Table",
    "Verdict",
    "classify_deltas",
    "diagnose",
    "evaluate_estimator",
    "fingerprint_statement",
    "true_interval",
    "__version__",
]
