"""Supervision primitives for fault-tolerant fan-out.

This module defines the vocabulary the supervised execution paths share:

* :class:`RetryPolicy` — how failed task batches are retried (capped
  exponential backoff with deterministic jitter), when a task is
  declared hung, and how many pool-level failures are tolerated before
  the session degrades permanently to inline execution.
* :class:`ExecutionReport` — the structured account of one query's
  execution attached to results: tasks attempted/completed, retries,
  crashes, timeouts, pool restarts, replicate/subsample completion
  counts, and every degradation or fallback with its reason.  This is
  the "degraded but honest" half of the paper's contract: an answer
  computed from partial work must say so.
* :class:`Supervision` — one operation's bundle of fault plan, retry
  policy, report, query deadline, and partial-result policy, threaded
  from :class:`~repro.core.pipeline.AQPEngine` through the estimators
  down to :mod:`repro.parallel.ops`.
* :func:`run_supervised_inline` — the serial counterpart of the
  supervised pool: the same retry/deadline/fault semantics applied to
  units running in the calling process, so fault schedules behave
  identically at any worker count (including 1).

Only *transient* failures — worker crashes and task timeouts — are
retried.  Deterministic exceptions raised by the task body itself would
fail identically on every attempt and propagate immediately, preserving
the pre-supervision error behaviour.

Determinism: retries re-run a unit with the same child RNG stream, so a
run whose failures were all recovered by retry is bit-identical to a
clean run.  Backoff jitter is seeded from ``(attempt, index)``, never
from wall-clock randomness.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import ExecutionError, TaskTimeoutError, WorkerCrashError
from repro.faults.plan import FaultPlan
from repro.governor.cancel import active_token
from repro.obs.trace import current_trace, suppress_tracing

logger = logging.getLogger(__name__)

__all__ = [
    "HEDGE_ATTEMPT_BASE",
    "TASK_FAILED",
    "ExecutionReport",
    "HedgePolicy",
    "RetryPolicy",
    "Supervision",
    "TRANSIENT_ERRORS",
    "backoff_seconds",
    "run_supervised_inline",
]

#: Exception types the supervisor treats as transient (retryable).
TRANSIENT_ERRORS = (WorkerCrashError, TaskTimeoutError)

#: Attempt-number offset for hedged backup dispatches.  Worker faults
#: bind to real attempt numbers (0, 1, 2, ...), so a backup launched as
#: ``HEDGE_ATTEMPT_BASE + attempt`` re-runs the *same unit on the same
#: RNG stream* without re-firing the first-attempt fault that made the
#: primary straggle — which is what lets a hedge actually win.
HEDGE_ATTEMPT_BASE = 1000


class _TaskFailed:
    """Sentinel marking a unit that failed after exhausting retries."""

    _instance: "_TaskFailed | None" = None

    def __new__(cls) -> "_TaskFailed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<TASK_FAILED>"

    def __reduce__(self):
        return (_TaskFailed, ())


#: Singleton placeholder for a permanently failed unit's result slot.
TASK_FAILED = _TaskFailed()


@dataclass(frozen=True)
class HedgePolicy:
    """When the pool launches speculative backups for straggling tasks.

    The classic tail-at-scale mitigation: once enough tasks of the
    current round have completed to estimate the round's duration
    distribution, any task still outstanding past
    ``multiplier × quantile(completed durations)`` gets a *backup*
    dispatch of the same unit.  First result wins.  Because primary and
    backup run the identical payload — hence the identical per-unit RNG
    stream — the winner's answer is bit-identical either way; hedging
    trades a little redundant work for tail latency, never determinism.

    Attributes:
        quantile: completed-duration quantile the threshold builds on.
        multiplier: how far past that quantile a task must straggle
            before it is hedged.
        min_observations: completed tasks needed before the duration
            distribution is trusted (no hedging below this).
        floor_seconds: minimum threshold — sub-floor tasks are too
            cheap for a backup to beat the primary anyway.
        max_hedges: backups allowed per dispatch round (caps redundant
            work when a whole round stalls, e.g. an overloaded host).
    """

    quantile: float = 0.9
    multiplier: float = 3.0
    min_observations: int = 3
    floor_seconds: float = 0.05
    max_hedges: int = 8

    def __post_init__(self):
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(
                f"hedge quantile must be in (0, 1], got {self.quantile}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"hedge multiplier must be >= 1, got {self.multiplier}"
            )
        if self.min_observations < 1:
            raise ValueError(
                "hedge min_observations must be >= 1, got "
                f"{self.min_observations}"
            )
        if self.floor_seconds < 0:
            raise ValueError(
                f"hedge floor_seconds must be >= 0, got {self.floor_seconds}"
            )
        if self.max_hedges < 0:
            raise ValueError(
                f"hedge max_hedges must be >= 0, got {self.max_hedges}"
            )

    def threshold_seconds(
        self, durations: Sequence[float]
    ) -> Optional[float]:
        """Straggler threshold from this round's completed durations.

        ``None`` — not enough observations yet to call anything a
        straggler.
        """
        if len(durations) < self.min_observations:
            return None
        estimate = float(
            np.quantile(np.asarray(durations, dtype=np.float64), self.quantile)
        )
        return max(self.floor_seconds, self.multiplier * estimate)


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries, times out, and gives up.

    Attributes:
        max_task_retries: extra attempts per task batch after the first
            (``2`` → up to 3 executions).
        backoff_base_seconds: backoff before retry attempt 1; doubles
            per attempt.
        backoff_cap_seconds: upper bound on any single backoff sleep.
        backoff_jitter: fractional jitter added to each backoff
            (deterministic per ``(attempt, index)``).
        task_timeout_seconds: per-task deadline; ``None`` disables hang
            detection (a lost worker then only surfaces through the
            query deadline).
        max_pool_failures: consecutive pool-level failures (crashed or
            hung workers forcing a pool restart) tolerated before the
            pool degrades permanently to inline execution for the rest
            of the session.
        hedge: speculative-backup policy for straggling tasks, or
            ``None`` to wait for the retry path alone (sequential
            recovery — a straggler costs its full timeout before the
            retry even starts).
    """

    max_task_retries: int = 2
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    backoff_jitter: float = 0.5
    task_timeout_seconds: Optional[float] = None
    max_pool_failures: int = 2
    hedge: Optional[HedgePolicy] = None

    def __post_init__(self):
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )
        if self.max_pool_failures < 1:
            raise ValueError(
                f"max_pool_failures must be >= 1, got {self.max_pool_failures}"
            )


def backoff_seconds(policy: RetryPolicy, attempt: int, index: int) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``attempt`` is the retry number (1 = first retry).  Jitter derives
    from ``(attempt, index)`` via a :class:`~numpy.random.SeedSequence`
    so supervision never perturbs the parent RNG or the wall clock's
    randomness budget — backoff is reproducible like everything else.
    """
    base = min(
        policy.backoff_cap_seconds,
        policy.backoff_base_seconds * 2 ** (attempt - 1),
    )
    if policy.backoff_jitter <= 0 or base <= 0:
        return base
    draw = np.random.SeedSequence([attempt, index]).generate_state(1)[0]
    return base * (1.0 + policy.backoff_jitter * (draw / 2**32))


@dataclass
class ExecutionReport:
    """Structured account of how a query's fan-out actually executed.

    Attached to :class:`~repro.core.pipeline.AQPResult`; every degraded
    answer points at the entry here that explains *why* it is degraded
    and what the engine did about it.
    """

    tasks_attempted: int = 0
    tasks_completed: int = 0
    task_retries: int = 0
    worker_crashes: int = 0
    task_timeouts: int = 0
    pool_restarts: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    replicates_requested: int = 0
    replicates_completed: int = 0
    subsamples_requested: int = 0
    subsamples_completed: int = 0
    deadline_hit: bool = False
    degraded_to_inline: bool = False
    swept_segments: int = 0
    degradation_reasons: list[str] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)
    #: Bounded-query contract (``... WITHIN ...``): which bound was
    #: requested, its target, and the bound the execution actually
    #: achieved (max relative error, max half-width, or elapsed
    #: seconds, depending on ``bound_kind``).  ``None`` for unbounded
    #: queries.
    bound_kind: Optional[str] = None
    bound_target: Optional[float] = None
    achieved_bound: Optional[float] = None
    #: Planner decision applied to this execution, when the cost
    #: planner chose the sample fraction / replicate count.
    planned_fraction: Optional[float] = None
    planned_replicates: Optional[int] = None
    pilot_rows: Optional[int] = None

    def note_degradation(self, reason: str) -> None:
        if reason not in self.degradation_reasons:
            self.degradation_reasons.append(reason)

    def note_fallback(self, what: str) -> None:
        if what not in self.fallbacks:
            self.fallbacks.append(what)

    @property
    def degraded(self) -> bool:
        """Whether any part of the answer came from less than full work."""
        return bool(self.degradation_reasons) or self.deadline_hit

    @property
    def recovered(self) -> bool:
        """Whether failures occurred but retries recovered all of them."""
        return (
            self.task_retries > 0
            and not self.degraded
            and self.tasks_completed >= self.tasks_attempted
        )

    def summary(self) -> str:
        """One-paragraph human-readable account (CLI / logs)."""
        parts = [
            f"{self.tasks_completed}/{self.tasks_attempted} tasks completed"
        ]
        if self.task_retries:
            parts.append(f"{self.task_retries} retries")
        if self.worker_crashes:
            parts.append(f"{self.worker_crashes} worker crashes")
        if self.task_timeouts:
            parts.append(f"{self.task_timeouts} task timeouts")
        if self.pool_restarts:
            parts.append(f"{self.pool_restarts} pool restarts")
        if self.hedges_launched:
            parts.append(
                f"{self.hedges_launched} hedged "
                f"({self.hedges_won} won by backup)"
            )
        if self.swept_segments:
            parts.append(f"{self.swept_segments} orphaned segments swept")
        if self.degraded_to_inline:
            parts.append("degraded to inline execution")
        if self.deadline_hit:
            parts.append("query deadline hit")
        text = ", ".join(parts)
        if self.planned_fraction is not None:
            text += (
                f"; planned fraction={self.planned_fraction:.4f}"
                + (
                    f", K={self.planned_replicates}"
                    if self.planned_replicates is not None
                    else ""
                )
            )
        if self.bound_kind is not None:
            achieved = (
                "n/a"
                if self.achieved_bound is None
                else f"{self.achieved_bound:.4g}"
            )
            text += (
                f"; bound[{self.bound_kind}] target={self.bound_target:.4g} "
                f"achieved={achieved}"
            )
        for reason in self.degradation_reasons:
            text += f"; degraded: {reason}"
        for fallback in self.fallbacks:
            text += f"; fallback: {fallback}"
        return text


@dataclass
class Supervision:
    """One operation's supervision context.

    Attributes:
        plan: active fault-injection schedule, or ``None``.
        policy: retry/deadline policy.
        report: accumulator the execution writes its account into.
        deadline: absolute :func:`time.monotonic` instant the whole
            query must finish by, or ``None``.
        allow_partial: whether exhausted units become
            :data:`TASK_FAILED` placeholders (graceful degradation)
            instead of raising :class:`~repro.errors.ExecutionError`.
        cancel: cooperative cancellation token
            (:class:`~repro.governor.cancel.CancelToken`); checked at
            unit boundaries and while waiting on dispatched tasks.
            ``None`` falls back to the ambient token, so cancellation
            works even for callers that never construct a Supervision
            explicitly.
        memory: the :class:`~repro.governor.memory.MemoryAccountant`
            fan-out operations reserve their footprint against before
            allocating; ``None`` disables memory governance.
        memory_wait_seconds: how long a reservation may wait for
            another query to release before failing.
    """

    plan: Optional[FaultPlan] = None
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    report: ExecutionReport = field(default_factory=ExecutionReport)
    deadline: Optional[float] = None
    allow_partial: bool = False
    cancel: Optional[Any] = None
    memory: Optional[Any] = None
    memory_wait_seconds: float = 0.0

    @classmethod
    def default(cls) -> "Supervision":
        """A strict context: no faults, default retries, fail loudly."""
        return cls()

    def cancel_token(self):
        """The effective token: explicit field, else the ambient one."""
        return self.cancel if self.cancel is not None else active_token()

    def check_cancelled(self) -> None:
        """Raise :class:`~repro.errors.QueryCancelledError` if cancelled."""
        token = self.cancel_token()
        if token is not None:
            token.check()

    def sleep(self, seconds: float) -> None:
        """Backoff sleep that a cancellation can interrupt."""
        token = self.cancel_token()
        if token is None:
            time.sleep(seconds)
        else:
            token.wait(seconds)
            token.check()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def task_patience(self) -> Optional[float]:
        """Longest the supervisor waits on one task before declaring it hung."""
        per_task = self.policy.task_timeout_seconds
        remaining = self.remaining_seconds()
        if per_task is None:
            return remaining
        if remaining is None:
            return per_task
        return min(per_task, remaining)

    def deadline_precludes_retry(self, backoff: float) -> bool:
        """Whether every caller deadline fires before a retry could start.

        Deadline propagation from the serving tier: the client's
        deadline rides on the cancel token, so when the remaining token
        (or query-deadline) budget is smaller than the retry backoff,
        the retry can only burn a slot on work whose caller has already
        given up.  Call sites fail the unit immediately and degrade
        honestly instead.
        """
        budgets = []
        remaining = self.remaining_seconds()
        if remaining is not None:
            budgets.append(remaining)
        token = self.cancel_token()
        if token is not None:
            token_remaining = token.remaining_seconds()
            if token_remaining is not None:
                budgets.append(token_remaining)
        return bool(budgets) and min(budgets) <= backoff


def _fail_unit(
    supervision: Supervision, index: int, error: Exception
) -> Any:
    """Record a permanently failed unit; raise unless partials are allowed."""
    supervision.report.note_degradation(f"task {index} failed: {error}")
    trace = current_trace()
    if trace is not None:
        trace.add_event(
            "task_failed", index=index, error=type(error).__name__
        )
    if supervision.allow_partial:
        logger.error(
            "task %d permanently failed after %d retries: %s "
            "(continuing with partial results)",
            index,
            supervision.policy.max_task_retries,
            error,
        )
        return TASK_FAILED
    logger.error(
        "task %d permanently failed after %d retries: %s",
        index,
        supervision.policy.max_task_retries,
        error,
    )
    raise ExecutionError(
        f"task {index} failed after "
        f"{supervision.policy.max_task_retries} retries: {error}"
    ) from error


def run_supervised_inline(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    supervision: Supervision,
    indices: Sequence[int] | None = None,
    count_attempts: bool = True,
) -> list[Any]:
    """Serial supervised execution: same semantics as the supervised pool.

    Applies the fault plan, per-task retries with backoff, and the query
    deadline to units running in the calling process.  Failed units
    become :data:`TASK_FAILED` when partial results are allowed;
    deterministic (non-transient) exceptions propagate immediately.

    Args:
        fn: the unit kernel.
        payloads: one payload per unit.
        supervision: active supervision context.
        indices: logical unit indices (for fault-plan binding and
            reporting) when the payloads are a subset of a larger
            operation; defaults to ``range(len(payloads))``.
        count_attempts: set to ``False`` when the units were already
            counted as attempted by a pool round that degraded and
            handed them over.
    """
    policy = supervision.policy
    trace = current_trace()
    if indices is None:
        indices = range(len(payloads))
    results: list[Any] = []
    for index, payload in zip(indices, payloads):
        supervision.check_cancelled()
        if supervision.expired():
            supervision.report.deadline_hit = True
            results.append(
                _fail_unit(
                    supervision,
                    index,
                    TaskTimeoutError("query deadline exceeded"),
                )
            )
            continue
        if count_attempts:
            supervision.report.tasks_attempted += 1
        last_error: Exception | None = None
        outcome: Any = TASK_FAILED
        for attempt in range(policy.max_task_retries + 1):
            if attempt > 0:
                backoff = backoff_seconds(policy, attempt, index)
                if supervision.deadline_precludes_retry(backoff):
                    # The caller gives up before the backoff would end:
                    # fail the unit now instead of retrying into a
                    # deadline that has already decided the outcome.
                    break
                supervision.report.task_retries += 1
                logger.warning(
                    "retrying task %d inline (attempt %d) after %s",
                    index,
                    attempt,
                    last_error,
                )
                supervision.sleep(backoff)
            started = time.perf_counter() if trace is not None else 0.0
            try:
                if supervision.plan is not None:
                    supervision.plan.apply(
                        index, attempt, timeout=supervision.task_patience()
                    )
                if trace is not None:
                    # The unit body is one leaf of the timeline; its
                    # internal spans (nested estimator/executor calls)
                    # would flood the tree, so the ambient trace is
                    # hidden for the duration of the kernel.
                    with suppress_tracing():
                        outcome = fn(payload)
                    trace.add_span(
                        "task",
                        started,
                        time.perf_counter(),
                        index=index,
                        attempt=attempt,
                        outcome="ok",
                        mode="inline",
                    )
                else:
                    outcome = fn(payload)
                supervision.report.tasks_completed += 1
                last_error = None
                break
            except TRANSIENT_ERRORS as error:
                last_error = error
                if isinstance(error, WorkerCrashError):
                    supervision.report.worker_crashes += 1
                    classification = "crash"
                else:
                    supervision.report.task_timeouts += 1
                    classification = "timeout"
                logger.warning(
                    "task %d %s on attempt %d: %s",
                    index,
                    classification,
                    attempt,
                    error,
                )
                if trace is not None:
                    trace.add_span(
                        "task",
                        started,
                        time.perf_counter(),
                        index=index,
                        attempt=attempt,
                        outcome=classification,
                        mode="inline",
                    )
        if last_error is not None:
            outcome = _fail_unit(supervision, index, last_error)
        results.append(outcome)
    return results
