"""Multicore execution layer: shared-memory fan-out with determinism.

The paper's bootstrap + diagnostics only become interactive through
embarrassing parallelism (§5.1, §6).  This package supplies the
in-process counterpart for real multicore machines:

* :mod:`repro.parallel.pool` — ``REPRO_WORKERS`` worker processes with
  a strict inline fallback (``num_workers=1`` spawns nothing);
* :mod:`repro.parallel.shm` — the sample's column arrays shared with
  workers via ``multiprocessing.shared_memory`` (zero-copy reads, no
  per-task data pickling);
* :mod:`repro.parallel.rng` — per-unit RNG streams spawned from one
  :class:`numpy.random.SeedSequence`, making results **bit-identical
  to serial execution at any worker count**;
* :mod:`repro.parallel.ops` — the fanned-out hot loops: bootstrap
  replicates, black-box table statistics, diagnostic subsample
  evaluations, and ground-truth trials;
* :mod:`repro.parallel.supervise` — fault-tolerant supervision:
  retry policies with capped deterministic backoff, per-task and
  per-query deadlines, and the :class:`ExecutionReport` that makes
  degraded answers honest.
"""

from repro.parallel.ops import (
    DEFAULT_REPLICATE_CHUNK,
    DEFAULT_TRIAL_CHUNK,
    DEFAULT_UNIT_BATCH,
    bootstrap_replicates,
    diagnostic_evaluations,
    ground_truth_trials,
    resolve_table,
    share_table,
    table_statistic_replicates,
)
from repro.parallel.pool import (
    START_METHOD_ENV,
    WORKERS_ENV,
    WorkerPool,
    pool_scope,
    resolve_num_workers,
)
from repro.parallel.rng import chunk_spans, seed_from_rng, spawn_children
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SharedArena,
    SharedArrayRef,
    attach,
    detach,
    resolve,
    sweep_orphans,
)
from repro.parallel.supervise import (
    TASK_FAILED,
    ExecutionReport,
    HedgePolicy,
    RetryPolicy,
    Supervision,
    run_supervised_inline,
)

__all__ = [
    "attach",
    "detach",
    "resolve",
    "DEFAULT_REPLICATE_CHUNK",
    "DEFAULT_TRIAL_CHUNK",
    "DEFAULT_UNIT_BATCH",
    "ExecutionReport",
    "HedgePolicy",
    "RetryPolicy",
    "SEGMENT_PREFIX",
    "START_METHOD_ENV",
    "SharedArena",
    "SharedArrayRef",
    "Supervision",
    "TASK_FAILED",
    "WORKERS_ENV",
    "WorkerPool",
    "run_supervised_inline",
    "sweep_orphans",
    "bootstrap_replicates",
    "chunk_spans",
    "diagnostic_evaluations",
    "ground_truth_trials",
    "pool_scope",
    "resolve_num_workers",
    "resolve_table",
    "seed_from_rng",
    "share_table",
    "spawn_children",
    "table_statistic_replicates",
]
