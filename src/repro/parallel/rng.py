"""Deterministic chunked randomness for the multicore execution layer.

The determinism contract of :mod:`repro.parallel` is *bit-identical
results at any worker count*.  The mechanism (§5.1's "streaming,
embarrassingly parallel" weight generation, made reproducible) is:

1. The caller draws **one** 63-bit seed from its generator
   (:func:`seed_from_rng`) — consuming the same amount of parent-side
   randomness whether the work then runs serially or on 8 workers.
2. The seed becomes a :class:`numpy.random.SeedSequence`, which is
   spawned into one child stream per *logical work unit* (bootstrap
   replicate chunk, diagnostic subsample, ground-truth trial).
3. Unit ``i`` always consumes child stream ``i`` — regardless of which
   worker process executes it, and regardless of how units are batched
   for dispatch.

Chunk layout is therefore a pure function of the workload (task count
and a fixed chunk size), never of the worker count.
"""

from __future__ import annotations

import numpy as np

__all__ = ["seed_from_rng", "spawn_children", "chunk_spans"]


def seed_from_rng(rng: np.random.Generator) -> int:
    """Draw a single root seed from ``rng``.

    This is the only randomness the parent consumes for a fanned-out
    operation, so the parent generator advances identically for every
    worker count (including the inline serial path).
    """
    return int(rng.integers(0, 2**63 - 1))


def spawn_children(seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child streams of the root ``seed``.

    Child ``i`` is always the same stream for the same root seed;
    :class:`~numpy.random.SeedSequence` guarantees the children are
    statistically independent of each other and of the root.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(np.random.SeedSequence(seed).spawn(count))


def chunk_spans(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Half-open ``[start, stop)`` spans covering ``range(total)``.

    The layout depends only on ``total`` and ``chunk_size`` — never on
    the number of workers — so span ``i`` can be bound to child stream
    ``i`` without breaking the determinism contract.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]
