"""Zero-copy column sharing via POSIX shared memory.

Fan-out would be pointless if every task pickled the sample's column
arrays: serialisation would cost more than the aggregate it feeds.
Instead the parent copies each large array **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment; tasks carry
only a tiny :class:`SharedArrayRef` (segment name + shape + dtype) and
workers map the segment read-only — a zero-copy view, no per-task data
movement.

Ownership is explicit: a :class:`SharedArena` owns every segment it
creates and unlinks them all on :meth:`SharedArena.close` (or context
exit), including when a worker raised mid-operation.  Workers attach
per task batch and detach immediately after computing their (small)
results, so a parent-side ``close`` frees the memory promptly and no
segment ever outlives its operation.

Arrays that cannot live in shared memory — object-dtype columns and
zero-length arrays — are passed through verbatim and travel with the
task payload instead (they are small or unavoidable either way).
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ExecutionError

__all__ = [
    "SEGMENT_PREFIX",
    "SharedArrayRef",
    "SharedArena",
    "attach",
    "detach",
    "resolve",
    "sharable",
    "sweep_orphans",
]

#: Prefix of every segment created here; tests glob ``/dev/shm`` for it
#: to prove nothing leaked.
SEGMENT_PREFIX = "repro"


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable description of an array living in a shared segment."""

    segment: str
    shape: tuple[int, ...]
    dtype: str


def sharable(array: np.ndarray) -> bool:
    """Whether ``array`` can be placed in a shared-memory segment."""
    return not array.dtype.hasobject and array.nbytes > 0


class SharedArena:
    """Parent-side owner of the shared segments of one fan-out operation.

    Args:
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan`;
            plans with an shm fault make every allocation raise
            :class:`~repro.errors.ExecutionError`, exercising the
            callers' embed-in-payload fallback path.
    """

    _counter = 0

    def __init__(self, fault_plan=None):
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        self._fault_plan = fault_plan

    def share(self, array: np.ndarray) -> SharedArrayRef | np.ndarray:
        """Copy ``array`` into a shared segment, returning a ref.

        Non-sharable arrays (object dtype, zero length) are returned
        unchanged so callers can transparently embed them in the task
        payload instead.
        """
        if self._closed:
            raise ValueError("cannot share through a closed arena")
        if self._fault_plan is not None and self._fault_plan.fails_shm():
            raise ExecutionError(
                "injected shared-memory allocation failure"
            )
        array = np.ascontiguousarray(array)
        if not sharable(array):
            return array
        SharedArena._counter += 1
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{SharedArena._counter}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=array.nbytes
        )
        # Register ownership *before* anything else can observe the
        # name (or raise): if the copy below dies — or the process is
        # interrupted between create and register — close() still knows
        # to unlink this segment instead of leaking it.
        try:
            self._segments.append(segment)
        except BaseException:
            segment.close()
            segment.unlink()
            raise
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return SharedArrayRef(
            segment=segment.name.lstrip("/"),
            shape=array.shape,
            dtype=array.dtype.str,
        )

    def close(self) -> None:
        """Close and unlink every segment this arena created."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            try:
                segment.close()
            finally:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
        self._segments.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass


def attach(ref: SharedArrayRef) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map a shared segment read-only in the current process.

    Pre-3.13 ``SharedMemory`` registers *attachments* with the resource
    tracker too, which makes the tracker try to double-unlink segments
    the parent owns.  Suppressing registration during attach is the
    stdlib-sanctioned workaround (it is exactly what the 3.13
    ``track=False`` parameter does).
    """
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(name=ref.segment, create=False)
    finally:
        resource_tracker.register = register
    array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    array.flags.writeable = False
    return array, segment


def detach(segments: list[shared_memory.SharedMemory]) -> None:
    """Unmap previously attached segments (results must be copies)."""
    for segment in segments:
        try:
            segment.close()
        except Exception:
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The pid exists but belongs to someone else; not ours to sweep.
        return True
    return True


def sweep_orphans() -> list[str]:
    """Unlink ``repro``-prefixed segments whose owning process is dead.

    Every segment name embeds the creating pid
    (``repro_<pid>_<counter>``), so the janitor can tell an orphan — a
    segment whose owner crashed before its arena could unlink it — from
    a segment a live arena still owns.  Called by the supervised pool
    after an abnormal worker exit forces a pool restart, and usable
    directly to clean up after a killed parent process.

    Returns:
        The names of the segments that were swept.
    """
    swept: list[str] = []
    for path in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}_*"):
        name = os.path.basename(path)
        parts = name.split("_")
        if len(parts) < 3:
            continue
        try:
            owner_pid = int(parts[1])
        except ValueError:
            continue
        if _pid_alive(owner_pid):
            continue
        try:
            os.unlink(path)
        except FileNotFoundError:
            continue
        swept.append(name)
    return swept


def resolve(
    ref: SharedArrayRef | np.ndarray | None,
    segments: list[shared_memory.SharedMemory],
) -> np.ndarray | None:
    """Materialise a payload entry: attach refs, pass arrays through.

    Appends any segment opened here to ``segments`` so the caller can
    :func:`detach` them in one place after the batch completes.
    """
    if ref is None or isinstance(ref, np.ndarray):
        return ref
    array, segment = attach(ref)
    segments.append(segment)
    return array
