"""The worker pool: process fan-out with a strict serial fallback.

``REPRO_WORKERS`` (or :class:`~repro.core.pipeline.EngineConfig`'s
``num_workers``) selects the degree of parallelism, mirroring the
paper's §6 observation that bootstrap + diagnostics only become
interactive through tuned parallel execution.  The contract:

* ``num_workers <= 1`` → every ``map`` runs inline in the calling
  process; **no worker process is ever spawned** and no shared-memory
  segment is created by the callers (they skip the arena entirely).
* ``num_workers > 1`` → a lazily created ``multiprocessing`` pool runs
  task batches; results come back in submission order, so determinism
  is entirely the responsibility of the per-unit RNG streams
  (:mod:`repro.parallel.rng`), never of scheduling.
* Payloads that cannot be pickled (user lambdas, bound closures) make
  the operation fall back to the inline path instead of failing — the
  serial and parallel paths are bit-identical by construction, so the
  fallback is invisible except in wall-clock.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

__all__ = [
    "WORKERS_ENV",
    "START_METHOD_ENV",
    "WorkerPool",
    "pool_scope",
    "resolve_num_workers",
]

#: Environment knob read when ``num_workers`` is not given explicitly.
WORKERS_ENV = "REPRO_WORKERS"

#: Override the multiprocessing start method ("fork" is the default on
#: platforms that support it; "spawn" works but pays interpreter boot
#: per worker).
START_METHOD_ENV = "REPRO_MP_START"


def resolve_num_workers(num_workers: int | None = None) -> int:
    """Resolve a worker count: explicit value → env → serial.

    ``0`` and negative values mean "one worker per CPU".
    """
    if num_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            num_workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if num_workers <= 0:
        return os.cpu_count() or 1
    return num_workers


def _start_method() -> str:
    method = os.environ.get(START_METHOD_ENV, "").strip()
    if method:
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


class WorkerPool:
    """A lazily spawned process pool with an inline serial mode.

    Args:
        num_workers: degree of parallelism; ``None`` reads
            ``REPRO_WORKERS``, ``<= 0`` means one per CPU, and ``1`` is
            the guaranteed-inline serial mode.
    """

    def __init__(self, num_workers: int | None = None):
        self.num_workers = resolve_num_workers(num_workers)
        self._pool: multiprocessing.pool.Pool | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        return self.num_workers > 1

    @property
    def processes_spawned(self) -> bool:
        """Whether any worker process actually exists (tested contract)."""
        return self._pool is not None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = multiprocessing.get_context(_start_method())
            self._pool = context.Pool(processes=self.num_workers)
        return self._pool

    def shutdown(self) -> None:
        """Terminate worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):
        try:
            self.shutdown()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> list[Any]:
        """Apply ``fn`` to every payload, preserving order.

        Runs inline when serial, when there is at most one payload, or
        when a payload refuses to pickle; fans out otherwise.
        """
        payloads = list(payloads)
        if not self.is_parallel or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        try:
            pickle.dumps((fn, payloads), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable work (user lambdas / closures): identical
            # results inline, just without the fan-out.
            return [fn(payload) for payload in payloads]
        pool = self._ensure_pool()
        return pool.map(fn, payloads, chunksize=1)


@contextmanager
def pool_scope(
    pool: "WorkerPool | int | None",
) -> "Iterator[WorkerPool | None]":
    """Normalise a ``pool=`` argument for the duration of one operation.

    ``WorkerPool`` instances pass through (caller owns their lifetime);
    integers create a pool scoped to the ``with`` block; ``None`` and
    serial counts yield ``None`` so call sites can skip the
    shared-memory arena entirely.
    """
    if isinstance(pool, WorkerPool):
        yield pool if pool.is_parallel else None
        return
    if pool is None:
        yield None
        return
    resolved = resolve_num_workers(int(pool))
    if resolved <= 1:
        yield None
        return
    scoped = WorkerPool(resolved)
    try:
        yield scoped
    finally:
        scoped.shutdown()
