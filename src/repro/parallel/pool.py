"""The worker pool: supervised process fan-out with a strict serial fallback.

``REPRO_WORKERS`` (or :class:`~repro.core.pipeline.EngineConfig`'s
``num_workers``) selects the degree of parallelism, mirroring the
paper's §6 observation that bootstrap + diagnostics only become
interactive through tuned parallel execution.  The contract:

* ``num_workers <= 1`` → every ``map`` runs inline in the calling
  process; **no worker process is ever spawned** and no shared-memory
  segment is created by the callers (they skip the arena entirely).
* ``num_workers > 1`` → a lazily created ``multiprocessing`` pool runs
  task batches; results come back in submission order, so determinism
  is entirely the responsibility of the per-unit RNG streams
  (:mod:`repro.parallel.rng`), never of scheduling.
* Payloads that cannot be pickled (user lambdas, bound closures) make
  the operation fall back to the inline path instead of failing — the
  serial and parallel paths are bit-identical by construction, so the
  fallback is invisible except in wall-clock.

On top of the fan-out sits **supervision** (PR 2): ``map`` detects
crashed and hung workers (a lost task surfaces as a timeout; a changed
worker-pid set distinguishes a crash), retries failed task batches with
capped exponential backoff and deterministic jitter, enforces per-task
and per-query deadlines, restarts the pool (sweeping orphaned
shared-memory segments) after a pool-level failure, and after
``RetryPolicy.max_pool_failures`` consecutive pool failures degrades
*permanently* to the inline serial path for the rest of the session,
recording why in the :class:`~repro.parallel.supervise.ExecutionReport`.
Because a retried unit re-runs with the same child RNG stream, a run
whose failures were all recovered by retry is bit-identical to a clean
run — degraded availability never silently changes answers.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.pool
import os
import pickle
import time
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any, Optional

from repro.errors import TaskTimeoutError, WorkerCrashError
from repro.faults.plan import FaultPlan
from repro.obs.metrics import METRICS
from repro.obs.trace import current_trace, suppress_tracing
from repro.parallel.supervise import (
    HEDGE_ATTEMPT_BASE,
    TASK_FAILED,
    Supervision,
    backoff_seconds,
    run_supervised_inline,
)

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_CRASH_DETECTION_SECONDS",
    "WORKERS_ENV",
    "START_METHOD_ENV",
    "WorkerPool",
    "pool_scope",
    "resolve_num_workers",
]

#: Environment knob read when ``num_workers`` is not given explicitly.
WORKERS_ENV = "REPRO_WORKERS"

#: Override the multiprocessing start method ("fork" is the default on
#: platforms that support it; "spawn" works but pays interpreter boot
#: per worker).
START_METHOD_ENV = "REPRO_MP_START"

#: Patience used for hang/crash detection when a fault plan is active
#: but no explicit task timeout was configured — prevents an injected
#: crash from wedging the parent forever on a result that cannot come.
DEFAULT_CRASH_DETECTION_SECONDS = 30.0

#: Longest single wait on a dispatched task before re-checking the
#: cancellation token.  Bounds how stale a Ctrl-C / ``--timeout``
#: cancel can get while the parent blocks on a worker result.
CANCEL_POLL_SECONDS = 0.05


def _await_result(
    async_result, patience: Optional[float], supervision: Supervision
):
    """``AsyncResult.get`` in short slices, honouring cancellation.

    Raises :class:`multiprocessing.TimeoutError` when ``patience``
    elapses (the caller's crash/hang classification path), and
    :class:`~repro.errors.QueryCancelledError` as soon as the
    supervision's token fires — within one poll slice, not one task.
    """
    deadline = (
        None if patience is None else time.monotonic() + patience
    )
    while True:
        supervision.check_cancelled()
        if deadline is None:
            slice_seconds = CANCEL_POLL_SECONDS
        else:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise multiprocessing.TimeoutError()
            slice_seconds = min(CANCEL_POLL_SECONDS, remaining)
        try:
            return async_result.get(timeout=slice_seconds)
        except multiprocessing.TimeoutError:
            continue


def resolve_num_workers(num_workers: int | None = None) -> int:
    """Resolve a worker count: explicit value → env → serial.

    ``0`` and negative values mean "one worker per CPU"; explicit and
    environment-supplied counts are capped at ``os.cpu_count()`` —
    oversubscribing cores only adds context-switch overhead to what are
    CPU-bound kernels.  An invalid ``REPRO_MP_START`` is rejected here,
    eagerly, with the allowed start methods listed — not deep inside
    ``multiprocessing`` at first fan-out.
    """
    _validate_start_method()
    cpus = os.cpu_count() or 1
    if num_workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            num_workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if num_workers <= 0:
        return cpus
    return min(num_workers, cpus)


def _validate_start_method() -> None:
    method = os.environ.get(START_METHOD_ENV, "").strip()
    if method and method not in multiprocessing.get_all_start_methods():
        allowed = ", ".join(sorted(multiprocessing.get_all_start_methods()))
        raise ValueError(
            f"{START_METHOD_ENV}={method!r} is not a valid multiprocessing "
            f"start method on this platform; allowed: {allowed}"
        )


def _start_method() -> str:
    _validate_start_method()
    method = os.environ.get(START_METHOD_ENV, "").strip()
    if method:
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


def _invoke_task(
    fn: Callable[[Any], Any],
    payload: Any,
    plan: FaultPlan | None,
    index: int,
    attempt: int,
    timed: bool = False,
) -> Any:
    """Worker-side task body: fire scheduled faults, then run the unit.

    Runs inside a worker process; an injected crash hard-exits here and
    the parent observes the lost task exactly as it would a SIGKILLed
    worker.  With ``timed`` (parent is tracing) the return value is
    ``(result, (pid, start, end))`` — ``perf_counter`` readings on the
    system-wide monotonic clock, so the parent can graft this task onto
    its trace timeline and derive queue wait from its dispatch time.
    """
    if not timed:
        if plan is not None:
            plan.apply(index, attempt)
        return fn(payload)
    started = time.perf_counter()
    if plan is not None:
        plan.apply(index, attempt)
    # A forked worker inherits the parent's ambient trace contextvar;
    # spans recorded into that dead copy would be pure overhead.
    with suppress_tracing():
        result = fn(payload)
    return result, (os.getpid(), started, time.perf_counter())


class WorkerPool:
    """A lazily spawned, supervised process pool with an inline serial mode.

    Args:
        num_workers: degree of parallelism; ``None`` reads
            ``REPRO_WORKERS``, ``<= 0`` means one per CPU, and ``1`` is
            the guaranteed-inline serial mode.  Counts above
            ``os.cpu_count()`` are capped.
    """

    def __init__(self, num_workers: int | None = None):
        self.num_workers = resolve_num_workers(num_workers)
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_failures = 0
        self._degraded_reason: str | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        return self.num_workers > 1 and self._degraded_reason is None

    @property
    def processes_spawned(self) -> bool:
        """Whether any worker process actually exists (tested contract)."""
        return self._pool is not None

    @property
    def degraded_reason(self) -> str | None:
        """Why the pool permanently fell back to inline execution, if it did."""
        return self._degraded_reason

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = multiprocessing.get_context(_start_method())
            self._pool = context.Pool(processes=self.num_workers)
        return self._pool

    def _worker_pids(self) -> tuple[int, ...]:
        if self._pool is None:
            return ()
        return tuple(sorted(proc.pid for proc in self._pool._pool))

    def shutdown(self) -> None:
        """Terminate worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _restart_pool(self, supervision: Supervision) -> None:
        """Tear down a failed pool and sweep segments dead workers left."""
        from repro.parallel.shm import sweep_orphans

        self.shutdown()
        supervision.report.pool_restarts += 1
        supervision.report.swept_segments += len(sweep_orphans())

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):
        try:
            self.shutdown()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        supervision: Supervision | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every payload, preserving order, supervised.

        Runs inline when serial, permanently degraded, when there is at
        most one payload, or when a payload refuses to pickle; fans out
        otherwise.  Transient failures (worker crashes, task timeouts)
        are retried per ``supervision.policy``; with
        ``supervision.allow_partial`` the slots of units that exhausted
        their retries hold :data:`~repro.parallel.supervise.TASK_FAILED`
        instead of raising.
        """
        payloads = list(payloads)
        supervision = supervision or Supervision.default()
        if (
            not self.is_parallel
            or len(payloads) <= 1
            or supervision.expired()
        ):
            return run_supervised_inline(fn, payloads, supervision)
        plan = supervision.plan
        if plan is not None and plan.fails_pickling():
            supervision.report.note_fallback(
                "injected pickling failure; ran inline"
            )
            return run_supervised_inline(fn, payloads, supervision)
        try:
            pickle.dumps((fn, payloads), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Unpicklable work (user lambdas / closures): identical
            # results inline, just without the fan-out.
            logger.info(
                "payloads for %s are not picklable; running %d task(s) inline",
                getattr(fn, "__name__", fn),
                len(payloads),
            )
            return run_supervised_inline(fn, payloads, supervision)
        return self._map_parallel(fn, payloads, supervision)

    def _task_patience(self, supervision: Supervision) -> Optional[float]:
        patience = supervision.task_patience()
        if patience is None and supervision.plan is not None:
            # A fault plan without an explicit deadline still needs hang
            # detection, or an injected crash would block get() forever.
            return DEFAULT_CRASH_DETECTION_SECONDS
        return patience

    def _await_hedged(
        self,
        pool: multiprocessing.pool.Pool,
        fn: Callable[[Any], Any],
        payload: Any,
        index: int,
        attempt: int,
        timed: bool,
        dispatched: dict,
        dispatch_at: dict[int, float],
        observed: set[int],
        supervision: Supervision,
        durations: list[float],
        hedge_budget: dict,
    ) -> tuple[Any, bool]:
        """Await one task, hedging it with a backup if it straggles.

        Polls the primary dispatch in cancellation-sized slices exactly
        like :func:`_await_result`; once the wait exceeds the hedge
        policy's straggler threshold (derived from this round's
        completed durations), the *same unit* — same payload, same
        index, hence the same per-unit RNG stream — is dispatched again
        as a backup and whichever attempt finishes first supplies the
        result.  Bit-identity is by construction: both attempts compute
        the same deterministic function of the same payload.

        The backup runs with attempt number ``HEDGE_ATTEMPT_BASE +
        attempt`` so first-attempt-bound injected faults (the usual
        cause of the straggle) do not re-fire on it.  A backup that
        itself fails is simply abandoned — the primary, its timeout,
        and the retry ladder still stand; hedging can only add a faster
        path, never remove one.

        Tasks are awaited in dispatch order, so while index ``i``
        straggles, later peers may already have finished in the
        background; each poll slice scans them (``dispatched`` /
        ``dispatch_at`` / ``observed``) and folds their wall times into
        ``durations`` — otherwise an early straggler would starve the
        threshold of observations and never get hedged.

        Returns ``(outcome, from_hedge)``; raises
        :class:`multiprocessing.TimeoutError` when patience runs out
        with neither attempt finished.
        """
        policy = supervision.policy.hedge
        patience = self._task_patience(supervision)
        deadline = (
            None if patience is None else time.monotonic() + patience
        )
        primary = dispatched[index]
        dispatched_at = dispatch_at[index]
        backup = None
        trace = current_trace() if timed else None
        while True:
            supervision.check_cancelled()
            if deadline is None:
                slice_seconds = CANCEL_POLL_SECONDS
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise multiprocessing.TimeoutError()
                slice_seconds = min(CANCEL_POLL_SECONDS, remaining)
            try:
                return primary.get(timeout=slice_seconds), False
            except multiprocessing.TimeoutError:
                pass
            for peer_index, peer in dispatched.items():
                if (
                    peer_index != index
                    and peer_index not in observed
                    and peer.ready()
                ):
                    observed.add(peer_index)
                    durations.append(
                        time.perf_counter() - dispatch_at[peer_index]
                    )
            if backup is not None:
                if backup.ready():
                    try:
                        outcome = backup.get(timeout=0)
                    except Exception as error:
                        # The backup died too; forget it and keep
                        # waiting on the primary (and the timeout).
                        logger.warning(
                            "hedged backup for task %d failed: %s",
                            index,
                            error,
                        )
                        backup = None
                    else:
                        supervision.report.hedges_won += 1
                        METRICS.counter("pool.hedge_wins").inc()
                        if trace is not None:
                            trace.add_event(
                                "hedge_won", index=index, attempt=attempt
                            )
                        return outcome, True
            elif policy is not None and hedge_budget["remaining"] > 0:
                threshold = policy.threshold_seconds(durations)
                waited = time.perf_counter() - dispatched_at
                if threshold is not None and waited >= threshold:
                    backup = pool.apply_async(
                        _invoke_task,
                        (
                            fn,
                            payload,
                            supervision.plan,
                            index,
                            HEDGE_ATTEMPT_BASE + attempt,
                            timed,
                        ),
                    )
                    hedge_budget["remaining"] -= 1
                    supervision.report.hedges_launched += 1
                    METRICS.counter("pool.hedges").inc()
                    logger.info(
                        "hedging straggler task %d after %.3fs "
                        "(threshold %.3fs)",
                        index,
                        waited,
                        threshold,
                    )
                    if trace is not None:
                        trace.add_event(
                            "task_hedged",
                            index=index,
                            attempt=attempt,
                            waited_s=round(waited, 6),
                            threshold_s=round(threshold, 6),
                        )

    def _map_parallel(
        self,
        fn: Callable[[Any], Any],
        payloads: list[Any],
        supervision: Supervision,
    ) -> list[Any]:
        policy = supervision.policy
        report = supervision.report
        trace = current_trace()
        timed = trace is not None
        results: list[Any] = [TASK_FAILED] * len(payloads)
        pending = list(range(len(payloads)))
        errors: dict[int, Exception] = {}
        report.tasks_attempted += len(payloads)

        for attempt in range(policy.max_task_retries + 1):
            if not pending or self._degraded_reason is not None:
                break
            if attempt > 0:
                backoff = backoff_seconds(policy, attempt, pending[0])
                if supervision.deadline_precludes_retry(backoff):
                    # The caller's (token or query) deadline fires
                    # before the backoff ends — the retry round could
                    # never complete for a caller that still cares.
                    report.deadline_hit = True
                    break
                report.task_retries += len(pending)
                logger.warning(
                    "retrying %d task(s) (attempt %d): %s",
                    len(pending),
                    attempt,
                    errors.get(pending[0]),
                )
                supervision.sleep(backoff)
            if supervision.expired():
                report.deadline_hit = True
                break
            pool = self._ensure_pool()
            pids_before = self._worker_pids()
            dispatched = {}
            dispatch_at = {}
            for index in pending:
                dispatch_at[index] = time.perf_counter()
                dispatched[index] = pool.apply_async(
                    _invoke_task,
                    (
                        fn,
                        payloads[index],
                        supervision.plan,
                        index,
                        attempt,
                        timed,
                    ),
                )
            failed: list[int] = []
            pool_failure = False
            # Completed-slot wall times this round feed the hedge
            # policy's straggler threshold; the budget caps redundant
            # backups per round.
            durations: list[float] = []
            observed: set[int] = set()
            hedge_budget = {
                "remaining": (
                    policy.hedge.max_hedges
                    if policy.hedge is not None
                    else 0
                )
            }
            for index in pending:
                try:
                    outcome, from_hedge = self._await_hedged(
                        pool,
                        fn,
                        payloads[index],
                        index,
                        attempt,
                        timed,
                        dispatched,
                        dispatch_at,
                        observed,
                        supervision,
                        durations,
                        hedge_budget,
                    )
                    if not from_hedge and index not in observed:
                        observed.add(index)
                        durations.append(
                            time.perf_counter() - dispatch_at[index]
                        )
                    if timed:
                        outcome, (pid, t_start, t_end) = outcome
                        trace.add_span(
                            "task",
                            t_start,
                            t_end,
                            pid=pid,
                            index=index,
                            attempt=attempt,
                            outcome="ok",
                            hedged=from_hedge,
                            queue_wait_s=round(
                                max(0.0, t_start - dispatch_at[index]), 6
                            ),
                        )
                    results[index] = outcome
                    report.tasks_completed += 1
                except multiprocessing.TimeoutError:
                    # A hung worker and a crashed worker both present as
                    # a result that never arrives; a changed worker-pid
                    # set identifies the crash.  The baseline is
                    # refreshed after each classification so one crash
                    # does not make every later hang look like a crash.
                    pool_failure = True
                    pids_now = self._worker_pids()
                    if pids_now != pids_before:
                        pids_before = pids_now
                        report.worker_crashes += 1
                        errors[index] = WorkerCrashError(
                            f"task {index} was lost to a crashed worker "
                            f"(attempt {attempt})"
                        )
                        classification = "crash"
                    else:
                        report.task_timeouts += 1
                        errors[index] = TaskTimeoutError(
                            f"task {index} exceeded its deadline "
                            f"(attempt {attempt})"
                        )
                        classification = "timeout"
                    logger.warning(
                        "task %d lost to worker %s (attempt %d)",
                        index,
                        classification,
                        attempt,
                    )
                    if timed:
                        trace.add_event(
                            "task_lost",
                            index=index,
                            attempt=attempt,
                            outcome=classification,
                        )
                    failed.append(index)
                except (WorkerCrashError, TaskTimeoutError) as error:
                    # Transient error raised by the task body itself
                    # (e.g. an injected fault on a non-fork platform).
                    if isinstance(error, WorkerCrashError):
                        report.worker_crashes += 1
                        classification = "crash"
                    else:
                        report.task_timeouts += 1
                        classification = "timeout"
                    logger.warning(
                        "task %d raised transient %s (attempt %d): %s",
                        index,
                        classification,
                        attempt,
                        error,
                    )
                    if timed:
                        trace.add_event(
                            "task_lost",
                            index=index,
                            attempt=attempt,
                            outcome=classification,
                        )
                    errors[index] = error
                    failed.append(index)
                # Any other exception is deterministic task-body failure:
                # it propagates immediately, exactly as before supervision.
            if pool_failure:
                self._pool_failures += 1
                logger.warning(
                    "restarting worker pool after failure %d/%d",
                    self._pool_failures,
                    policy.max_pool_failures,
                )
                self._restart_pool(supervision)
                if timed:
                    trace.add_event(
                        "pool_restart", failures=self._pool_failures
                    )
                if self._pool_failures >= policy.max_pool_failures:
                    self._degraded_reason = (
                        f"pool failed {self._pool_failures} consecutive "
                        "times (crashed or hung workers); running inline "
                        "for the rest of the session"
                    )
                    report.degraded_to_inline = True
                    report.note_fallback(self._degraded_reason)
                    logger.error("%s", self._degraded_reason)
                    if timed:
                        trace.add_event("pool_degraded")
            else:
                self._pool_failures = 0
            pending = failed

        if pending and self._degraded_reason is not None:
            # Terminal degradation: finish the remaining units inline
            # (attempt counters continue; they were already counted).
            inline = run_supervised_inline(
                fn,
                [payloads[index] for index in pending],
                supervision,
                indices=pending,
                count_attempts=False,
            )
            for index, outcome in zip(pending, inline):
                results[index] = outcome
            pending = []

        for index in pending:
            error = errors.get(
                index, TaskTimeoutError("query deadline exceeded")
            )
            results[index] = _fail_pending(supervision, index, error)
        return results


def _fail_pending(
    supervision: Supervision, index: int, error: Exception
) -> Any:
    from repro.parallel.supervise import _fail_unit

    return _fail_unit(supervision, index, error)


@contextmanager
def pool_scope(
    pool: "WorkerPool | int | None",
) -> "Iterator[WorkerPool | None]":
    """Normalise a ``pool=`` argument for the duration of one operation.

    ``WorkerPool`` instances pass through (caller owns their lifetime);
    integers create a pool scoped to the ``with`` block; ``None`` and
    serial counts yield ``None`` so call sites can skip the
    shared-memory arena entirely.
    """
    if isinstance(pool, WorkerPool):
        yield pool if pool.is_parallel else None
        return
    if pool is None:
        yield None
        return
    resolved = resolve_num_workers(int(pool))
    if resolved <= 1:
        yield None
        return
    scoped = WorkerPool(resolved)
    try:
        yield scoped
    finally:
        scoped.shutdown()
