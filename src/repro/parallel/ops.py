"""Fanned-out implementations of the hot loops of the reproduction.

Each operation here is one of the embarrassingly parallel loops the
paper identifies (§5.1, §6): bootstrap replicate computation, black-box
resample-table statistics, the diagnostic's p×k independent subsample
evaluations, and ground-truth trial sampling.  All four share the same
structure:

1. the caller supplies a root seed (one draw from its generator — see
   :func:`repro.parallel.rng.seed_from_rng`);
2. the work is cut into *logical units* whose layout depends only on
   the workload, and unit ``i`` is bound to child RNG stream ``i``;
3. with a parallel :class:`~repro.parallel.pool.WorkerPool`, the big
   arrays go into shared memory once and units are dispatched in small
   batches; without one, the very same unit kernels run inline.

Because serial and parallel execution run identical kernels on
identical streams, results are **bit-identical at any worker count** —
the property the determinism tests enforce.

Every operation optionally takes a
:class:`~repro.parallel.supervise.Supervision` context.  Under
supervision, failed or timed-out units are retried (same child stream →
same values); with ``allow_partial`` the units that stay failed are
*dropped* rather than fatal, and the operation returns what completed —
recording the shortfall in the
:class:`~repro.parallel.supervise.ExecutionReport` so the caller can
widen error bars honestly.  A failed shared-memory allocation degrades
to embedding the arrays in the task payloads (slower, still correct).
"""

from __future__ import annotations

import contextlib
import logging
from collections.abc import Callable, Sequence
from typing import Any, Optional

import numpy as np

from repro.core.estimators import EstimationTarget, resample_estimates_kernel
from repro.core.grouped import (
    GroupedTarget,
    grouped_closed_form_intervals,
    grouped_half_widths,
    grouped_resample_estimates_kernel,
)
from repro.engine.aggregates import GroupIndex
from repro.engine.table import Table
from repro.errors import EstimationError, ExecutionError
from repro.obs.metrics import METRICS
from repro.obs.trace import trace_span
from repro.parallel.pool import WorkerPool
from repro.parallel.rng import chunk_spans, seed_from_rng, spawn_children
from repro.parallel.shm import SharedArena, detach, resolve
from repro.parallel.supervise import (
    TASK_FAILED,
    Supervision,
    run_supervised_inline,
)
from repro.sampling.poisson import (
    chunked_weight_streams,
    materialize_poisson_resample,
    poisson_weight_matrix,
)
from repro.sampling.tuple_augmentation import materialize_exact_resample

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_REPLICATE_CHUNK",
    "DEFAULT_TRIAL_CHUNK",
    "DEFAULT_UNIT_BATCH",
    "bootstrap_replicates",
    "diagnostic_evaluations",
    "ground_truth_trials",
    "grouped_bootstrap_replicates",
    "grouped_diagnostic_evaluations",
    "resolve_table",
    "share_table",
    "table_statistic_replicates",
]

#: Bootstrap replicates per chunk (and per child RNG stream).  Part of
#: the determinism contract: changing it changes the streams, so it is
#: a constant of the scheme, never derived from the worker count.
DEFAULT_REPLICATE_CHUNK = 8

#: Ground-truth trials per dispatch chunk (one stream per trial, so
#: this one is pure batching and only affects IPC overhead).
DEFAULT_TRIAL_CHUNK = 16

#: Diagnostic subsample evaluations per dispatch batch (one stream per
#: subsample; batching is IPC-only).
DEFAULT_UNIT_BATCH = 4


def _usable(pool: WorkerPool | None) -> bool:
    return pool is not None and pool.is_parallel


def _concurrency(pool: WorkerPool | None) -> int:
    return pool.num_workers if _usable(pool) else 1


def _reserve_memory(supervision: Supervision, nbytes: int, label: str):
    """One consolidated reservation for an operation's full footprint.

    Reserving everything up front — shared arrays, per-worker scratch
    matrices, and the result buffer together — is what guarantees a
    budget rejection can only happen *before* any allocation, never
    after a partial one.  Without a governing accountant this is free.
    """
    memory = getattr(supervision, "memory", None)
    if memory is None or nbytes <= 0:
        return contextlib.nullcontext()
    return memory.reserve(
        int(nbytes),
        label,
        wait_seconds=supervision.memory_wait_seconds,
        cancel=supervision.cancel_token(),
    )


def _apply_replicate_cap(
    num_resamples: int,
    chunk_size: int,
    replicate_cap: Optional[int],
    supervision: Supervision,
) -> int:
    """Cap the resample count at a whole-chunk boundary.

    Chunk ``i`` always consumes child stream ``i`` and NumPy fills each
    chunk's weight matrix in one draw, so only *whole leading chunks*
    of the requested run are bit-identical to an ungoverned run.  The
    cap therefore rounds down to a chunk multiple (but never below one
    chunk); the caller's estimator widens the interval for the missing
    replicates exactly as it does for dropped chunks.
    """
    if replicate_cap is None or replicate_cap >= num_resamples:
        return num_resamples
    if replicate_cap <= 0:
        raise ValueError(
            f"replicate_cap must be positive, got {replicate_cap}"
        )
    whole = max(1, replicate_cap // chunk_size) * chunk_size
    effective = min(num_resamples, whole)
    supervision.report.note_degradation(
        f"replicate budget capped the bootstrap at {effective} of "
        f"{num_resamples} requested resamples; interval widened to match"
    )
    return effective


def _share_or_embed(
    arena: SharedArena, array: np.ndarray, supervision: Supervision
) -> Any:
    """Share through the arena, or embed the array on allocation failure.

    An embedded array travels (pickled) with every task payload — the
    pre-shared-memory cost model — which is strictly slower but still
    correct, so shm exhaustion degrades throughput, never answers.
    """
    try:
        return arena.share(array)
    except (ExecutionError, OSError, MemoryError) as error:
        logger.warning(
            "shared-memory allocation failed (%s); embedding a %d-byte "
            "array in task payloads instead",
            error,
            array.nbytes,
        )
        supervision.report.note_fallback(
            "shared-memory allocation failed; arrays embedded in task "
            "payloads"
        )
        return np.ascontiguousarray(array)


def _keep_completed(
    parts: list[Any], total_label: str, supervision: Supervision
) -> list[Any]:
    """Drop failed units, recording the shortfall; fail if nothing survived."""
    kept = [part for part in parts if part is not TASK_FAILED]
    if not parts:
        return kept
    if not kept:
        raise ExecutionError(
            f"all {len(parts)} {total_label} failed; nothing completed"
        )
    if len(kept) < len(parts):
        supervision.report.note_degradation(
            f"{len(parts) - len(kept)} of {len(parts)} {total_label} "
            "failed; result computed from completed units only"
        )
    return kept


# ---------------------------------------------------------------------------
# Table sharing helpers
# ---------------------------------------------------------------------------
def share_table(
    arena: SharedArena,
    table: Table,
    supervision: Supervision | None = None,
) -> dict[str, Any]:
    """Export every column of ``table`` through ``arena``.

    Numeric and fixed-width columns become shared-memory refs;
    object-dtype columns ride along as plain arrays.  With a
    supervision context, allocation failures degrade to embedding the
    column in the payload instead of failing the operation.
    """
    if supervision is None:
        return {
            name: arena.share(col) for name, col in table.columns().items()
        }
    return {
        name: _share_or_embed(arena, col, supervision)
        for name, col in table.columns().items()
    }


def resolve_table(
    refs: dict[str, Any],
    segments: list,
    name: str | None = None,
) -> Table:
    """Rebuild a (read-only, zero-copy) table from shared column refs."""
    return Table(
        {col: resolve(ref, segments) for col, ref in refs.items()}, name=name
    )


# ---------------------------------------------------------------------------
# Bootstrap replicates: the consolidated weight-matrix fast path
# ---------------------------------------------------------------------------
def _replicate_chunk_kernel(
    matched: np.ndarray,
    aggregate,
    count: int,
    child: np.random.SeedSequence,
    *,
    extensive: bool,
    dataset_rows: Optional[int],
    total_rows: int,
    rate: float,
) -> np.ndarray:
    rng = np.random.default_rng(child)
    weights = poisson_weight_matrix(
        len(matched), count, rng, rate, dtype=np.int32
    )
    return np.asarray(
        resample_estimates_kernel(
            matched,
            aggregate,
            weights,
            rng,
            extensive=extensive,
            dataset_rows=dataset_rows,
            total_sample_rows=total_rows,
        ),
        dtype=np.float64,
    )


def _replicate_chunk_task(payload: dict) -> np.ndarray:
    segments: list = []
    try:
        matched = resolve(payload["values"], segments)
        return _replicate_chunk_kernel(
            matched,
            payload["aggregate"],
            payload["count"],
            payload["child"],
            extensive=payload["extensive"],
            dataset_rows=payload["dataset_rows"],
            total_rows=payload["total_rows"],
            rate=payload["rate"],
        )
    finally:
        detach(segments)


def bootstrap_replicates(
    target: EstimationTarget,
    num_resamples: int,
    seed: int,
    *,
    rate: float = 1.0,
    chunk_size: int = DEFAULT_REPLICATE_CHUNK,
    pool: WorkerPool | None = None,
    supervision: Supervision | None = None,
    replicate_cap: Optional[int] = None,
) -> np.ndarray:
    """The K Poissonized bootstrap replicate estimates for ``target``.

    Chunk ``i`` of ``chunk_size`` resamples always consumes child
    stream ``i`` of ``seed``; the returned distribution is therefore
    independent of ``pool``.  Under supervision with partial results
    allowed, chunks that fail after retries are dropped and the
    distribution holds the replicates that completed (the report
    records the shortfall); if *every* chunk fails,
    :class:`~repro.errors.ExecutionError` is raised.  A
    ``replicate_cap`` (the governor's reduced-K rung) truncates the run
    at a whole-chunk boundary, so the replicates that *are* computed
    stay bit-identical to the leading chunks of an uncapped run.
    """
    supervision = supervision or Supervision.default()
    supervision.check_cancelled()
    matched = target.matched_values
    if len(matched) == 0:
        raise EstimationError(
            "cannot bootstrap a query whose filter matched no sample rows"
        )
    supervision.report.replicates_requested += num_resamples
    num_resamples = _apply_replicate_cap(
        num_resamples, chunk_size, replicate_cap, supervision
    )
    spans = chunk_spans(num_resamples, chunk_size)
    children = spawn_children(seed, len(spans))
    common = dict(
        extensive=target.extensive,
        dataset_rows=target.dataset_rows,
        total_rows=target.total_sample_rows,
        rate=rate,
    )
    # Full footprint, reserved before anything is allocated: the shared
    # copy of the matched values (pool path), one int32 weight matrix
    # per concurrently executing chunk, and the float64 result buffer.
    parallel = _usable(pool)
    footprint = (
        (matched.nbytes if parallel else 0)
        + _concurrency(pool) * len(matched) * chunk_size * 4
        + num_resamples * 8
    )
    with _reserve_memory(
        supervision, footprint, "bootstrap replicates"
    ), trace_span(
        "bootstrap.replicates",
        resamples=num_resamples,
        chunks=len(spans),
        parallel=parallel,
    ):
        if not _usable(pool):

            def unit(args):
                (start, stop), child = args
                return _replicate_chunk_kernel(
                    matched, target.aggregate, stop - start, child, **common
                )

            parts = run_supervised_inline(
                unit, list(zip(spans, children)), supervision
            )
        else:
            with SharedArena(fault_plan=supervision.plan) as arena:
                shared_values = _share_or_embed(
                    arena, np.ascontiguousarray(matched), supervision
                )
                payloads = [
                    {
                        "values": shared_values,
                        "aggregate": target.aggregate,
                        "count": stop - start,
                        "child": child,
                        **common,
                    }
                    for (start, stop), child in zip(spans, children)
                ]
                parts = pool.map(_replicate_chunk_task, payloads, supervision)
        kept = _keep_completed(
            parts, "bootstrap replicate chunks", supervision
        )
        out = np.concatenate(kept)
    supervision.report.replicates_completed += len(out)
    METRICS.counter("bootstrap.replicates").inc(len(out))
    return out


# ---------------------------------------------------------------------------
# Grouped bootstrap replicates: one weight matrix serves every group
# ---------------------------------------------------------------------------
def _grouped_chunk_kernel(
    matched: np.ndarray,
    index: GroupIndex,
    aggregate,
    count: int,
    child: np.random.SeedSequence,
    *,
    extensive: bool,
    dataset_rows: Optional[int],
    total_rows: int,
    rate: float,
    mode: str,
) -> np.ndarray:
    # One (m, count) weight matrix shared by all groups, plus the
    # chunk's continuing stream for the extensive unmatched-total draws.
    ((weights, rng),) = chunked_weight_streams(
        len(matched), [count], [child], rate
    )
    return np.asarray(
        grouped_resample_estimates_kernel(
            matched,
            index,
            aggregate,
            weights,
            rng,
            extensive=extensive,
            dataset_rows=dataset_rows,
            total_sample_rows=total_rows,
            mode=mode,
        ),
        dtype=np.float64,
    )


def _grouped_chunk_task(payload: dict) -> np.ndarray:
    segments: list = []
    try:
        matched = resolve(payload["values"], segments)
        index = GroupIndex.from_parts(
            resolve(payload["group_ids"], segments),
            payload["num_groups"],
            resolve(payload["order"], segments),
            resolve(payload["counts"], segments),
            resolve(payload["starts"], segments),
        )
        return _grouped_chunk_kernel(
            matched,
            index,
            payload["aggregate"],
            payload["count"],
            payload["child"],
            extensive=payload["extensive"],
            dataset_rows=payload["dataset_rows"],
            total_rows=payload["total_rows"],
            rate=payload["rate"],
            mode=payload["mode"],
        )
    finally:
        detach(segments)


def grouped_bootstrap_replicates(
    target: GroupedTarget,
    num_resamples: int,
    seed: int,
    *,
    rate: float = 1.0,
    chunk_size: int = DEFAULT_REPLICATE_CHUNK,
    pool: WorkerPool | None = None,
    supervision: Supervision | None = None,
    replicate_cap: Optional[int] = None,
    mode: str = "segmented",
) -> np.ndarray:
    """The ``(G, K)`` bootstrap replicate matrix for every group at once.

    The grouped counterpart of :func:`bootstrap_replicates`: the fan-out
    is over *replicate chunks*, never over groups, and chunk ``i`` of
    ``chunk_size`` resample columns always consumes child stream ``i``
    of ``seed`` — so the result is bit-identical at any worker count,
    and column-aligned across groups (column ``k`` of every group comes
    from the same shared weight matrix).  Supervision semantics match
    :func:`bootstrap_replicates`: failed chunks drop whole columns (for
    all groups alike), the report records the shortfall, and
    ``replicate_cap`` truncates at a whole-chunk boundary.
    """
    supervision = supervision or Supervision.default()
    supervision.check_cancelled()
    matched = target.matched_values
    if len(matched) == 0:
        raise EstimationError(
            "cannot bootstrap a query whose filter matched no sample rows"
        )
    index = target.group_index
    num_groups = index.num_groups
    supervision.report.replicates_requested += num_resamples
    num_resamples = _apply_replicate_cap(
        num_resamples, chunk_size, replicate_cap, supervision
    )
    spans = chunk_spans(num_resamples, chunk_size)
    children = spawn_children(seed, len(spans))
    common = dict(
        extensive=target.extensive,
        dataset_rows=target.dataset_rows,
        total_rows=target.total_sample_rows,
        rate=rate,
        mode=mode,
    )
    # Full footprint: the shared matched values plus the group-index
    # arrays (pool path), one int32 weight matrix and one (G, chunk)
    # scratch block per concurrently executing chunk, and the (G, K)
    # float64 result.
    parallel = _usable(pool)
    index_bytes = (
        index.group_ids.nbytes
        + index.order.nbytes
        + index.counts.nbytes
        + index.starts.nbytes
    )
    footprint = (
        ((matched.nbytes + index_bytes) if parallel else 0)
        + _concurrency(pool)
        * (len(matched) * chunk_size * 4 + num_groups * chunk_size * 8)
        + num_groups * num_resamples * 8
    )
    with _reserve_memory(
        supervision, footprint, "grouped bootstrap replicates"
    ), trace_span(
        "bootstrap.grouped_replicates",
        groups=num_groups,
        resamples=num_resamples,
        chunks=len(spans),
        parallel=parallel,
    ):
        if not _usable(pool):

            def unit(args):
                (start, stop), child = args
                return _grouped_chunk_kernel(
                    matched, index, target.aggregate, stop - start, child,
                    **common,
                )

            parts = run_supervised_inline(
                unit, list(zip(spans, children)), supervision
            )
        else:
            with SharedArena(fault_plan=supervision.plan) as arena:
                shared = {
                    "values": _share_or_embed(
                        arena, np.ascontiguousarray(matched), supervision
                    ),
                    "group_ids": _share_or_embed(
                        arena,
                        np.ascontiguousarray(index.group_ids),
                        supervision,
                    ),
                    "order": _share_or_embed(
                        arena, np.ascontiguousarray(index.order), supervision
                    ),
                    "counts": _share_or_embed(
                        arena, np.ascontiguousarray(index.counts), supervision
                    ),
                    "starts": _share_or_embed(
                        arena, np.ascontiguousarray(index.starts), supervision
                    ),
                    "num_groups": num_groups,
                    "aggregate": target.aggregate,
                    **common,
                }
                payloads = [
                    {**shared, "count": stop - start, "child": child}
                    for (start, stop), child in zip(spans, children)
                ]
                parts = pool.map(_grouped_chunk_task, payloads, supervision)
        kept = _keep_completed(
            parts, "grouped bootstrap replicate chunks", supervision
        )
        out = np.concatenate(kept, axis=1)
    supervision.report.replicates_completed += out.shape[1]
    METRICS.counter("bootstrap.replicates").inc(out.shape[1])
    return out


def _grouped_replicates_seeded(
    target: GroupedTarget,
    num_resamples: int,
    seed: int,
    *,
    rate: float,
    chunk_size: int,
    mode: str,
) -> np.ndarray:
    """Inline chunked grouped replicates (the diagnostic's inner loop).

    Same chunk/stream layout as :func:`grouped_bootstrap_replicates`, so
    a diagnostic subsample evaluation produces the same replicates no
    matter which worker runs it.
    """
    matched = target.matched_values
    if len(matched) == 0:
        raise EstimationError(
            "cannot bootstrap a query whose filter matched no sample rows"
        )
    index = target.group_index
    spans = chunk_spans(num_resamples, chunk_size)
    children = spawn_children(seed, len(spans))
    parts = [
        _grouped_chunk_kernel(
            matched,
            index,
            target.aggregate,
            stop - start,
            child,
            extensive=target.extensive,
            dataset_rows=target.dataset_rows,
            total_rows=target.total_sample_rows,
            rate=rate,
            mode=mode,
        )
        for (start, stop), child in zip(spans, children)
    ]
    return np.concatenate(parts, axis=1)


def _grouped_diagnostic_unit_kernel(
    target: GroupedTarget,
    estimator_kind: str,
    num_resamples: int,
    confidence: float,
    indices: np.ndarray,
    child: np.random.SeedSequence,
    *,
    rate: float,
    chunk_size: int,
    mode: str,
) -> tuple[np.ndarray, np.ndarray]:
    subsample = target.subset(indices)
    points = subsample.point_estimates()
    rng = np.random.default_rng(child)
    num_groups = target.num_groups
    try:
        if estimator_kind == "closed_form":
            __, half_widths = grouped_closed_form_intervals(
                subsample, confidence
            )
        else:
            replicates = _grouped_replicates_seeded(
                subsample,
                num_resamples,
                seed_from_rng(rng),
                rate=rate,
                chunk_size=chunk_size,
                mode=mode,
            )
            half_widths, __ = grouped_half_widths(
                replicates, points, confidence
            )
    except EstimationError:
        # ξ can fail on a whole subsample (e.g. a selective filter leaves
        # no matched rows at all); every group's NaN counts against π.
        half_widths = np.full(num_groups, np.nan)
    # Groups with no matched rows in this subsample are per-group ξ
    # failures (the per-group path would raise there): NaN, not a number
    # from an empty resample.
    empty = ~subsample.group_index.nonempty
    if empty.any():
        half_widths = np.where(empty, np.nan, half_widths)
    return np.asarray(points, dtype=np.float64), np.asarray(
        half_widths, dtype=np.float64
    )


def _grouped_diagnostic_batch_task(
    payload: dict,
) -> list[tuple[np.ndarray, np.ndarray]]:
    segments: list = []
    try:
        mask_ref = payload["mask"]
        target = GroupedTarget(
            values=resolve(payload["values"], segments),
            group_ids=resolve(payload["group_ids"], segments),
            num_groups=payload["num_groups"],
            aggregate=payload["aggregate"],
            mask=(
                None if mask_ref is None else resolve(mask_ref, segments)
            ),
            dataset_rows=payload["dataset_rows"],
            extensive=payload["extensive"],
        )
        order = resolve(payload["order"], segments)
        return [
            _grouped_diagnostic_unit_kernel(
                target,
                payload["estimator_kind"],
                payload["num_resamples"],
                payload["confidence"],
                order[start:stop],
                child,
                rate=payload["rate"],
                chunk_size=payload["chunk_size"],
                mode=payload["mode"],
            )
            for (start, stop), child in payload["units"]
        ]
    finally:
        detach(segments)


def grouped_diagnostic_evaluations(
    target: GroupedTarget,
    estimator_kind: str,
    num_resamples: int,
    confidence: float,
    blocks: Sequence[np.ndarray],
    seed: int,
    *,
    rate: float = 1.0,
    chunk_size: int = DEFAULT_REPLICATE_CHUNK,
    pool: WorkerPool | None = None,
    unit_batch: int = DEFAULT_UNIT_BATCH,
    supervision: Supervision | None = None,
    mode: str = "segmented",
) -> tuple[np.ndarray, np.ndarray]:
    """Per-subsample, per-group diagnostic evaluations in one pass.

    The grouped counterpart of :func:`diagnostic_evaluations`: each of
    the ``p`` disjoint subsamples is one unit (child stream ``j`` for
    subsample ``j``, exactly as in the ungrouped layout) and evaluates
    *every* group's point estimate and ξ half-width from one shared
    weight matrix per inner chunk.  ``estimator_kind`` selects the ξ
    under diagnosis: ``"bootstrap"`` (inner chunked grouped replicates)
    or ``"closed_form"`` (segmented CLT half-widths).

    Returns:
        ``(points, half_widths)`` of shape ``(p', G)`` where ``p'`` is
        the number of subsamples that completed (failed units are
        dropped under supervision, as in the ungrouped path).  NaN
        half-width cells mark per-group ξ failures and count against
        the closeness proportion π.
    """
    if estimator_kind not in ("bootstrap", "closed_form"):
        raise EstimationError(
            f"unknown grouped diagnostic estimator kind {estimator_kind!r}"
        )
    supervision = supervision or Supervision.default()
    supervision.check_cancelled()
    blocks = list(blocks)
    children = spawn_children(seed, len(blocks))
    supervision.report.subsamples_requested += len(blocks)
    parallel = _usable(pool)
    num_groups = target.num_groups
    # Footprint: shared value/group-id/mask/order arrays (pool path)
    # plus, per concurrent unit, one subsample copy and its inner
    # chunked weight matrix and (G, K) replicate block.
    max_block = max((len(block) for block in blocks), default=0)
    shared_bytes = 0
    if parallel:
        shared_bytes = (
            target.values.nbytes
            + target.group_ids.nbytes
            + sum(len(block) * 8 for block in blocks)
        )
        if target.mask is not None:
            shared_bytes += target.mask.nbytes
    per_unit = max_block * (16 + chunk_size * 4)
    if estimator_kind == "bootstrap":
        per_unit += num_groups * num_resamples * 8
    footprint = (
        shared_bytes
        + _concurrency(pool) * per_unit
        + len(blocks) * num_groups * 16
    )
    with _reserve_memory(
        supervision, footprint, "grouped diagnostic evaluations"
    ), trace_span(
        "diagnostic.grouped_evaluations",
        subsamples=len(blocks),
        groups=num_groups,
        estimator=estimator_kind,
        parallel=parallel,
    ):
        if not parallel:

            def unit(args):
                block, child = args
                return _grouped_diagnostic_unit_kernel(
                    target,
                    estimator_kind,
                    num_resamples,
                    confidence,
                    block,
                    child,
                    rate=rate,
                    chunk_size=chunk_size,
                    mode=mode,
                )

            results = run_supervised_inline(
                unit, list(zip(blocks, children)), supervision
            )
            pairs = _keep_completed(
                results, "grouped diagnostic subsample evaluations",
                supervision,
            )
        else:
            order = np.concatenate(blocks) if blocks else np.empty(0, np.int64)
            sizes = [len(block) for block in blocks]
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            units = [
                ((int(offsets[j]), int(offsets[j + 1])), children[j])
                for j in range(len(blocks))
            ]
            with SharedArena(fault_plan=supervision.plan) as arena:
                shared = {
                    "values": _share_or_embed(
                        arena, np.ascontiguousarray(target.values), supervision
                    ),
                    "group_ids": _share_or_embed(
                        arena,
                        np.ascontiguousarray(target.group_ids),
                        supervision,
                    ),
                    "mask": (
                        None
                        if target.mask is None
                        else _share_or_embed(
                            arena,
                            np.ascontiguousarray(target.mask),
                            supervision,
                        )
                    ),
                    "order": _share_or_embed(
                        arena, np.ascontiguousarray(order), supervision
                    ),
                    "num_groups": num_groups,
                    "aggregate": target.aggregate,
                    "dataset_rows": target.dataset_rows,
                    "extensive": target.extensive,
                    "estimator_kind": estimator_kind,
                    "num_resamples": num_resamples,
                    "confidence": confidence,
                    "rate": rate,
                    "chunk_size": chunk_size,
                    "mode": mode,
                }
                payloads = [
                    {**shared, "units": units[i : i + unit_batch]}
                    for i in range(0, len(units), unit_batch)
                ]
                batches = pool.map(
                    _grouped_diagnostic_batch_task, payloads, supervision
                )
            kept_batches = _keep_completed(
                batches, "grouped diagnostic evaluation batches", supervision
            )
            pairs = [pair for batch in kept_batches for pair in batch]
    supervision.report.subsamples_completed += len(pairs)
    if not pairs:
        empty = np.empty((0, num_groups), dtype=np.float64)
        return empty, empty.copy()
    points = np.stack([p for p, __ in pairs])
    half_widths = np.stack([h for __, h in pairs])
    return points, half_widths


# ---------------------------------------------------------------------------
# Black-box per-table statistics (the §5.2 execution model)
# ---------------------------------------------------------------------------
_RESAMPLERS: dict[str, Callable] = {
    "poisson": materialize_poisson_resample,
    "exact": materialize_exact_resample,
}


def _table_chunk_kernel(
    table: Table,
    statistic: Callable[[Table], float],
    method: str,
    count: int,
    child: np.random.SeedSequence,
) -> np.ndarray:
    make_resample = _RESAMPLERS[method]
    rng = np.random.default_rng(child)
    out = np.empty(count, dtype=np.float64)
    for k in range(count):
        out[k] = statistic(make_resample(table, rng))
    return out


def _table_chunk_task(payload: dict) -> np.ndarray:
    segments: list = []
    try:
        table = resolve_table(
            payload["columns"], segments, name=payload["table_name"]
        )
        return _table_chunk_kernel(
            table,
            payload["statistic"],
            payload["method"],
            payload["count"],
            payload["child"],
        )
    finally:
        detach(segments)


def table_statistic_replicates(
    table: Table,
    statistic: Callable[[Table], float],
    num_resamples: int,
    seed: int,
    *,
    method: str = "poisson",
    chunk_size: int = DEFAULT_REPLICATE_CHUNK,
    pool: WorkerPool | None = None,
    supervision: Supervision | None = None,
    replicate_cap: Optional[int] = None,
) -> np.ndarray:
    """K replicate values of a black-box per-table statistic.

    The sample's columns are shared with workers once; each chunk
    materialises its resamples from its own child stream.  Unpicklable
    statistics (lambdas over engine state) silently run inline — same
    streams, same values.  ``replicate_cap`` truncates at a whole-chunk
    boundary, as in :func:`bootstrap_replicates`.
    """
    if method not in _RESAMPLERS:
        raise EstimationError(
            f"unknown resampling method {method!r}; use 'poisson' or 'exact'"
        )
    supervision = supervision or Supervision.default()
    supervision.check_cancelled()
    supervision.report.replicates_requested += num_resamples
    num_resamples = _apply_replicate_cap(
        num_resamples, chunk_size, replicate_cap, supervision
    )
    spans = chunk_spans(num_resamples, chunk_size)
    children = spawn_children(seed, len(spans))
    # Footprint: shared column exports (pool path) plus one materialised
    # resample of the whole table per concurrent chunk, plus results.
    table_bytes = sum(col.nbytes for col in table.columns().values())
    footprint = (
        (table_bytes if _usable(pool) else 0)
        + _concurrency(pool) * table_bytes
        + num_resamples * 8
    )
    with _reserve_memory(
        supervision, footprint, "table-statistic replicates"
    ), trace_span(
        "bootstrap.table_statistic",
        resamples=num_resamples,
        chunks=len(spans),
        method=method,
        parallel=_usable(pool),
    ):
        if not _usable(pool):

            def unit(args):
                (start, stop), child = args
                return _table_chunk_kernel(
                    table, statistic, method, stop - start, child
                )

            parts = run_supervised_inline(
                unit, list(zip(spans, children)), supervision
            )
        else:
            with SharedArena(fault_plan=supervision.plan) as arena:
                columns = share_table(arena, table, supervision)
                payloads = [
                    {
                        "columns": columns,
                        "table_name": table.name,
                        "statistic": statistic,
                        "method": method,
                        "count": stop - start,
                        "child": child,
                    }
                    for (start, stop), child in zip(spans, children)
                ]
                parts = pool.map(_table_chunk_task, payloads, supervision)
        kept = _keep_completed(parts, "table-statistic chunks", supervision)
        out = np.concatenate(kept)
    supervision.report.replicates_completed += len(out)
    METRICS.counter("bootstrap.replicates").inc(len(out))
    return out


# ---------------------------------------------------------------------------
# Diagnostic subsample evaluations (Algorithm 1's p independent units)
# ---------------------------------------------------------------------------
def _diagnostic_unit_kernel(
    target,
    estimator,
    confidence: float,
    indices: np.ndarray,
    child: np.random.SeedSequence,
) -> tuple[float, float]:
    subsample = target.subset(indices)
    point = subsample.point_estimate()
    rng = np.random.default_rng(child)
    try:
        half_width = estimator.estimate(subsample, confidence, rng).half_width
    except EstimationError:
        # ξ can fail on a tiny subsample (e.g. a selective filter leaves
        # < 2 matched rows).  That *is* evidence against reliable
        # estimation at this size: NaN counts against the closeness
        # proportion π.
        half_width = float("nan")
    return float(point), float(half_width)


def _diagnostic_batch_task(payload: dict) -> list[tuple[float, float]]:
    segments: list = []
    try:
        target = EstimationTarget(
            values=resolve(payload["values"], segments),
            aggregate=payload["aggregate"],
            mask=resolve(payload["mask"], segments),
            dataset_rows=payload["dataset_rows"],
            extensive=payload["extensive"],
        )
        order = resolve(payload["order"], segments)
        estimator = payload["estimator"]
        confidence = payload["confidence"]
        return [
            _diagnostic_unit_kernel(
                target, estimator, confidence, order[start:stop], child
            )
            for (start, stop), child in payload["units"]
        ]
    finally:
        detach(segments)


def diagnostic_evaluations(
    target,
    estimator,
    confidence: float,
    blocks: Sequence[np.ndarray],
    seed: int,
    *,
    pool: WorkerPool | None = None,
    unit_batch: int = DEFAULT_UNIT_BATCH,
    supervision: Supervision | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Point estimates and estimated half-widths over disjoint subsamples.

    One child stream per subsample ``j``; batching (``unit_batch``
    units per dispatched task) only amortises IPC and cannot perturb
    results.  Targets that are not array-backed
    :class:`~repro.core.estimators.EstimationTarget` instances (e.g.
    black-box whole-table targets) always evaluate inline.  Under
    supervision with partial results allowed, subsamples whose
    evaluations stay failed after retries are dropped and the
    diagnostic proceeds on the reduced set (fault indices bind to
    subsamples inline and to dispatch batches in a pool).
    """
    supervision = supervision or Supervision.default()
    supervision.check_cancelled()
    blocks = list(blocks)
    children = spawn_children(seed, len(blocks))
    supervision.report.subsamples_requested += len(blocks)
    parallelizable = _usable(pool) and isinstance(target, EstimationTarget)
    # Footprint: the shared value/mask/order arrays (pool path) plus one
    # subsample copy per concurrent evaluation (values + inner bootstrap
    # scratch, bounded by the largest block).
    max_block = max((len(block) for block in blocks), default=0)
    shared_bytes = 0
    if parallelizable:
        shared_bytes = target.values.nbytes + sum(
            len(block) * 8 for block in blocks
        )
        if target.mask is not None:
            shared_bytes += target.mask.nbytes
    footprint = shared_bytes + _concurrency(pool) * max_block * 16
    with _reserve_memory(
        supervision, footprint, "diagnostic evaluations"
    ), trace_span(
        "diagnostic.evaluations",
        subsamples=len(blocks),
        parallel=parallelizable,
    ):
        if not parallelizable:

            def unit(args):
                block, child = args
                return _diagnostic_unit_kernel(
                    target, estimator, confidence, block, child
                )

            results = run_supervised_inline(
                unit, list(zip(blocks, children)), supervision
            )
            pairs = _keep_completed(
                results, "diagnostic subsample evaluations", supervision
            )
        else:
            order = np.concatenate(blocks) if blocks else np.empty(0, np.int64)
            sizes = [len(block) for block in blocks]
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            units = [
                ((int(offsets[j]), int(offsets[j + 1])), children[j])
                for j in range(len(blocks))
            ]
            with SharedArena(fault_plan=supervision.plan) as arena:
                shared = {
                    "values": _share_or_embed(
                        arena, np.ascontiguousarray(target.values), supervision
                    ),
                    "mask": (
                        None
                        if target.mask is None
                        else _share_or_embed(
                            arena,
                            np.ascontiguousarray(target.mask),
                            supervision,
                        )
                    ),
                    "order": _share_or_embed(
                        arena, np.ascontiguousarray(order), supervision
                    ),
                    "aggregate": target.aggregate,
                    "dataset_rows": target.dataset_rows,
                    "extensive": target.extensive,
                    "estimator": estimator,
                    "confidence": confidence,
                }
                payloads = [
                    {**shared, "units": units[i : i + unit_batch]}
                    for i in range(0, len(units), unit_batch)
                ]
                batches = pool.map(
                    _diagnostic_batch_task, payloads, supervision
                )
            kept_batches = _keep_completed(
                batches, "diagnostic evaluation batches", supervision
            )
            pairs = [pair for batch in kept_batches for pair in batch]
    supervision.report.subsamples_completed += len(pairs)
    points = np.array([p for p, _ in pairs], dtype=np.float64)
    half_widths = np.array([h for _, h in pairs], dtype=np.float64)
    return points, half_widths


# ---------------------------------------------------------------------------
# Ground-truth trials (§3 evaluation protocol)
# ---------------------------------------------------------------------------
def _trial_chunk_kernel(
    values: np.ndarray,
    mask: Optional[np.ndarray],
    aggregate,
    *,
    extensive: bool,
    sample_size: int,
    replacement: bool,
    confidence: float,
    estimator,
    children: Sequence[np.random.SeedSequence],
) -> tuple[np.ndarray, np.ndarray]:
    dataset_rows = len(values)
    points = np.empty(len(children), dtype=np.float64)
    half_widths = np.empty(len(children), dtype=np.float64)
    for i, child in enumerate(children):
        rng = np.random.default_rng(child)
        indices = rng.choice(dataset_rows, size=sample_size, replace=replacement)
        target = EstimationTarget(
            values=values[indices],
            aggregate=aggregate,
            mask=None if mask is None else mask[indices],
            dataset_rows=dataset_rows,
            extensive=extensive,
        )
        points[i] = target.point_estimate()
        half_widths[i] = (
            estimator.estimate(target, confidence, rng).half_width
            if estimator is not None
            else np.nan
        )
    return points, half_widths


def _trial_chunk_task(payload: dict) -> tuple[np.ndarray, np.ndarray]:
    segments: list = []
    try:
        return _trial_chunk_kernel(
            resolve(payload["values"], segments),
            resolve(payload["mask"], segments),
            payload["aggregate"],
            extensive=payload["extensive"],
            sample_size=payload["sample_size"],
            replacement=payload["replacement"],
            confidence=payload["confidence"],
            estimator=payload["estimator"],
            children=payload["children"],
        )
    finally:
        detach(segments)


def ground_truth_trials(
    values: np.ndarray,
    mask: Optional[np.ndarray],
    aggregate,
    *,
    extensive: bool,
    sample_size: int,
    num_trials: int,
    seed: int,
    replacement: bool = True,
    confidence: float = 0.95,
    estimator=None,
    chunk_size: int = DEFAULT_TRIAL_CHUNK,
    pool: WorkerPool | None = None,
    supervision: Supervision | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-trial θ(S) (and optionally ξ half-widths) over fresh samples.

    Trial ``t`` always consumes child stream ``t``: it draws its sample
    indices and then (when ``estimator`` is given) runs ξ from the same
    stream.  Returns ``(points, half_widths)``; half-widths are NaN
    when no estimator was supplied.
    """
    supervision = supervision or Supervision.default()
    supervision.check_cancelled()
    children = spawn_children(seed, num_trials)
    spans = chunk_spans(num_trials, chunk_size)
    common = dict(
        extensive=extensive,
        sample_size=sample_size,
        replacement=replacement,
        confidence=confidence,
        estimator=estimator,
    )
    # Footprint: shared value/mask arrays (pool path), one drawn sample
    # (indices + values + mask) per concurrent trial, and the per-trial
    # point/half-width result arrays.
    shared_bytes = (
        values.nbytes + (mask.nbytes if mask is not None else 0)
        if _usable(pool)
        else 0
    )
    footprint = (
        shared_bytes
        + _concurrency(pool) * sample_size * 24
        + num_trials * 16
    )
    with _reserve_memory(
        supervision, footprint, "ground-truth trials"
    ), trace_span(
        "ground_truth.trials",
        trials=num_trials,
        chunks=len(spans),
        parallel=_usable(pool),
    ):
        if not _usable(pool):

            def unit(span):
                start, stop = span
                return _trial_chunk_kernel(
                    values,
                    mask,
                    aggregate,
                    children=children[start:stop],
                    **common,
                )

            parts = run_supervised_inline(unit, spans, supervision)
        else:
            with SharedArena(fault_plan=supervision.plan) as arena:
                shared_values = _share_or_embed(
                    arena, np.ascontiguousarray(values), supervision
                )
                shared_mask = (
                    None
                    if mask is None
                    else _share_or_embed(
                        arena, np.ascontiguousarray(mask), supervision
                    )
                )
                payloads = [
                    {
                        "values": shared_values,
                        "mask": shared_mask,
                        "aggregate": aggregate,
                        "children": children[start:stop],
                        **common,
                    }
                    for start, stop in spans
                ]
                parts = pool.map(_trial_chunk_task, payloads, supervision)
        kept = _keep_completed(parts, "ground-truth trial chunks", supervision)
    points = np.concatenate([p for p, _ in kept])
    half_widths = np.concatenate([h for _, h in kept])
    return points, half_widths
