"""Continuous calibration audits: are our error bars actually honest?

The paper's diagnostic asks, per query and *before* answering, whether
the error-estimation procedure can be trusted.  This module closes the
loop after the fact, fleet-wide: it deterministically samples a
fraction of completed queries, recomputes the exact answer on the base
table, and checks whether each shipped confidence interval contained
the truth.  Over a sliding window, the fraction that did is the
*realized coverage* — and a 95 % interval whose realized coverage is
80 % is a lying error bar no per-query diagnostic can see, because the
drift (a stale rollup cube, a skewed sample, a biased degradation
path) lives outside any single execution.

Observations feed :class:`~repro.obs.slo.ErrorBudgetSLO` trackers per
route, per table, per degradation level, per (table, route), and
overall.  Breaches are edge-triggered and fan out to registered
listeners; the engine wires cube invalidation (a breaching
``table:X|route:partial`` scope means cube-served answers for ``X``
are miscalibrated) and the governor wires its circuit breaker (a
``QualityBreach`` trip cause).

Determinism contract: audit sampling hashes the query-shape
fingerprint and a per-shape counter — no RNG stream is consumed and
the exact recomputation is deterministic, so audited runs are
bit-identical to unaudited runs at any worker count.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional
from zlib import crc32

from repro.obs.events import _iter_dicts
from repro.obs.metrics import METRICS
from repro.obs.slo import ErrorBudgetSLO, SLOConfig
from repro.obs.trace import suppress_tracing, trace_event

logger = logging.getLogger(__name__)

__all__ = [
    "AuditConfig",
    "AuditOutcome",
    "CalibrationAuditor",
    "render_audit_report",
    "summarize_events",
]

#: Estimation methods whose intervals make calibration claims.  Exact
#: fallbacks (zero-width, trivially covering) and flagged point
#: estimates (no interval) are excluded — counting either would let
#: fallback traffic mask miscalibrated approximate answers.
AUDITABLE_METHODS = frozenset(
    {"closed_form", "bootstrap", "hoeffding", "quantile_closed_form"}
)


@dataclass(frozen=True)
class AuditConfig:
    """Calibration-audit tuning.

    Attributes:
        fraction: deterministic fraction of completed queries audited
            (0 disables auditing; 1 audits everything).
        tolerance: coverage slack subtracted from the nominal
            confidence to form each observation's SLO objective — a
            95 % interval is healthy while realized coverage stays
            within ``tolerance`` of nominal.
        window / min_samples / burn_rate_threshold: sliding-window and
            breach tuning shared by every scope tracker
            (:class:`~repro.obs.slo.SLOConfig`).
    """

    fraction: float = 0.0
    tolerance: float = 0.02
    window: int = 200
    min_samples: int = 25
    burn_rate_threshold: float = 2.0

    def __post_init__(self):
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"audit fraction must be in [0, 1], got {self.fraction}"
            )
        if not 0.0 <= self.tolerance < 1.0:
            raise ValueError(
                f"audit tolerance must be in [0, 1), got {self.tolerance}"
            )

    def slo_config(self) -> SLOConfig:
        return SLOConfig(
            window=self.window,
            min_samples=self.min_samples,
            burn_rate_threshold=self.burn_rate_threshold,
            default_objective=max(1e-6, 0.95 - self.tolerance),
        )


@dataclass(frozen=True)
class AuditOutcome:
    """What one audited query taught us."""

    audited_values: int
    covered_values: int
    skipped_values: int
    #: Worst |truth − estimate| / half_width across audited values
    #: (>1 means at least one interval missed).
    worst_z: Optional[float]
    breaches: tuple[str, ...] = ()

    @property
    def covered(self) -> Optional[bool]:
        if self.audited_values == 0:
            return None
        return self.covered_values == self.audited_values

    def to_dict(self) -> dict[str, Any]:
        return {
            "audited_values": self.audited_values,
            "covered_values": self.covered_values,
            "skipped_values": self.skipped_values,
            "worst_z": self.worst_z,
            "breaches": list(self.breaches),
        }


class CalibrationAuditor:
    """Deterministic sampling + exact recomputation + coverage SLOs."""

    def __init__(self, config: AuditConfig | None = None):
        self.config = config or AuditConfig()
        self._shape_counts: dict[str, int] = {}
        self._scopes: dict[str, ErrorBudgetSLO] = {}
        self._listeners: list[Callable[[str, dict], None]] = []
        self._audited_queries = 0
        self._audited_values = 0
        self._covered_values = 0
        self._errors = 0
        self._lock = threading.Lock()

    # -- sampling ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.config.fraction > 0.0

    def should_audit(self, fingerprint: str) -> bool:
        """Deterministic per-shape sampling decision (no RNG consumed).

        The n-th completion of a shape hashes ``"shape#n"``; the same
        workload therefore audits the same queries on every run, at
        any worker count, which keeps audited runs reproducible and
        spreads audit cost evenly across dashboard panels.
        """
        fraction = self.config.fraction
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        with self._lock:
            count = self._shape_counts.get(fingerprint, 0)
            self._shape_counts[fingerprint] = count + 1
        draw = crc32(f"{fingerprint}#{count}".encode()) / 2**32
        return draw < fraction

    # -- listeners ---------------------------------------------------------
    def add_breach_listener(
        self, listener: Callable[[str, dict], None]
    ) -> None:
        """Register ``listener(scope, slo_snapshot)`` for breach edges."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    # -- auditing ----------------------------------------------------------
    def audit(
        self, engine, query, result, level: Optional[str] = None
    ) -> AuditOutcome:
        """Recompute ground truth for ``result`` and record coverage.

        ``engine`` is the owning :class:`~repro.core.pipeline.AQPEngine`
        (duck-typed here to keep this package engine-agnostic);
        ``query`` its analyzed form.  Exact execution consumes no RNG.
        Failures are contained: an audit that cannot complete counts as
        an audit error, never a query error.
        """
        route = result.catalog_route or "cold"
        if route == "miss":
            route = "cold"
        level = level or _result_level(result)
        table = query.source_table
        try:
            with suppress_tracing():
                exact = engine._executor.execute(
                    query, engine.catalog.table(table)
                )
        except Exception as exc:  # noqa: BLE001 — audits must not throw
            with self._lock:
                self._errors += 1
            METRICS.counter("audit.errors").inc()
            logger.warning("calibration audit failed for %r: %s",
                           result.sql, exc)
            return AuditOutcome(0, 0, 0, None)
        audited = covered = skipped = 0
        worst_z: Optional[float] = None
        for row in result.rows:
            truth_rows = exact
            for key_name, key_value in row.group.items():
                truth_rows = truth_rows.filter(
                    truth_rows.column(key_name) == key_value
                )
            for value in row.values.values():
                if (
                    value.interval is None
                    or value.method not in AUDITABLE_METHODS
                ):
                    skipped += 1
                    continue
                if truth_rows.num_rows != 1:
                    # The sample invented or lost a whole group; the
                    # interval cannot contain a truth that does not
                    # exist — an uncovered observation by definition.
                    audited += 1
                    continue
                truth = float(truth_rows.column(value.name)[0])
                half_width = value.interval.half_width
                deviation = abs(truth - value.interval.estimate)
                z = deviation / half_width if half_width > 0 else (
                    0.0 if deviation == 0.0 else float("inf")
                )
                worst_z = z if worst_z is None else max(worst_z, z)
                audited += 1
                if z <= 1.0:
                    covered += 1
        breaches = self._record_observations(
            audited, covered, result.rows, route, level, table
        )
        with self._lock:
            self._audited_queries += 1
            self._audited_values += audited
            self._covered_values += covered
        METRICS.counter("audit.queries").inc()
        METRICS.counter("audit.values").inc(audited)
        METRICS.counter("audit.covered").inc(covered)
        METRICS.counter("audit.misses").inc(audited - covered)
        if audited:
            METRICS.gauge("audit.last_worst_z").set(worst_z or 0.0)
        trace_event(
            "audit",
            route=route,
            level=level,
            audited=audited,
            covered=covered,
        )
        return AuditOutcome(audited, covered, skipped, worst_z, breaches)

    def _record_observations(
        self, audited, covered, rows, route, level, table
    ) -> tuple[str, ...]:
        if audited == 0:
            return ()
        nominal = None
        for row in rows:
            for value in row.values.values():
                if value.interval is not None:
                    nominal = value.interval.confidence
                    break
            if nominal is not None:
                break
        objective = max(
            1e-6, (nominal or 0.95) - self.config.tolerance
        )
        scopes = (
            "overall",
            f"route:{route}",
            f"table:{table}",
            f"level:{level}",
            f"table:{table}|route:{route}",
        )
        breaches: list[str] = []
        # One observation per audited value, so a 100-group panel's
        # calibration weighs what it ships.
        for scope in scopes:
            slo = self._scope(scope)
            for i in range(audited):
                edge = slo.record(i < covered, objective)
                if edge == "breach":
                    breaches.append(scope)
        for scope in breaches:
            self._fire_breach(scope)
        return tuple(breaches)

    def _scope(self, name: str) -> ErrorBudgetSLO:
        with self._lock:
            slo = self._scopes.get(name)
            if slo is None:
                slo = ErrorBudgetSLO(self.config.slo_config(), name=name)
                self._scopes[name] = slo
        return slo

    def _fire_breach(self, scope: str) -> None:
        snapshot = self._scopes[scope].snapshot()
        METRICS.counter("audit.breaches").inc()
        METRICS.counter(
            f"audit.breaches.{scope.split(':', 1)[0].split('|')[0]}"
        ).inc()
        logger.warning(
            "calibration SLO breach on %s: coverage %.3f vs objective "
            "%.3f (burn rate %.2f over %d observations)",
            scope,
            snapshot["success_fraction"],
            snapshot["objective"],
            snapshot["burn_rate"],
            snapshot["samples"],
        )
        trace_event("audit.breach", scope=scope)
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(scope, snapshot)
            except Exception as exc:  # noqa: BLE001
                logger.error(
                    "audit breach listener failed for %s: %s", scope, exc
                )

    # -- reporting ---------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """The live calibration picture, JSON-friendly."""
        with self._lock:
            scopes = dict(self._scopes)
            totals = {
                "audited_queries": self._audited_queries,
                "audited_values": self._audited_values,
                "covered_values": self._covered_values,
                "coverage": (
                    round(self._covered_values / self._audited_values, 6)
                    if self._audited_values
                    else None
                ),
                "audit_errors": self._errors,
            }
        snapshots = {
            name: slo.snapshot() for name, slo in sorted(scopes.items())
        }
        return {
            "config": {
                "fraction": self.config.fraction,
                "tolerance": self.config.tolerance,
                "window": self.config.window,
                "min_samples": self.config.min_samples,
                "burn_rate_threshold": self.config.burn_rate_threshold,
            },
            "totals": totals,
            "scopes": snapshots,
            "breached": sorted(
                name for name, snap in snapshots.items() if snap["breached"]
            ),
        }


def _result_level(result) -> str:
    """The degradation label an AQPResult executed at."""
    report = getattr(result, "execution_report", None)
    if report is None:
        return "full"
    for reason in report.degradation_reasons:
        if "governor degradation level" in reason:
            for level in ("reduced_k", "closed_form", "point_estimate"):
                if f"'{level}'" in reason:
                    return level
    return "full"


# ---------------------------------------------------------------------------
# Offline summaries (the `repro audit report` CLI over a JSONL sink)
# ---------------------------------------------------------------------------
@dataclass
class _Bucket:
    queries: int = 0
    audited_values: int = 0
    covered_values: int = 0
    nominal_sum: float = 0.0

    def observe(self, event: dict[str, Any]) -> None:
        audit = event.get("audit") or {}
        values = int(audit.get("audited_values", 0))
        if values <= 0:
            return
        self.queries += 1
        self.audited_values += values
        self.covered_values += int(audit.get("covered_values", 0))
        self.nominal_sum += float(event.get("confidence", 0.95)) * values

    def summary(self, tolerance: float) -> dict[str, Any]:
        coverage = (
            self.covered_values / self.audited_values
            if self.audited_values
            else None
        )
        nominal = (
            self.nominal_sum / self.audited_values
            if self.audited_values
            else None
        )
        within = None
        if coverage is not None and nominal is not None:
            within = coverage >= nominal - tolerance
        return {
            "queries": self.queries,
            "audited_values": self.audited_values,
            "covered_values": self.covered_values,
            "coverage": None if coverage is None else round(coverage, 6),
            "nominal": None if nominal is None else round(nominal, 6),
            "delta": (
                None
                if coverage is None or nominal is None
                else round(coverage - nominal, 6)
            ),
            "within_tolerance": within,
        }


def summarize_events(
    events: Iterable, tolerance: float = 0.02
) -> dict[str, Any]:
    """Coverage-vs-nominal summary of an event stream or JSONL dump.

    Accepts :class:`~repro.obs.events.QueryEvent` objects or dicts
    (e.g. from :func:`~repro.obs.events.load_events`).  Groups audited
    events overall and by route, table, and degradation level, and
    flags every group whose realized coverage fell more than
    ``tolerance`` below its mean nominal confidence.
    """
    overall = _Bucket()
    by: dict[str, dict[str, _Bucket]] = {
        "route": {}, "table": {}, "level": {},
    }
    total_events = 0
    audited_events = 0
    for event in _iter_dicts(events):
        total_events += 1
        if not event.get("audited"):
            continue
        audited_events += 1
        overall.observe(event)
        for dimension in by:
            key = str(event.get(dimension, "") or "unknown")
            by[dimension].setdefault(key, _Bucket()).observe(event)
    groups = {
        dimension: {
            key: bucket.summary(tolerance)
            for key, bucket in sorted(buckets.items())
        }
        for dimension, buckets in by.items()
    }
    breaches = [
        f"{dimension}:{key}"
        for dimension, summaries in groups.items()
        for key, summary in summaries.items()
        if summary["within_tolerance"] is False
    ]
    overall_summary = overall.summary(tolerance)
    if overall_summary["within_tolerance"] is False:
        breaches.insert(0, "overall")
    return {
        "tolerance": tolerance,
        "events": total_events,
        "audited_events": audited_events,
        "overall": overall_summary,
        "by": groups,
        "breaches": breaches,
    }


def render_audit_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of a live or offline audit report."""
    lines: list[str] = []
    if "totals" in report:  # live CalibrationAuditor.report()
        totals = report["totals"]
        lines.append(
            f"calibration audit: {totals['audited_queries']} queries, "
            f"{totals['audited_values']} interval(s) audited"
        )
        coverage = totals.get("coverage")
        lines.append(
            "  realized coverage: "
            + (f"{coverage:.1%}" if coverage is not None else "n/a")
            + f"  (audit errors: {totals['audit_errors']})"
        )
        for name, snap in report.get("scopes", {}).items():
            flag = "  BREACHED" if snap["breached"] else ""
            lines.append(
                f"  {name:40s} n={snap['samples']:<4d} "
                f"coverage={snap['success_fraction']:.3f} "
                f"objective={snap['objective']:.3f} "
                f"burn={snap['burn_rate']:.2f}{flag}"
            )
        breached = report.get("breached", [])
        lines.append(
            "  breached scopes: " + (", ".join(breached) if breached
                                     else "none")
        )
        return "\n".join(lines)
    # offline summarize_events() shape
    overall = report["overall"]
    lines.append(
        f"audit report over {report['events']} event(s), "
        f"{report['audited_events']} audited"
    )
    lines.append(
        "  overall: "
        + _format_bucket_line(overall)
        + f"  (tolerance {report['tolerance']:.3f})"
    )
    for dimension in ("route", "table", "level"):
        for key, summary in report["by"].get(dimension, {}).items():
            lines.append(
                f"  {dimension}={key:24s} " + _format_bucket_line(summary)
            )
    breaches = report.get("breaches", [])
    lines.append(
        "  breaches: " + (", ".join(breaches) if breaches else "none")
    )
    return "\n".join(lines)


def _format_bucket_line(summary: dict[str, Any]) -> str:
    if summary["coverage"] is None:
        return "no audited intervals"
    line = (
        f"coverage={summary['coverage']:.3f} "
        f"nominal={summary['nominal']:.3f} "
        f"delta={summary['delta']:+.3f} "
        f"({summary['audited_values']} values)"
    )
    if summary["within_tolerance"] is False:
        line += "  BREACHED"
    return line
