"""A process-wide metrics registry: counters, gauges, histograms.

Where a :class:`~repro.obs.trace.Trace` explains *one* query, the
metrics registry accumulates across the process lifetime — the surface
a production deployment would scrape.  Three instrument kinds, all
deliberately boring:

* :class:`Counter` — monotonically increasing totals
  (``plan_cache.hit``, ``bootstrap.replicates``, ``pool.retries``,
  ``degraded_results``).
* :class:`Gauge` — last-written values (``pool.workers``).
* :class:`Histogram` — fixed-bucket latency/size distributions
  (``query.seconds``); fixed bucket edges keep observation O(#buckets)
  with zero allocation and make snapshots mergeable across processes.

Everything is guarded by one lock per instrument operation — contention
is negligible at the rates the engine emits (tens of updates per query)
and correctness under the worker pool's threads is not worth racing
for.  ``snapshot()`` returns plain JSON-serialisable dicts; ``reset()``
exists for tests and for the REPL's ``\\stats`` baseline.

The module-level :data:`METRICS` registry is the default sink used by
the engine and the execution layer; code that wants isolation (tests,
embedded uses) constructs its own :class:`MetricsRegistry`.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_right
from typing import Any, Optional, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "quantiles_from_snapshot",
    "resident_memory_bytes",
]

#: The latency quantiles the serving surfaces render by default.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def resident_memory_bytes() -> Optional[int]:
    """Current resident set size of this process, or ``None`` if unknown.

    Reads ``/proc/self/statm`` (Linux); other platforms fall back to
    ``resource.getrusage`` peak RSS, and ``None`` when even that is
    unavailable.  Feeds the ``process.resident_bytes`` gauge the query
    governor maintains (REPL ``\\stats``, the overload bench).
    """
    try:
        with open("/proc/self/statm") as statm:
            resident_pages = int(statm.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kb) * 1024
    except Exception:
        return None

#: Default histogram bucket upper bounds, in seconds: 1 ms … 60 s on a
#: roughly ×2.5 ladder — wide enough for both sub-millisecond cached
#: plans and multi-second exact fallbacks.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary statistics.

    ``buckets`` are upper bounds; observations above the last bound land
    in an implicit overflow bucket.  Bucket counts are cumulative in the
    snapshot (Prometheus-style ``le`` semantics) so consumers can
    compute quantile estimates without the raw stream.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ):
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if len(set(edges)) != len(edges):
            raise ValueError(f"histogram {name!r} buckets must be distinct")
        self.name = name
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_right(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate, or ``None`` if empty.

        Prometheus ``histogram_quantile`` semantics: linear
        interpolation inside the bucket holding the target rank, with
        the observed min/max clamping the first and overflow buckets so
        small histograms do not report a p99 beyond any observation.
        """
        return _bucket_quantile(
            self.buckets,
            list(self._counts),
            self._count,
            self._min,
            self._max,
            q,
        )

    def snapshot(self) -> dict[str, Any]:
        cumulative = []
        running = 0
        for raw in self._counts[:-1]:
            running += raw
            cumulative.append(running)
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "mean": (self._sum / self._count) if self._count else None,
            "buckets": {
                f"le_{bound:g}": cumulative[i]
                for i, bound in enumerate(self.buckets)
            },
            "overflow": self._counts[-1],
        }


def _bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    observed_min: float,
    observed_max: float,
    q: float,
) -> Optional[float]:
    """Interpolate quantile ``q`` from raw per-bucket counts.

    ``counts`` has ``len(bounds) + 1`` entries (last is overflow).
    Inside a bucket we interpolate linearly between its bounds; the
    first bucket's lower edge and the overflow bucket's upper edge are
    the observed min/max, which also clamp the result so a sparse
    histogram never reports a value outside what was seen.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if total <= 0:
        return None
    target = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= target and bucket_count > 0:
            upper = bounds[index] if index < len(bounds) else observed_max
            lower = bounds[index - 1] if index > 0 else observed_min
            if upper <= lower:
                value = upper
            else:
                within = (target - (cumulative - bucket_count)) / bucket_count
                value = lower + (upper - lower) * min(max(within, 0.0), 1.0)
            return min(max(value, observed_min), observed_max)
    return observed_max


def quantiles_from_snapshot(
    snapshot: dict[str, Any],
    qs: Sequence[float] = DEFAULT_QUANTILES,
) -> dict[str, Optional[float]]:
    """Quantile estimates from a :meth:`Histogram.snapshot` dict.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (keys derived from
    ``qs``); values are ``None`` for an empty histogram.  Accepts the
    snapshot's cumulative ``le_{bound:g}`` buckets so offline consumers
    (``repro audit report``, the REPL) need no live instrument.
    """
    labels = {q: f"p{q * 100:g}".replace(".", "_") for q in qs}
    count = int(snapshot.get("count") or 0)
    if count <= 0:
        return {label: None for label in labels.values()}
    buckets = snapshot.get("buckets") or {}
    pairs = sorted(
        (float(key[3:].replace("_", ".")), int(value))
        for key, value in buckets.items()
        if key.startswith("le_")
    )
    bounds = [bound for bound, _ in pairs]
    raw: list[int] = []
    previous = 0
    for _, cumulative in pairs:
        raw.append(cumulative - previous)
        previous = cumulative
    raw.append(int(snapshot.get("overflow") or 0))
    observed_min = float(snapshot.get("min") or 0.0)
    observed_max = float(snapshot.get("max") or 0.0)
    return {
        labels[q]: _bucket_quantile(
            bounds, raw, count, observed_min, observed_max, q
        )
        for q in qs
    }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotable as JSON."""

    def __init__(self):
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = kind(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, buckets)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-serialisable dict, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def reset(self) -> None:
        """Drop every instrument (tests; the REPL's stats baseline)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide default registry the engine reports into.
METRICS = MetricsRegistry()
