"""A process-wide metrics registry: counters, gauges, histograms.

Where a :class:`~repro.obs.trace.Trace` explains *one* query, the
metrics registry accumulates across the process lifetime — the surface
a production deployment would scrape.  Three instrument kinds, all
deliberately boring:

* :class:`Counter` — monotonically increasing totals
  (``plan_cache.hit``, ``bootstrap.replicates``, ``pool.retries``,
  ``degraded_results``).
* :class:`Gauge` — last-written values (``pool.workers``).
* :class:`Histogram` — fixed-bucket latency/size distributions
  (``query.seconds``); fixed bucket edges keep observation O(#buckets)
  with zero allocation and make snapshots mergeable across processes.

Everything is guarded by one lock per instrument operation — contention
is negligible at the rates the engine emits (tens of updates per query)
and correctness under the worker pool's threads is not worth racing
for.  ``snapshot()`` returns plain JSON-serialisable dicts; ``reset()``
exists for tests and for the REPL's ``\\stats`` baseline.

The module-level :data:`METRICS` registry is the default sink used by
the engine and the execution layer; code that wants isolation (tests,
embedded uses) constructs its own :class:`MetricsRegistry`.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_right
from typing import Any, Optional, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
    "resident_memory_bytes",
]


def resident_memory_bytes() -> Optional[int]:
    """Current resident set size of this process, or ``None`` if unknown.

    Reads ``/proc/self/statm`` (Linux); other platforms fall back to
    ``resource.getrusage`` peak RSS, and ``None`` when even that is
    unavailable.  Feeds the ``process.resident_bytes`` gauge the query
    governor maintains (REPL ``\\stats``, the overload bench).
    """
    try:
        with open("/proc/self/statm") as statm:
            resident_pages = int(statm.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(peak_kb) * 1024
    except Exception:
        return None

#: Default histogram bucket upper bounds, in seconds: 1 ms … 60 s on a
#: roughly ×2.5 ladder — wide enough for both sub-millisecond cached
#: plans and multi-second exact fallbacks.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max summary statistics.

    ``buckets`` are upper bounds; observations above the last bound land
    in an implicit overflow bucket.  Bucket counts are cumulative in the
    snapshot (Prometheus-style ``le`` semantics) so consumers can
    compute quantile estimates without the raw stream.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ):
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if len(set(edges)) != len(edges):
            raise ValueError(f"histogram {name!r} buckets must be distinct")
        self.name = name
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_right(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict[str, Any]:
        cumulative = []
        running = 0
        for raw in self._counts[:-1]:
            running += raw
            cumulative.append(running)
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "mean": (self._sum / self._count) if self._count else None,
            "buckets": {
                f"le_{bound:g}": cumulative[i]
                for i, bound in enumerate(self.buckets)
            },
            "overflow": self._counts[-1],
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotable as JSON."""

    def __init__(self):
        self._instruments: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = kind(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, buckets)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-serialisable dict, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def reset(self) -> None:
        """Drop every instrument (tests; the REPL's stats baseline)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide default registry the engine reports into.
METRICS = MetricsRegistry()
