"""Observability: query-lifecycle tracing, metrics, logging, export.

The paper's thesis is *knowing when you're wrong*; this package is the
operational half of that promise — knowing where the time went and what
the execution layer actually did.  It provides:

* :mod:`repro.obs.trace` — a zero-dependency span tracer.  Each engine
  query builds a :class:`Trace` tree (parse → analyze → sampling →
  bootstrap fan-out → diagnostics → fallback, with per-task worker
  timelines merged across process boundaries).  Default-on, near-zero
  overhead, provably non-perturbing: traced and untraced runs are
  bit-identical.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms, snapshotable as JSON (the REPL's
  ``\\stats``).
* :mod:`repro.obs.export` — the ``EXPLAIN ANALYZE`` span-tree renderer
  and the ``chrome://tracing`` JSON exporter (``--trace-out``).
* :mod:`repro.obs.logs` — stdlib-logging wiring (``REPRO_LOG_LEVEL`` /
  ``--log-level``).
* :mod:`repro.obs.events` — the structured query event log: one
  append-only record per executed query (ring buffer + JSONL sinks).
* :mod:`repro.obs.audit` — the continuous calibration auditor:
  deterministic sampling, exact recomputation, realized-coverage
  tracking per route/table/degradation level.
* :mod:`repro.obs.slo` — error-budget SLO trackers with burn-rate
  accounting and edge-triggered breaches.
* :mod:`repro.obs.openmetrics` — Prometheus/OpenMetrics text export of
  the metrics registry (``\\metrics``, ``--metrics-out``,
  :func:`~repro.obs.openmetrics.start_metrics_server`).
"""

from repro.obs.audit import (
    AuditConfig,
    AuditOutcome,
    CalibrationAuditor,
    render_audit_report,
    summarize_events,
)
from repro.obs.events import EVENTS, QueryEvent, QueryEventLog, load_events
from repro.obs.export import (
    chrome_trace_events,
    format_duration,
    render_span_tree,
    write_chrome_trace,
)
from repro.obs.logs import LOG_LEVEL_ENV, configure_logging
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantiles_from_snapshot,
)
from repro.obs.openmetrics import render_openmetrics, start_metrics_server
from repro.obs.slo import ErrorBudgetSLO, SLOConfig
from repro.obs.trace import (
    Span,
    Trace,
    activate_trace,
    current_trace,
    deactivate_trace,
    suppress_tracing,
    trace_counter,
    trace_event,
    trace_span,
)

__all__ = [
    "AuditConfig",
    "AuditOutcome",
    "CalibrationAuditor",
    "Counter",
    "ErrorBudgetSLO",
    "EVENTS",
    "Gauge",
    "Histogram",
    "LOG_LEVEL_ENV",
    "METRICS",
    "MetricsRegistry",
    "QueryEvent",
    "QueryEventLog",
    "SLOConfig",
    "Span",
    "Trace",
    "activate_trace",
    "chrome_trace_events",
    "configure_logging",
    "current_trace",
    "deactivate_trace",
    "format_duration",
    "load_events",
    "quantiles_from_snapshot",
    "render_audit_report",
    "render_openmetrics",
    "render_span_tree",
    "start_metrics_server",
    "summarize_events",
    "suppress_tracing",
    "trace_counter",
    "trace_event",
    "trace_span",
    "write_chrome_trace",
]
