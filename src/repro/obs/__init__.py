"""Observability: query-lifecycle tracing, metrics, logging, export.

The paper's thesis is *knowing when you're wrong*; this package is the
operational half of that promise — knowing where the time went and what
the execution layer actually did.  It provides:

* :mod:`repro.obs.trace` — a zero-dependency span tracer.  Each engine
  query builds a :class:`Trace` tree (parse → analyze → sampling →
  bootstrap fan-out → diagnostics → fallback, with per-task worker
  timelines merged across process boundaries).  Default-on, near-zero
  overhead, provably non-perturbing: traced and untraced runs are
  bit-identical.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and fixed-bucket histograms, snapshotable as JSON (the REPL's
  ``\\stats``).
* :mod:`repro.obs.export` — the ``EXPLAIN ANALYZE`` span-tree renderer
  and the ``chrome://tracing`` JSON exporter (``--trace-out``).
* :mod:`repro.obs.logs` — stdlib-logging wiring (``REPRO_LOG_LEVEL`` /
  ``--log-level``).
"""

from repro.obs.export import (
    chrome_trace_events,
    format_duration,
    render_span_tree,
    write_chrome_trace,
)
from repro.obs.logs import LOG_LEVEL_ENV, configure_logging
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    Trace,
    activate_trace,
    current_trace,
    deactivate_trace,
    suppress_tracing,
    trace_counter,
    trace_event,
    trace_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LOG_LEVEL_ENV",
    "METRICS",
    "MetricsRegistry",
    "Span",
    "Trace",
    "activate_trace",
    "chrome_trace_events",
    "configure_logging",
    "current_trace",
    "deactivate_trace",
    "format_duration",
    "render_span_tree",
    "suppress_tracing",
    "trace_counter",
    "trace_event",
    "trace_span",
    "write_chrome_trace",
]
