"""Error-budget SLOs with burn-rate accounting over sliding windows.

The calibration auditor (:mod:`repro.obs.audit`) produces a stream of
binary observations — "this audited interval contained the recomputed
ground truth" — per route, table, and degradation level.  This module
turns such a stream into the standard SRE error-budget vocabulary:

* the **objective** is the success fraction the system promised.  For
  coverage SLOs it is the nominal confidence minus a small tolerance
  (a 95 % interval audited at ±2 pp has objective 0.93); each
  observation carries its own objective, so windows that mix 95 % and
  99 % queries budget each correctly.
* the **error budget** of a window is the miss fraction the objective
  allows: ``1 − mean(objective)``.
* the **burn rate** is observed misses divided by allowed misses — 1.0
  means the budget is being spent exactly as fast as it accrues, 2.0
  means the window will exhaust a period's budget in half the period.
* a tracker **breaches** when, with at least ``min_samples``
  observations in the window, the burn rate reaches
  ``burn_rate_threshold``.

Breaches are edge-triggered: :meth:`ErrorBudgetSLO.record` returns
``"breach"`` only on the healthy→breached transition (and
``"recovered"`` on the way back), so wiring breach signals to control
actions — cube invalidation, breaker trips — fires once per episode,
not once per observation.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ErrorBudgetSLO", "SLOConfig"]


@dataclass(frozen=True)
class SLOConfig:
    """Window and trigger tuning for one error-budget tracker.

    Attributes:
        window: observations kept in the sliding window.
        min_samples: observations required before a breach may fire
            (below it, burn rate is reported but never acted on).
        burn_rate_threshold: burn rate at which the tracker breaches.
            2.0 — "spending budget at twice the sustainable rate" — is
            the classic fast-burn page threshold; 1.0 would page on
            Monte-Carlo noise at these window sizes.
        default_objective: objective assumed when an observation does
            not carry its own.
    """

    window: int = 200
    min_samples: int = 25
    burn_rate_threshold: float = 2.0
    default_objective: float = 0.93

    def __post_init__(self):
        if self.window < 1 or self.min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if not 0.0 < self.default_objective < 1.0:
            raise ValueError(
                f"default_objective must be in (0, 1), got "
                f"{self.default_objective}"
            )
        if self.burn_rate_threshold <= 0:
            raise ValueError(
                f"burn_rate_threshold must be positive, got "
                f"{self.burn_rate_threshold}"
            )


class ErrorBudgetSLO:
    """One sliding-window error budget with edge-triggered breaches."""

    def __init__(self, config: SLOConfig | None = None, name: str = ""):
        self.config = config or SLOConfig()
        self.name = name
        self._window: deque[tuple[bool, float]] = deque(
            maxlen=self.config.window
        )
        self._breached = False
        self._breaches = 0
        self._total = 0
        self._total_misses = 0
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def record(
        self, ok: bool, objective: Optional[float] = None
    ) -> Optional[str]:
        """Add one observation; returns ``"breach"`` / ``"recovered"``
        on a state transition, ``None`` otherwise."""
        objective = (
            self.config.default_objective if objective is None else objective
        )
        with self._lock:
            self._window.append((bool(ok), float(objective)))
            self._total += 1
            if not ok:
                self._total_misses += 1
            breached_now = self._burn_rate() >= (
                self.config.burn_rate_threshold
            ) and len(self._window) >= self.config.min_samples
            if breached_now and not self._breached:
                self._breached = True
                self._breaches += 1
                return "breach"
            if not breached_now and self._breached:
                self._breached = False
                return "recovered"
        return None

    # -- accounting (lock held by callers below) ---------------------------
    def _miss_fraction(self) -> float:
        if not self._window:
            return 0.0
        return sum(1 for ok, _ in self._window if not ok) / len(self._window)

    def _allowed_miss(self) -> float:
        if not self._window:
            return 1.0 - self.config.default_objective
        mean_objective = sum(obj for _, obj in self._window) / len(
            self._window
        )
        return max(1e-9, 1.0 - mean_objective)

    def _burn_rate(self) -> float:
        return self._miss_fraction() / self._allowed_miss()

    # -- introspection -----------------------------------------------------
    @property
    def breached(self) -> bool:
        with self._lock:
            return self._breached

    @property
    def samples(self) -> int:
        with self._lock:
            return len(self._window)

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly state for ``\\audit`` and the export surface."""
        with self._lock:
            miss = self._miss_fraction()
            allowed = self._allowed_miss()
            return {
                "samples": len(self._window),
                "total_observations": self._total,
                "total_misses": self._total_misses,
                "success_fraction": round(1.0 - miss, 6),
                "objective": round(1.0 - allowed, 6),
                "allowed_miss_fraction": round(allowed, 6),
                "miss_fraction": round(miss, 6),
                "burn_rate": round(miss / allowed, 4),
                "budget_remaining": round(
                    max(0.0, 1.0 - miss / allowed), 4
                ),
                "breached": self._breached,
                "breaches": self._breaches,
            }
