"""Logging setup for the ``repro`` package.

Every module takes the standard ``logging.getLogger(__name__)`` route;
this module only decides *where those records go*.  Nothing is
configured at import time — as a library, ``repro`` stays silent unless
the application configures logging (the stdlib contract).  The CLI and
tools call :func:`configure_logging`, which honours, in order:

1. an explicit ``level`` argument (the ``--log-level`` CLI flag);
2. the ``REPRO_LOG_LEVEL`` environment variable;
3. the default, WARNING — so injected faults, retries, degradations,
   and swept shared-memory segments are visible by default while the
   per-span DEBUG firehose stays opt-in.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

__all__ = ["LOG_LEVEL_ENV", "ROOT_LOGGER_NAME", "configure_logging"]

#: Environment variable naming the default log level (e.g. ``DEBUG``,
#: ``INFO``, ``WARNING``, ``ERROR``, or a numeric level).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: The package's root logger; every module logger is a child of it.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute set on the handler we install, so reconfiguration
#: replaces our handler instead of stacking duplicates.
_HANDLER_MARKER = "_repro_obs_handler"


def _resolve_level(level: Optional[str | int]) -> int:
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV, "").strip() or "WARNING"
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text)
    if not isinstance(resolved, int):
        raise ValueError(
            f"unknown log level {level!r}; use DEBUG, INFO, WARNING, "
            "ERROR, CRITICAL, or a number"
        )
    return resolved


def configure_logging(level: Optional[str | int] = None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger at ``level``.

    Idempotent: calling again replaces the previously installed handler
    (and its level) rather than duplicating output.  Returns the
    package root logger.
    """
    resolved = _resolve_level(level)
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_MARKER, True)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    return logger
