"""Structured query event log: one record per executed query.

Traces explain one query; metrics aggregate a process; the *event log*
sits between them — an append-only stream of compact, structured
records, one per completed query, carrying everything the answer-
quality layer needs to reason about fleet health after the fact:

* identity — the SQL text, its canonical shape fingerprint, the base
  table;
* routing — ``"exact"`` / ``"partial"`` / ``"cold"`` (the materialized
  catalog's three outcomes; a disabled catalog is a cold route too);
* fidelity — the governor's :class:`DegradationLevel` label, the
  aggregated diagnostic verdict, the per-value estimation methods;
* the promise — nominal confidence, the widest CI half-width and
  relative error the answer shipped with, the bootstrap/diagnostic
  subquery counts actually spent;
* the cost — wall latency, peak reserved memory, retries, crashes,
  timeouts, hedges;
* the verification — when the calibration auditor sampled this query,
  whether the recomputed ground truth landed inside every shipped
  interval (:mod:`repro.obs.audit`).

Records land in a bounded in-memory ring (:class:`QueryEventLog`; the
REPL and auditor read it) and, optionally, in an append-only JSONL file
sink so a fleet can be audited offline (``repro audit report``).
Recording touches no RNG stream — event-logged and silent runs are
bit-identical at any worker count.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from repro.obs.metrics import METRICS

__all__ = [
    "EVENTS",
    "QueryEvent",
    "QueryEventLog",
    "load_events",
]

#: Default ring capacity; ~1 dashboard-day of per-second traffic in a
#: few MB of small python objects.
DEFAULT_RING_CAPACITY = 4096


@dataclass(frozen=True)
class QueryEvent:
    """One executed query, as the observability layer saw it."""

    #: Process-monotonic sequence number (assigned by the log).
    seq: int = 0
    #: Unix timestamp at completion.
    ts: float = 0.0
    sql: str = ""
    #: crc32 hex of the canonical query shape (stable across literal
    #: rebindings — the dashboard-panel identity).
    fingerprint: str = ""
    table: str = ""
    #: Catalog routing outcome: ``exact`` | ``partial`` | ``cold``.
    route: str = "cold"
    #: Degradation-ladder label: ``full`` | ``reduced_k`` |
    #: ``closed_form`` | ``point_estimate``.
    level: str = "full"
    #: Aggregated diagnostic verdict over the answer's values:
    #: ``passed`` | ``failed`` | ``skipped``.
    verdict: str = "skipped"
    #: Nominal interval coverage promised to the caller.
    confidence: float = 0.95
    #: Widest absolute CI half-width across the answer's values
    #: (``None`` when no value shipped an interval).
    max_half_width: Optional[float] = None
    #: Widest relative error across the answer's values.
    max_relative_error: Optional[float] = None
    #: Distinct estimation methods that produced the values.
    methods: tuple[str, ...] = ()
    #: Bootstrap resample subqueries actually executed (0 on catalog
    #: exact hits and pure closed-form answers).
    bootstrap_k: int = 0
    diagnostic_subqueries: int = 0
    rows: int = 0
    latency_seconds: float = 0.0
    #: Peak bytes reserved through the memory accountant at completion.
    memory_peak_bytes: Optional[int] = None
    retries: int = 0
    worker_crashes: int = 0
    task_timeouts: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    degraded: bool = False
    #: Values that fell back away from cheap estimation.
    fallbacks: int = 0
    #: Whether the calibration auditor sampled this query.
    audited: bool = False
    #: All audited intervals contained the recomputed ground truth
    #: (``None`` when not audited or no value was auditable).
    covered: Optional[bool] = None
    #: Per-value audit detail: interval-bearing values checked, how
    #: many contained the truth, and the widest observed miss.
    audit: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """The event as one compact JSONL line."""
        payload = asdict(self)
        payload["methods"] = list(self.methods)
        return json.dumps(payload, sort_keys=True, default=str)


class QueryEventLog:
    """Bounded in-memory ring of :class:`QueryEvent` + JSONL file sinks.

    Thread-safe; the ring drops oldest-first past ``capacity``.  Sinks
    are append-only files written line-buffered at record time — a
    crash loses at most the in-flight line.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[QueryEvent] = deque(maxlen=capacity)
        self._sinks: dict[str, Any] = {}
        self._seq = 0
        self._recorded = 0
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def record(self, event: QueryEvent) -> QueryEvent:
        """Assign a sequence number, append to the ring, write sinks."""
        with self._lock:
            self._seq += 1
            self._recorded += 1
            stamped = replace(event, seq=self._seq, ts=time.time())
            self._ring.append(stamped)
            sinks = list(self._sinks.values())
        METRICS.counter("events.recorded").inc()
        if sinks:
            # Serialisation is deferred until a sink actually needs the
            # line — ring-only logging stays a deque append.
            line = stamped.to_json()
            for sink in sinks:
                try:
                    sink.write(line + "\n")
                    sink.flush()
                except OSError:
                    METRICS.counter("events.sink_errors").inc()
        return stamped

    # -- sinks -------------------------------------------------------------
    def attach_sink(self, path: str | Path) -> Path:
        """Append events to ``path`` as JSONL (idempotent per path)."""
        resolved = Path(path).resolve()
        key = str(resolved)
        with self._lock:
            if key not in self._sinks:
                resolved.parent.mkdir(parents=True, exist_ok=True)
                self._sinks[key] = open(resolved, "a", encoding="utf-8")
        return resolved

    def detach_sink(self, path: str | Path) -> None:
        key = str(Path(path).resolve())
        with self._lock:
            sink = self._sinks.pop(key, None)
        if sink is not None:
            sink.close()

    # -- reading -----------------------------------------------------------
    def recent(self, count: int | None = None) -> list[QueryEvent]:
        """The most recent events, oldest first."""
        with self._lock:
            events = list(self._ring)
        if count is not None:
            events = events[-count:]
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "ring_size": len(self._ring),
                "recorded": self._recorded,
                "dropped": self._recorded - len(self._ring),
                "sinks": sorted(self._sinks),
            }

    def clear(self) -> None:
        """Drop ring contents and reset counters (sinks stay attached)."""
        with self._lock:
            self._ring.clear()
            self._seq = 0
            self._recorded = 0


def load_events(
    path: str | Path, strict: bool = False
) -> Iterator[dict[str, Any]]:
    """Read an event-log JSONL file back as dicts, skipping torn lines.

    A sink written by a crashing process may end mid-line; by default
    unparseable lines are skipped (``strict=True`` raises instead).
    """
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise
                continue


def _iter_dicts(events: Iterable) -> Iterator[dict[str, Any]]:
    for event in events:
        if isinstance(event, QueryEvent):
            yield asdict(event)
        else:
            yield dict(event)


#: The process-wide default event log the engine records into.
EVENTS = QueryEventLog()
