"""OpenMetrics/Prometheus text rendering of the METRICS registry.

The registry (:mod:`repro.obs.metrics`) snapshots to plain dicts; this
module serialises a snapshot in the Prometheus text exposition format
(compatible with OpenMetrics scrapers) so a deployment can point an
ordinary Prometheus at the engine:

* counters become ``repro_<name>_total``;
* gauges become ``repro_<name>``;
* histograms become the full ``_bucket{le="..."}`` / ``_sum`` /
  ``_count`` family (cumulative ``le`` semantics, ``+Inf`` bucket),
  plus pre-computed ``_p50`` / ``_p95`` / ``_p99`` gauges for
  dashboards that do not want to run ``histogram_quantile`` at query
  time.

Metric names are sanitised (dots and other separators → underscores)
and the export terminates with ``# EOF`` per the OpenMetrics spec.
:func:`start_metrics_server` serves the rendering at ``/metrics`` from
a stdlib HTTP server on a daemon thread — no third-party dependency.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    METRICS,
    MetricsRegistry,
    quantiles_from_snapshot,
)

__all__ = ["render_openmetrics", "start_metrics_server"]

#: Prefix namespacing every exported series.
METRIC_PREFIX = "repro"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """``catalog.mv_hits`` → ``catalog_mv_hits`` (Prometheus charset)."""
    sanitized = _INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _render_counter(lines: list[str], name: str, snap: dict) -> None:
    lines.append(f"# TYPE {name}_total counter")
    lines.append(f"{name}_total {_format_value(snap['value'])}")


def _render_gauge(lines: list[str], name: str, snap: dict) -> None:
    lines.append(f"# TYPE {name} gauge")
    lines.append(f"{name} {_format_value(snap['value'])}")


def _render_histogram(lines: list[str], name: str, snap: dict) -> None:
    lines.append(f"# TYPE {name} histogram")
    pairs = sorted(
        (float(key[3:]), int(value))
        for key, value in (snap.get("buckets") or {}).items()
        if key.startswith("le_")
    )
    for bound, cumulative in pairs:
        lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {int(snap["count"])}')
    lines.append(f"{name}_sum {_format_value(snap['sum'])}")
    lines.append(f"{name}_count {int(snap['count'])}")
    for label, value in quantiles_from_snapshot(
        snap, DEFAULT_QUANTILES
    ).items():
        if value is None:
            continue
        lines.append(f"# TYPE {name}_{label} gauge")
        lines.append(f"{name}_{label} {_format_value(value)}")


def render_openmetrics(registry: MetricsRegistry = METRICS) -> str:
    """The registry as one Prometheus/OpenMetrics text document."""
    lines: list[str] = []
    for raw_name, snap in registry.snapshot().items():
        name = f"{METRIC_PREFIX}_{_sanitize(raw_name)}"
        kind = snap.get("type")
        if kind == "counter":
            _render_counter(lines, name, snap)
        elif kind == "gauge":
            _render_gauge(lines, name, snap)
        elif kind == "histogram":
            _render_histogram(lines, name, snap)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    registry: MetricsRegistry = METRICS

    def do_GET(self):  # noqa: N802 - stdlib interface
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_response(404)
            self.end_headers()
            return
        body = render_openmetrics(self.registry).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence per-request stderr noise
        pass


def start_metrics_server(
    port: int = 0,
    host: str = "127.0.0.1",
    registry: Optional[MetricsRegistry] = None,
) -> ThreadingHTTPServer:
    """Serve ``/metrics`` on a daemon thread; returns the bound server.

    ``port=0`` binds an ephemeral port (``server.server_address[1]``
    reports it — used by tests and ad-hoc scrapes).  Call
    ``server.shutdown()`` to stop.
    """
    handler = type(
        "_BoundMetricsHandler",
        (_MetricsHandler,),
        {"registry": registry if registry is not None else METRICS},
    )
    server = ThreadingHTTPServer((host, port), handler)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics", daemon=True
    )
    thread.start()
    return server
