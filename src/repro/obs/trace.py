"""A zero-dependency span tracer for query-lifecycle accounting.

The paper's performance study (§6, Figs. 7–9) decomposes query response
time into execution, error-estimation, and diagnostics phases and
attributes tail latency to stragglers and retries.  This module is the
in-process equivalent: every :class:`~repro.core.pipeline.AQPEngine`
query builds one :class:`Trace` — a tree of :class:`Span` nodes with
monotonic timestamps, tags, and counters — covering parse → analyze →
sample selection → estimation → bootstrap fan-out → diagnostics →
fallback, down to per-task worker timelines (queue wait, execution,
retries, crash/hang classifications) merged across process boundaries.

Design constraints, in priority order:

1. **Never perturb answers.**  Tracing touches no RNG stream and never
   changes a code path's inputs; traced and untraced runs are
   bit-identical (enforced by ``tests/test_tracing.py``).
2. **Near-zero overhead, default-on.**  The disabled path is one
   :class:`contextvars.ContextVar` read returning a shared null context
   manager; the enabled path is one ``perf_counter`` call plus a list
   append per span.  ``benchmarks/bench_tracing_overhead.py`` keeps
   this honest (<2 % on the Conviva query mix).
3. **Bounded memory.**  A trace drops spans beyond ``max_spans``
   (counting the drops), so pathological queries degrade the *trace*,
   never the process.

Timestamps come from :func:`time.perf_counter`, which on every platform
we support reads a system-wide monotonic clock, so spans recorded
inside worker processes (:mod:`repro.parallel.pool` ships back per-task
``(pid, start, end)`` triples) land on the same axis as the parent's.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from typing import Any, Iterator, Optional

__all__ = [
    "DEFAULT_MAX_SPANS",
    "Span",
    "Trace",
    "activate_trace",
    "current_trace",
    "deactivate_trace",
    "suppress_tracing",
    "trace_counter",
    "trace_event",
    "trace_span",
]

#: Spans kept per trace before new ones are dropped (and counted).
DEFAULT_MAX_SPANS = 20_000


class Span:
    """One timed node of a trace tree.

    Attributes:
        name: stage label (e.g. ``"analyze"``, ``"bootstrap.replicates"``,
            ``"task"``).
        start / end: :func:`time.perf_counter` seconds; ``end`` is
            ``None`` while the span is open.
        tags: arbitrary key → value annotations (sample name, chunk
            index, failure classification, ...).
        counters: numeric accumulators scoped to this span (replicate
            counts, rows scanned, ...).
        children: nested spans, in start order.
        pid: process that executed the span (worker attribution).
    """

    __slots__ = ("name", "start", "end", "tags", "counters", "children", "pid")

    def __init__(self, name: str, start: float, pid: int | None = None):
        self.name = name
        self.start = start
        self.end: float | None = None
        self.tags: dict[str, Any] = {}
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.pid = pid

    @property
    def duration_seconds(self) -> float:
        """Wall-clock seconds; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def add_counter(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable nested form (durations in seconds)."""
        node: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration_seconds": self.duration_seconds,
        }
        if self.tags:
            node["tags"] = dict(self.tags)
        if self.counters:
            node["counters"] = dict(self.counters)
        if self.pid is not None:
            node["pid"] = self.pid
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} {self.duration_seconds * 1e3:.2f}ms "
            f"children={len(self.children)}>"
        )


class _NullSpanContext:
    """Shared do-nothing context manager for the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that closes ``span`` and pops the trace stack."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span):
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._trace._finish(self._span)
        return False


class Trace:
    """The span tree of one query execution.

    A trace owns a root span (opened at construction, closed by
    :meth:`close`) and a stack of currently open spans; :meth:`span`
    nests under whatever is open.  Spans that completed elsewhere —
    notably per-task worker timelines shipped back across the process
    boundary — are grafted in with :meth:`add_span`.
    """

    def __init__(
        self,
        name: str = "query",
        max_spans: int = DEFAULT_MAX_SPANS,
        **tags: Any,
    ):
        self.max_spans = max_spans
        self.dropped_spans = 0
        # Live spans are always recorded in the process that owns the
        # trace (workers ship completed timelines through add_span), so
        # the pid can be read once instead of per span.
        self._pid = os.getpid()
        self.root = Span(name, time.perf_counter(), pid=self._pid)
        if tags:
            self.root.tags.update(tags)
        self._stack: list[Span] = [self.root]
        self._num_spans = 1

    # -- recording ---------------------------------------------------------
    def span(self, name: str, **tags: Any) -> "_SpanContext | _NullSpanContext":
        """Open a child span of the innermost open span (context manager)."""
        if self._num_spans >= self.max_spans:
            self.dropped_spans += 1
            return _NULL_SPAN
        span = Span(name, time.perf_counter(), pid=self._pid)
        if tags:
            span.tags.update(tags)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        self._num_spans += 1
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Unwind to this span even if an exception skipped inner exits.
        while self._stack and self._stack[-1] is not self.root:
            top = self._stack.pop()
            if top is span:
                break
            if top.end is None:
                top.end = span.end

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        pid: int | None = None,
        **tags: Any,
    ) -> Optional[Span]:
        """Graft an already-completed span under the innermost open span.

        Used for timelines measured in another process (worker tasks):
        ``start``/``end`` are the worker's own ``perf_counter`` readings,
        comparable with the parent's because the clock is system-wide.
        """
        if self._num_spans >= self.max_spans:
            self.dropped_spans += 1
            return None
        span = Span(name, start, pid=pid)
        span.end = end
        if tags:
            span.tags.update(tags)
        self._stack[-1].children.append(span)
        self._num_spans += 1
        return span

    def add_event(self, name: str, **tags: Any) -> Optional[Span]:
        """Record a zero-duration marker (retry, crash, fallback, ...)."""
        now = time.perf_counter()
        return self.add_span(name, now, now, pid=self._pid, **tags)

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Bump a counter on the innermost open span."""
        self._stack[-1].add_counter(name, amount)

    def close(self) -> None:
        """Close every open span, the root last (idempotent)."""
        now = time.perf_counter()
        while self._stack:
            span = self._stack.pop()
            if span.end is None:
                span.end = now
        self._stack = [self.root]

    # -- interrogation -----------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return self.root.duration_seconds

    @property
    def num_spans(self) -> int:
        return self._num_spans

    def find(self, name: str) -> list[Span]:
        """Every span named ``name``, depth first."""
        return [span for span in self.root.walk() if span.name == name]

    def span_names(self) -> set[str]:
        return {span.name for span in self.root.walk()}

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace": self.root.to_dict(),
            "num_spans": self._num_spans,
            "dropped_spans": self.dropped_spans,
        }


# ---------------------------------------------------------------------------
# Ambient trace: instrumentation points find the active trace here
# ---------------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Trace]] = ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> Optional[Trace]:
    """The trace activated by the innermost engine query, if any."""
    return _ACTIVE.get()


def activate_trace(trace: Optional[Trace]):
    """Make ``trace`` ambient; returns a token for :func:`deactivate_trace`."""
    return _ACTIVE.set(trace)


def deactivate_trace(token) -> None:
    _ACTIVE.reset(token)


class _SuppressContext:
    """Temporarily hide the ambient trace (used inside unit kernels).

    Per-unit work (a bootstrap chunk, one diagnostic subsample) is
    recorded as a single leaf span by the supervised runners; the
    fine-grained spans its body would emit (executor stages, nested
    estimator calls — thousands per diagnostic) would flood the tree,
    so the ambient trace is hidden for the duration of the unit body.
    """

    __slots__ = ("_token",)

    def __enter__(self) -> None:
        self._token = _ACTIVE.set(None)
        return None

    def __exit__(self, *exc_info) -> bool:
        _ACTIVE.reset(self._token)
        return False


def suppress_tracing() -> _SuppressContext:
    return _SuppressContext()


def trace_span(name: str, **tags: Any):
    """Open a span on the ambient trace; no-op (shared null CM) without one."""
    trace = _ACTIVE.get()
    if trace is None:
        return _NULL_SPAN
    return trace.span(name, **tags)


def trace_event(name: str, **tags: Any) -> None:
    """Record a zero-duration marker on the ambient trace, if any."""
    trace = _ACTIVE.get()
    if trace is not None:
        trace.add_event(name, **tags)


def trace_counter(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the ambient trace's innermost span, if any."""
    trace = _ACTIVE.get()
    if trace is not None:
        trace.counter(name, amount)
