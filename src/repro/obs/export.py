"""Trace rendering and export: EXPLAIN ANALYZE trees and Chrome JSON.

Two consumers of a :class:`~repro.obs.trace.Trace`:

* :func:`render_span_tree` — the ``EXPLAIN ANALYZE`` surface: an ASCII
  tree with per-stage wall time and percentage of the query total.
  Large sibling fan-outs (per-task worker timelines, per-group
  estimates) are aggregated into one summary line per span name so a
  4-worker bootstrap reads as a sentence, not 50 lines.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  ``chrome://tracing`` / Perfetto JSON array format.  Worker-executed
  spans keep their real pid, so each worker process renders as its own
  timeline row — the §6 straggler view, but for one in-process query.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.trace import Span, Trace

__all__ = [
    "SIBLING_AGGREGATION_THRESHOLD",
    "chrome_trace_events",
    "format_duration",
    "render_span_tree",
    "write_chrome_trace",
]

#: More same-named siblings than this collapse into one summary line.
SIBLING_AGGREGATION_THRESHOLD = 6


def format_duration(seconds: float) -> str:
    """Adaptive-precision human duration: 740 µs, 9.3 ms, 1.24 s."""
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} µs"
    if seconds < 0.1:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def _format_tags(span: Span) -> str:
    parts = []
    for key, value in span.tags.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    for key, value in span.counters.items():
        parts.append(f"{key}={value:g}")
    return f"  [{', '.join(parts)}]" if parts else ""


def _percent(span_seconds: float, total_seconds: float) -> str:
    if total_seconds <= 0:
        return "  --%"
    return f"{100.0 * span_seconds / total_seconds:5.1f}%"


def _render_line(
    lines: list[str], prefix: str, connector: str, body: str
) -> None:
    lines.append(f"{prefix}{connector}{body}")


def _render_children(
    lines: list[str],
    span: Span,
    prefix: str,
    total_seconds: float,
) -> None:
    # Group runs of same-named siblings; big groups collapse.
    groups: list[tuple[str, list[Span]]] = []
    for child in span.children:
        if groups and groups[-1][0] == child.name:
            groups[-1][1].append(child)
        else:
            groups.append((child.name, [child]))

    rendered: list[tuple[str, list[Span] | Span]] = []
    for name, members in groups:
        if len(members) > SIBLING_AGGREGATION_THRESHOLD:
            rendered.append((name, members))
        else:
            rendered.extend((name, member) for member in members)

    for position, (name, item) in enumerate(rendered):
        last = position == len(rendered) - 1
        connector = "└─ " if last else "├─ "
        child_prefix = prefix + ("   " if last else "│  ")
        if isinstance(item, list):
            durations = [member.duration_seconds for member in item]
            total = sum(durations)
            pids = {member.pid for member in item if member.pid is not None}
            retries = sum(
                1 for member in item if member.tags.get("attempt", 0)
            )
            failures = sum(
                1
                for member in item
                if member.tags.get("outcome", "ok") != "ok"
            )
            detail = (
                f"{name} ×{len(item)}  {format_duration(total)} "
                f"{_percent(total, total_seconds)}  "
                f"(mean {format_duration(total / len(item))}, "
                f"max {format_duration(max(durations))}"
            )
            if len(pids) > 0:
                detail += f", {len(pids)} worker(s)"
            if retries:
                detail += f", {retries} retried"
            if failures:
                detail += f", {failures} failed"
            detail += ")"
            _render_line(lines, prefix, connector, detail)
        else:
            span_item = item
            body = (
                f"{span_item.name}  "
                f"{format_duration(span_item.duration_seconds)} "
                f"{_percent(span_item.duration_seconds, total_seconds)}"
                f"{_format_tags(span_item)}"
            )
            _render_line(lines, prefix, connector, body)
            _render_children(lines, span_item, child_prefix, total_seconds)


def render_span_tree(trace: Trace) -> str:
    """The EXPLAIN ANALYZE view: per-stage wall time and % of total."""
    root = trace.root
    total = trace.total_seconds
    lines = [
        f"{root.name}  {format_duration(total)} total{_format_tags(root)}"
    ]
    _render_children(lines, root, "", total)
    if trace.dropped_spans:
        lines.append(
            f"({trace.dropped_spans} span(s) dropped beyond the "
            f"{trace.max_spans}-span cap)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------
def chrome_trace_events(trace: Trace) -> list[dict[str, Any]]:
    """The trace as Chrome ``traceEvents`` (complete + instant events).

    Timestamps are microseconds relative to the trace root; each span
    carries the pid it executed in, so ``chrome://tracing`` lays worker
    timelines out as separate process tracks.
    """
    origin = trace.root.start
    root_pid = trace.root.pid
    events: list[dict[str, Any]] = []
    pids_seen: set[int] = set()

    for span in trace.root.walk():
        pid = span.pid if span.pid is not None else root_pid
        pids_seen.add(pid)
        start_us = (span.start - origin) * 1e6
        duration_us = span.duration_seconds * 1e6
        args = {key: _jsonable(value) for key, value in span.tags.items()}
        args.update(span.counters)
        event: dict[str, Any] = {
            "name": span.name,
            "cat": "repro",
            "pid": pid,
            "tid": pid,
            "ts": round(start_us, 3),
            "args": args,
        }
        if duration_us <= 0 and span.end is not None and not span.children:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(duration_us, 3)
        events.append(event)

    for pid in sorted(pids_seen):
        label = "engine" if pid == root_pid else f"worker-{pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": label},
            }
        )
    return events


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` as a ``chrome://tracing``-loadable JSON file."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "num_spans": trace.num_spans,
            "dropped_spans": trace.dropped_spans,
        },
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path
