"""Query-shape fingerprinting for plan caching and the MV-first router.

Dashboards and alerting traffic repeat a handful of query *shapes* with
varying predicate literals ("sessions from city X in the last hour").
:func:`fingerprint_statement` canonicalises a parsed SELECT into a
:class:`QueryFingerprint`: the statement rendered back to SQL through
the AST (which normalises whitespace, keyword case, and parenthesis
style for free) with every predicate literal in WHERE/HAVING replaced by
a ``?`` placeholder, plus the extracted literal values in traversal
order.  Two queries that differ only in formatting share a fingerprint
*and* bindings; two that differ only in predicate constants share the
``shape`` with different ``bindings`` — exactly the split the plan
cache (shape-level reuse) and the materialized catalog (shape = cube
route, bindings = result key) need.

Literals that change the *meaning of the plan* rather than a predicate
constant stay structural and are never bound: GROUP BY expressions,
select-list expressions (e.g. the PERCENTILE fraction), LIMIT, LIKE
patterns, and TABLESAMPLE rates.  Nested (subquery) statements are
fingerprinted whole with no binding — their analysis depends on inner
structure too intricately for safe literal rebinding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Optional

from repro.sql import ast


@dataclass(frozen=True)
class _Placeholder(ast.Expression):
    """Stands in for a bound literal; renders as ``?``."""

    ordinal: int

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class QueryFingerprint:
    """Canonical shape plus the literal values bound out of it.

    Attributes:
        shape: canonical SQL with predicate literals replaced by ``?``.
        bindings: the literal values, in predicate traversal order.
        rebindable: whether an analyzed template for this shape may be
            re-used with different bindings (false for nested queries,
            whose shape keeps its literals inline and binds nothing).
    """

    shape: str
    bindings: tuple[Any, ...]
    rebindable: bool = True


class _Binder:
    """Rewrites an expression tree, pulling literals into a binding list."""

    def __init__(self) -> None:
        self.values: list[Any] = []

    def bind(self, expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.Literal):
            placeholder = _Placeholder(len(self.values))
            self.values.append(expr.value)
            return placeholder
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self.bind(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op, self.bind(expr.left), self.bind(expr.right)
            )
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name.upper(),
                tuple(self.bind(arg) for arg in expr.args),
                expr.distinct,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.bind(expr.operand),
                tuple(self.bind(item) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                self.bind(expr.operand),
                self.bind(expr.low),
                self.bind(expr.high),
                expr.negated,
            )
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.bind(expr.operand), expr.negated)
        if isinstance(expr, ast.Like):
            # LIKE patterns stay structural: the pattern shapes which
            # rows match in a way predicate-subsumption reasoning does
            # not model, so variants must not share a shape.
            return ast.Like(self.bind(expr.operand), expr.pattern, expr.negated)
        if isinstance(expr, ast.CaseWhen):
            return ast.CaseWhen(
                tuple(
                    (self.bind(condition), self.bind(value))
                    for condition, value in expr.branches
                ),
                None if expr.default is None else self.bind(expr.default),
            )
        return expr


@lru_cache(maxsize=512)
def fingerprint_statement(statement: ast.SelectStatement) -> QueryFingerprint:
    """Fingerprint a parsed SELECT (cached — statements are frozen)."""
    if statement.source.subquery is not None:
        return QueryFingerprint(
            shape=statement.to_sql(), bindings=(), rebindable=False
        )
    binder = _Binder()
    bound_where: Optional[ast.Expression] = None
    if statement.where is not None:
        bound_where = binder.bind(statement.where)
    bound_having: Optional[ast.Expression] = None
    if statement.having is not None:
        bound_having = binder.bind(statement.having)
    shaped = replace(
        statement, where=bound_where, having=bound_having, within=None
    )
    shape = shaped.to_sql()
    if statement.within is not None:
        # The bound *value* binds like a predicate literal; the bound
        # *kind* and confidence stay structural.  Bounded and unbounded
        # variants of the same query therefore never alias in the plan
        # cache or catalog, while `WITHIN 2%` and `WITHIN 5%` share one
        # analyzed template.
        binder.values.append(statement.within.bound_value)
        shape = f"{shape} {_within_shape(statement.within)}"
    return QueryFingerprint(shape=shape, bindings=tuple(binder.values))


def _within_shape(within: ast.WithinClause) -> str:
    """Canonical WITHIN rendering with the bound value as ``?``."""
    bound = {"relative": "?%", "absolute": "?", "time": "?s"}[within.kind]
    rendered = f"WITHIN {bound}"
    if within.confidence is not None:
        rendered += f" AT {within.confidence!r} CONFIDENCE"
    return rendered


def canonical_sql(statement: ast.SelectStatement) -> str:
    """Canonical rendering with literals inline (whitespace/case folded)."""
    return statement.to_sql()


@lru_cache(maxsize=2048)
def fingerprint_sql(sql: str) -> QueryFingerprint:
    """Fingerprint raw SQL text (parse + :func:`fingerprint_statement`).

    The serving tier's cross-query sharing keys on this: two
    concurrently admitted requests whose fingerprints agree on *both*
    shape and bindings ask for byte-identical work, so one execution
    can honestly answer all of them.  Cached on the raw text because
    dashboard clients resubmit identical strings.

    Raises the usual :class:`~repro.errors.SqlError` subtypes on
    malformed input — callers that only want an opportunistic share key
    should catch those and fall back to no sharing.
    """
    from repro.sql.parser import parse_select

    return fingerprint_statement(parse_select(sql))


def share_key(sql: str) -> Optional[tuple[str, tuple[Any, ...]]]:
    """The (shape, bindings) identity used to batch identical queries.

    ``None`` when the SQL does not parse (the submission will fail in
    the engine with a typed error anyway) — sharing is an optimisation
    and must never introduce a new failure mode.
    """
    try:
        fingerprint = fingerprint_sql(sql)
    except Exception:
        return None
    return (fingerprint.shape, fingerprint.bindings)
