"""Abstract syntax tree for the supported SQL dialect.

Nodes are frozen dataclasses.  Each expression node can render itself
back to SQL (:meth:`Expression.to_sql`), which the tests use for
parse/print round-trips, and supports generic traversal via
:func:`walk`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional, Union


class Expression:
    """Base class for expression nodes."""

    def children(self) -> Sequence["Expression"]:
        """Direct child expressions, for generic traversal."""
        return ()

    def to_sql(self) -> str:
        """Render this expression back to SQL text."""
        raise NotImplementedError


def walk(expr: Expression) -> Iterator[Expression]:
    """Yield ``expr`` and every descendant expression, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


@dataclass(frozen=True)
class Literal(Expression):
    """A numeric, string, boolean, or NULL literal."""

    value: Any

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return _quote_string(self.value)
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally qualified (``table.column``)."""

    name: str
    table: Optional[str] = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """The ``*`` in ``COUNT(*)`` or ``SELECT *``."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operator: ``-expr`` or ``NOT expr``."""

    op: str
    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, AND/OR."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function or UDF call, or an aggregate call.

    The parser cannot always know whether a name is an aggregate (UDAFs
    share syntax with scalar UDFs), so classification happens in the
    analyzer.  ``distinct`` is only meaningful for aggregates.
    """

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    def children(self) -> Sequence[Expression]:
        return self.args

    def to_sql(self) -> str:
        prefix = "DISTINCT " if self.distinct else ""
        rendered = ", ".join(arg.to_sql() for arg in self.args)
        return f"{self.name}({prefix}{rendered})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (value, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, *self.items)

    def to_sql(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        rendered = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {op} ({rendered}))"


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.low, self.high)

    def to_sql(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {op} {self.low.to_sql()} "
            f"AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def to_sql(self) -> str:
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {op} {_quote_string(self.pattern)})"


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    branches: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None

    def children(self) -> Sequence[Expression]:
        flat: list[Expression] = []
        for condition, value in self.branches:
            flat.extend((condition, value))
        if self.default is not None:
            flat.append(self.default)
        return tuple(flat)

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.branches:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Statement nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One item of a SELECT list: an expression with an optional alias."""

    expression: Expression
    alias: Optional[str] = None

    def output_name(self, ordinal: int) -> str:
        """The result-column name: alias, bare column name, or ``_colN``."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return f"_col{ordinal}"

    def to_sql(self) -> str:
        rendered = self.expression.to_sql()
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass(frozen=True)
class TableSample:
    """The ``TABLESAMPLE POISSONIZED (rate)`` clause (§5.2).

    ``rate`` is the Poisson rate parameter multiplied by 100, matching
    the paper's SQL surface: ``POISSONIZED (100)`` means Poisson(1).
    """

    rate: float

    def to_sql(self) -> str:
        rendered = int(self.rate) if float(self.rate).is_integer() else self.rate
        return f"TABLESAMPLE POISSONIZED ({rendered})"


@dataclass(frozen=True)
class TableRef:
    """A FROM item: a named table or a parenthesised subquery."""

    name: Optional[str] = None
    subquery: Optional["SelectStatement"] = None
    alias: Optional[str] = None
    sample: Optional[TableSample] = None

    def to_sql(self) -> str:
        base = self.name if self.name else f"({self.subquery.to_sql()})"
        if self.alias:
            base = f"{base} AS {self.alias}"
        if self.sample:
            base = f"{base} {self.sample.to_sql()}"
        return base


def _render_number(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


@dataclass(frozen=True)
class WithinClause:
    """The bounded-error/bounded-time contract: ``... WITHIN bound``.

    Exactly one of the three bound kinds is set:

    * ``relative_error`` — ``WITHIN 2%``, as a fraction (0.02);
    * ``absolute_error`` — ``WITHIN 5.0``, in answer units;
    * ``time_budget_seconds`` — ``WITHIN 500ms`` / ``WITHIN 2s``.

    ``confidence`` is the optional ``AT 95% CONFIDENCE`` suffix, as a
    fraction; ``None`` means "use the engine's default".
    """

    relative_error: Optional[float] = None
    absolute_error: Optional[float] = None
    time_budget_seconds: Optional[float] = None
    confidence: Optional[float] = None

    def __post_init__(self):
        bounds = [
            self.relative_error,
            self.absolute_error,
            self.time_budget_seconds,
        ]
        given = [bound for bound in bounds if bound is not None]
        if len(given) != 1:
            raise ValueError(
                "WITHIN requires exactly one of relative_error, "
                "absolute_error, or time_budget_seconds"
            )
        if given[0] <= 0:
            raise ValueError("WITHIN bound must be positive")
        if self.relative_error is not None and self.relative_error > 1.0:
            raise ValueError("relative error bound cannot exceed 100%")
        if self.confidence is not None and not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be strictly between 0 and 1")

    @property
    def kind(self) -> str:
        """``"relative"``, ``"absolute"``, or ``"time"``."""
        if self.relative_error is not None:
            return "relative"
        if self.absolute_error is not None:
            return "absolute"
        return "time"

    @property
    def bound_value(self) -> float:
        """The bound's numeric value, whatever its kind."""
        if self.relative_error is not None:
            return self.relative_error
        if self.absolute_error is not None:
            return self.absolute_error
        return float(self.time_budget_seconds)

    def to_sql(self) -> str:
        if self.relative_error is not None:
            bound = f"{_render_number(self.relative_error * 100.0)}%"
        elif self.absolute_error is not None:
            bound = _render_number(self.absolute_error)
        else:
            seconds = float(self.time_budget_seconds)
            if seconds < 1.0:
                bound = f"{_render_number(seconds * 1e3)}ms"
            else:
                bound = f"{_render_number(seconds)}s"
        rendered = f"WITHIN {bound}"
        if self.confidence is not None:
            rendered += (
                f" AT {_render_number(self.confidence * 100.0)}% CONFIDENCE"
            )
        return rendered


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with direction."""

    expression: Expression
    ascending: bool = True

    def to_sql(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.expression.to_sql()} {direction}"


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT statement over a single table or subquery."""

    items: tuple[SelectItem, ...]
    source: TableRef
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = field(default_factory=tuple)
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: Optional[int] = None
    within: Optional[WithinClause] = None

    def to_sql(self) -> str:
        parts = [
            "SELECT " + ", ".join(item.to_sql() for item in self.items),
            "FROM " + self.source.to_sql(),
        ]
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(expr.to_sql() for expr in self.group_by)
            )
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append(
                "ORDER BY " + ", ".join(item.to_sql() for item in self.order_by)
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.within is not None:
            parts.append(self.within.to_sql())
        return " ".join(parts)


UNION_ALL_SEPARATOR = " UNION ALL "


@dataclass(frozen=True)
class UnionAll:
    """``SELECT ... UNION ALL SELECT ...`` — used by the §5.2 baseline."""

    selects: tuple[SelectStatement, ...]

    def to_sql(self) -> str:
        return UNION_ALL_SEPARATOR.join(s.to_sql() for s in self.selects)


Statement = Union[SelectStatement, UnionAll]
