"""SQL frontend: lexer, parser, AST, function registry, and analyzer.

Supports the analytic SQL subset the paper's pipeline handles: single
aggregates or aggregate lists over one table (or a nested subquery), with
projections, filters, ``GROUP BY``/``HAVING``, UDFs, and the paper's
``TABLESAMPLE POISSONIZED (rate)`` clause (§5.2).
"""

from repro.sql.lexer import tokenize, Token, TokenType
from repro.sql.parser import parse
from repro.sql.analyzer import analyze, AnalyzedQuery, AggregateSpec
from repro.sql.functions import (
    FunctionRegistry,
    default_function_registry,
)

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "analyze",
    "AnalyzedQuery",
    "AggregateSpec",
    "FunctionRegistry",
    "default_function_registry",
]
