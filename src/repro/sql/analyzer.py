"""Semantic analysis of parsed queries.

:func:`analyze` validates a :class:`~repro.sql.ast.SelectStatement`
against a table schema and produces an :class:`AnalyzedQuery` — the
structure the planner and error-estimation pipeline consume.  Analysis
answers the questions the paper's pipeline asks of every query:

* Which aggregates does it compute, over which argument expressions?
* Is the query amenable to **closed-form** error estimation (§2.3.2)?
  Only single-layer COUNT/SUM/AVG/VARIANCE/STDEV aggregates with no UDFs
  and no nested aggregation qualify.
* Is it **outlier sensitive** (MIN/MAX/extreme percentiles), the failure
  condition for bootstrap error bars (§2.3.1)?
* Which aggregates are **extensive** (COUNT/SUM) and must be scaled by
  ``|D| / |S|`` when computed on a sample?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.aggregates import (
    AggregateFunction,
    PercentileAggregate,
    aggregate_registry,
    get_aggregate,
)
from repro.errors import AnalysisError
from repro.sql import ast
from repro.sql.functions import FunctionRegistry, default_function_registry

#: Aggregates with known CLT closed forms (§2.3.2).
CLOSED_FORM_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "VARIANCE", "STDEV"})

#: Aggregates whose sample statistic scales with sample size and must be
#: multiplied by |D| / |S| to estimate the full-data answer.
EXTENSIVE_AGGREGATES = frozenset({"COUNT", "SUM"})


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computed by a query.

    Attributes:
        function: the weighted aggregate implementation.
        argument: the argument expression, or ``None`` for ``COUNT(*)``.
        output_name: result column name.
        distinct: whether ``DISTINCT`` was specified.
        extensive: whether the statistic must be scaled by ``|D| / |S|``.
        contains_udf: whether the argument contains a scalar UDF.
        is_udaf: whether the function itself is user-defined.
        closed_form_capable: whether CLT closed-form error estimation
            applies to this aggregate in this query.
    """

    function: AggregateFunction
    argument: Optional[ast.Expression]
    output_name: str
    distinct: bool = False
    extensive: bool = False
    contains_udf: bool = False
    is_udaf: bool = False
    closed_form_capable: bool = False

    @property
    def outlier_sensitive(self) -> bool:
        return self.function.outlier_sensitive


@dataclass(frozen=True)
class AnalyzedQuery:
    """The result of semantic analysis over a SELECT statement.

    For nested queries (a subquery in FROM), ``inner`` holds the analysis
    of the inner query and ``source_table`` names the base table at the
    bottom of the nesting.
    """

    statement: ast.SelectStatement
    source_table: str
    aggregates: tuple[AggregateSpec, ...]
    group_by: tuple[ast.Expression, ...]
    group_by_names: tuple[str, ...]
    where: Optional[ast.Expression]
    having: Optional[ast.Expression]
    referenced_columns: frozenset[str]
    contains_udf: bool
    contains_udaf: bool
    nested: bool
    inner: Optional["AnalyzedQuery"] = None
    sample_rate: Optional[float] = None
    plain_items: tuple[ast.SelectItem, ...] = field(default_factory=tuple)

    @property
    def is_aggregate_query(self) -> bool:
        return bool(self.aggregates)

    @property
    def within(self) -> Optional[ast.WithinClause]:
        """The statement's bound contract, if any.

        A property over ``statement`` (not a stored field) so shape-cache
        template rebinding — which swaps in the new statement — always
        reflects the rebound query's own WITHIN clause.
        """
        return self.statement.within

    @property
    def closed_form_applicable(self) -> bool:
        """Whether every aggregate admits a CLT closed form (§2.3.2).

        The paper's rule: simple single-layer COUNT/SUM/AVG/VARIANCE/STDEV
        with projections/filters/GROUP BY only — no UDFs, no UDAFs, no
        DISTINCT, and no nested aggregation.
        """
        if not self.aggregates or self.nested:
            return False
        return all(spec.closed_form_capable for spec in self.aggregates)

    @property
    def outlier_sensitive(self) -> bool:
        """Whether any aggregate is dominated by extreme values."""
        return any(spec.outlier_sensitive for spec in self.aggregates)


def _collect_columns(
    expr: ast.Expression, registry: FunctionRegistry
) -> tuple[set[str], bool, bool]:
    """Return (column names, contains scalar UDF, contains aggregate)."""
    columns: set[str] = set()
    has_udf = False
    has_aggregate = False
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            columns.add(node.name)
        elif isinstance(node, ast.FunctionCall):
            if registry.is_aggregate(node.name):
                has_aggregate = True
            elif registry.is_scalar_udf(node.name):
                has_udf = True
            elif not registry.is_scalar(node.name):
                raise AnalysisError(f"unknown function {node.name!r}")
    return columns, has_udf, has_aggregate


def _check_columns_exist(columns: set[str], schema: set[str], context: str) -> None:
    unknown = sorted(columns - schema)
    if unknown:
        raise AnalysisError(
            f"unknown column(s) {unknown} in {context}; "
            f"available: {sorted(schema)}"
        )


def _make_aggregate_spec(
    call: ast.FunctionCall,
    output_name: str,
    registry: FunctionRegistry,
    schema: set[str],
) -> AggregateSpec:
    """Build the spec for one aggregate call, validating its argument."""
    name = call.name.upper()
    is_udaf = registry.is_udaf(name)

    if name == "COUNT" and call.distinct:
        function: AggregateFunction = get_aggregate("COUNT_DISTINCT")
        effective_name = "COUNT_DISTINCT"
    elif is_udaf:
        function = registry.udaf_implementation(name)
        effective_name = name
    elif name == "PERCENTILE":
        if len(call.args) != 2 or not isinstance(call.args[1], ast.Literal):
            raise AnalysisError(
                "PERCENTILE requires (expression, fraction-literal)"
            )
        function = PercentileAggregate(float(call.args[1].value))
        effective_name = name
    else:
        function = get_aggregate(name)
        effective_name = name

    if isinstance(function, PercentileAggregate):
        argument_exprs = call.args[:1]
    else:
        argument_exprs = call.args

    argument: Optional[ast.Expression]
    if not argument_exprs or isinstance(argument_exprs[0], ast.Star):
        if effective_name != "COUNT":
            raise AnalysisError(f"{name} requires an argument expression")
        argument = None
        contains_udf = False
    else:
        if len(argument_exprs) != 1:
            raise AnalysisError(f"{name} takes exactly one argument")
        argument = argument_exprs[0]
        columns, contains_udf, nested_aggregate = _collect_columns(
            argument, registry
        )
        if nested_aggregate:
            raise AnalysisError(
                f"aggregate {name} may not contain a nested aggregate"
            )
        _check_columns_exist(columns, schema, f"aggregate {name}")

    closed_form_capable = (
        effective_name in CLOSED_FORM_AGGREGATES
        and not call.distinct
        and not contains_udf
        and not is_udaf
    )
    return AggregateSpec(
        function=function,
        argument=argument,
        output_name=output_name,
        distinct=call.distinct,
        extensive=effective_name in EXTENSIVE_AGGREGATES,
        contains_udf=contains_udf,
        is_udaf=is_udaf,
        closed_form_capable=closed_form_capable,
    )


def analyze(
    statement: ast.SelectStatement,
    schema: dict[str, object] | set[str],
    registry: FunctionRegistry | None = None,
) -> AnalyzedQuery:
    """Semantically analyze ``statement`` against ``schema``.

    Args:
        statement: parsed SELECT statement.
        schema: column names of the source base table (a mapping's keys
            are used, so a ``Table.schema`` works directly).
        registry: function registry; defaults to built-ins only.

    Raises:
        AnalysisError: on unknown columns/functions, misplaced aggregates,
            or unsupported constructs.
    """
    registry = registry or default_function_registry()
    schema_names = set(schema)

    source = statement.source
    inner: Optional[AnalyzedQuery] = None
    if source.subquery is not None:
        inner = analyze(source.subquery, schema_names, registry)
        # The outer query sees the inner query's output columns.
        visible = _output_schema(inner)
        source_table = inner.source_table
        nested = True
    else:
        if source.name is None:
            raise AnalysisError("FROM clause requires a table or subquery")
        visible = schema_names
        source_table = source.name
        nested = False

    referenced: set[str] = set()
    contains_udf = False
    contains_udaf = False

    where = statement.where
    if where is not None:
        columns, udf_in_where, aggregate_in_where = _collect_columns(where, registry)
        if aggregate_in_where:
            raise AnalysisError("aggregates are not allowed in WHERE")
        _check_columns_exist(columns, visible, "WHERE clause")
        referenced |= columns
        contains_udf |= udf_in_where

    group_by = statement.group_by
    group_by_names: list[str] = []
    for expr in group_by:
        columns, udf_in_key, aggregate_in_key = _collect_columns(expr, registry)
        if aggregate_in_key:
            raise AnalysisError("aggregates are not allowed in GROUP BY")
        _check_columns_exist(columns, visible, "GROUP BY clause")
        referenced |= columns
        contains_udf |= udf_in_key
        if isinstance(expr, ast.ColumnRef):
            group_by_names.append(expr.name)
        else:
            group_by_names.append(expr.to_sql())

    aggregates: list[AggregateSpec] = []
    plain_items: list[ast.SelectItem] = []
    for ordinal, item in enumerate(statement.items):
        expr = item.expression
        if isinstance(expr, ast.Star):
            plain_items.append(item)
            continue
        if isinstance(expr, ast.FunctionCall) and registry.is_aggregate(expr.name):
            spec = _make_aggregate_spec(
                expr, item.output_name(ordinal), registry, visible
            )
            aggregates.append(spec)
            contains_udf |= spec.contains_udf
            contains_udaf |= spec.is_udaf
            if spec.argument is not None:
                columns, __, __ = _collect_columns(spec.argument, registry)
                referenced |= columns
            continue
        columns, udf_in_item, aggregate_in_item = _collect_columns(expr, registry)
        if aggregate_in_item:
            raise AnalysisError(
                "aggregates must appear at the top level of a select item "
                f"(offending item: {item.to_sql()})"
            )
        _check_columns_exist(columns, visible, "select list")
        referenced |= columns
        contains_udf |= udf_in_item
        plain_items.append(item)

    if aggregates and plain_items:
        group_key_sql = {expr.to_sql() for expr in group_by}
        for item in plain_items:
            if isinstance(item.expression, ast.Star):
                raise AnalysisError("SELECT * cannot be mixed with aggregates")
            if item.expression.to_sql() not in group_key_sql:
                raise AnalysisError(
                    f"non-aggregated item {item.to_sql()!r} must appear in "
                    "GROUP BY"
                )

    having = statement.having
    if having is not None:
        if not group_by:
            raise AnalysisError("HAVING requires GROUP BY")
        columns, udf_in_having, __ = _collect_columns(having, registry)
        _check_columns_exist(columns, visible, "HAVING clause")
        referenced |= columns
        contains_udf |= udf_in_having

    if inner is not None:
        contains_udf |= inner.contains_udf
        contains_udaf |= inner.contains_udaf
        referenced |= inner.referenced_columns

    sample_rate = source.sample.rate if source.sample else None

    return AnalyzedQuery(
        statement=statement,
        source_table=source_table,
        aggregates=tuple(aggregates),
        group_by=tuple(group_by),
        group_by_names=tuple(group_by_names),
        where=where,
        having=having,
        referenced_columns=frozenset(referenced),
        contains_udf=contains_udf,
        contains_udaf=contains_udaf,
        nested=nested,
        inner=inner,
        sample_rate=sample_rate,
        plain_items=tuple(plain_items),
    )


def _output_schema(query: AnalyzedQuery) -> set[str]:
    """Column names produced by an analyzed query (for nesting)."""
    names = {spec.output_name for spec in query.aggregates}
    for ordinal, item in enumerate(query.plain_items):
        if isinstance(item.expression, ast.Star):
            names |= query.referenced_columns
        else:
            names.add(item.output_name(ordinal))
    return names


def is_closed_form_applicable(
    statement: ast.SelectStatement,
    schema: dict[str, object] | set[str],
    registry: FunctionRegistry | None = None,
) -> bool:
    """Convenience wrapper: does the paper's closed-form rule admit this query?"""
    return analyze(statement, schema, registry).closed_form_applicable
