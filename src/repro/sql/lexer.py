"""Tokenizer for the supported SQL dialect.

A hand-rolled scanner producing a flat list of :class:`Token` objects.
Keywords are case-insensitive; identifiers preserve their original case.
String literals use single quotes with ``''`` as the escape for a quote.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TokenizeError


class TokenType(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "IS",
        "NULL",
        "LIKE",
        "DISTINCT",
        "TRUE",
        "FALSE",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "TABLESAMPLE",
        "POISSONIZED",
        "UNION",
        "ALL",
        "WITHIN",
        "AT",
        "CONFIDENCE",
    }
)

_OPERATORS = (
    "<=",
    ">=",
    "<>",
    "!=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)

_PUNCTUATION = "(),."


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: lexical category.
        value: canonical text — upper-cased for keywords, literal text for
            everything else.
        position: character offset of the token's first character.
    """

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """True when this token has the given type (and value, if given)."""
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into a token list terminated by an EOF token.

    Raises:
        TokenizeError: on any character sequence outside the dialect.
    """
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = length if newline == -1 else newline + 1
            continue
        if ch == "'":
            token, i = _scan_string(text, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            token, i = _scan_number(text, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _scan_word(text, i)
            tokens.append(token)
            continue
        matched_operator = next(
            (op for op in _OPERATORS if text.startswith(op, i)), None
        )
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, i))
            i += len(matched_operator)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r} at position {i}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _scan_string(text: str, start: int) -> tuple[Token, int]:
    """Scan a single-quoted string literal starting at ``start``."""
    i = start + 1
    pieces: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if text.startswith("''", i):
                pieces.append("'")
                i += 2
                continue
            return Token(TokenType.STRING, "".join(pieces), start), i + 1
        pieces.append(ch)
        i += 1
    raise TokenizeError(f"unterminated string literal at position {start}", start)


def _scan_number(text: str, start: int) -> tuple[Token, int]:
    """Scan an integer or decimal literal (with optional exponent)."""
    i = start
    seen_dot = False
    seen_exponent = False
    while i < len(text):
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exponent:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exponent and i > start:
            seen_exponent = True
            i += 1
            if i < len(text) and text[i] in "+-":
                i += 1
        else:
            break
    literal = text[start:i]
    if literal.endswith((".", "e", "E", "+", "-")):
        raise TokenizeError(f"malformed number {literal!r} at position {start}", start)
    return Token(TokenType.NUMBER, literal, start), i


def _scan_word(text: str, start: int) -> tuple[Token, int]:
    """Scan an identifier or keyword."""
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    word = text[start:i]
    if word.upper() in KEYWORDS:
        return Token(TokenType.KEYWORD, word.upper(), start), i
    return Token(TokenType.IDENTIFIER, word, start), i
