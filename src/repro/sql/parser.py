"""Recursive-descent parser for the supported SQL dialect.

Grammar (informally)::

    statement   := select (UNION ALL select)*
    select      := SELECT item (, item)* FROM table_ref
                   [WHERE expr] [GROUP BY expr (, expr)*] [HAVING expr]
                   [ORDER BY order (, order)*] [LIMIT int] [within]
    within      := WITHIN bound (, bound)* [AT number [%] CONFIDENCE]
    bound       := number '%'            -- relative error
                 | number                -- absolute error
                 | number ('ms' | 's')   -- time budget
    table_ref   := (identifier | '(' select ')') [AS? alias]
                   [TABLESAMPLE POISSONIZED '(' number ')']
    item        := expr [AS? alias] | '*'
    expr        := or_expr with standard precedence:
                   OR < AND < NOT < comparison/IN/BETWEEN/IS/LIKE
                   < additive < multiplicative < unary minus < primary

Only features the paper's pipeline needs are implemented; anything else
raises :class:`~repro.errors.ParseError` with the offending position.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    """Stateful cursor over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- cursor helpers ----------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self.current.matches(token_type, value)

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.check(token_type, value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if not self.check(token_type, value):
            wanted = value or token_type.value
            got = self.current.value or "end of input"
            raise ParseError(
                f"expected {wanted!r}, got {got!r} at position "
                f"{self.current.position}",
                self.current.position,
            )
        return self.advance()

    # -- statements ---------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        selects = [self.parse_select()]
        while self.accept(TokenType.KEYWORD, "UNION"):
            self.expect(TokenType.KEYWORD, "ALL")
            selects.append(self.parse_select())
        self.expect(TokenType.EOF)
        if len(selects) == 1:
            return selects[0]
        return ast.UnionAll(tuple(selects))

    def parse_select(self) -> ast.SelectStatement:
        self.expect(TokenType.KEYWORD, "SELECT")
        items = [self._parse_select_item()]
        while self.accept(TokenType.PUNCTUATION, ","):
            items.append(self._parse_select_item())
        self.expect(TokenType.KEYWORD, "FROM")
        source = self._parse_table_ref()
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()
        group_by: list[ast.Expression] = []
        if self.accept(TokenType.KEYWORD, "GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            group_by.append(self.parse_expression())
            while self.accept(TokenType.PUNCTUATION, ","):
                group_by.append(self.parse_expression())
        having = None
        if self.accept(TokenType.KEYWORD, "HAVING"):
            having = self.parse_expression()
        order_by: list[ast.OrderItem] = []
        if self.accept(TokenType.KEYWORD, "ORDER"):
            self.expect(TokenType.KEYWORD, "BY")
            order_by.append(self._parse_order_item())
            while self.accept(TokenType.PUNCTUATION, ","):
                order_by.append(self._parse_order_item())
        limit = None
        if self.accept(TokenType.KEYWORD, "LIMIT"):
            token = self.expect(TokenType.NUMBER)
            limit = int(float(token.value))
        within = None
        if self.accept(TokenType.KEYWORD, "WITHIN"):
            within = self._parse_within()
        return ast.SelectStatement(
            items=tuple(items),
            source=source,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            within=within,
        )

    def _parse_within(self) -> ast.WithinClause:
        """Parse the bound list and optional confidence after WITHIN."""
        start = self.current.position
        relative: float | None = None
        absolute: float | None = None
        time_budget: float | None = None
        while True:
            position = self.current.position
            kind, value = self._parse_within_bound()
            already = {
                "relative": relative,
                "absolute": absolute,
                "time": time_budget,
            }[kind]
            if already is not None:
                raise ParseError(
                    f"duplicate WITHIN {kind} bound at position {position}",
                    position,
                )
            if kind == "relative":
                relative = value
            elif kind == "absolute":
                absolute = value
            else:
                time_budget = value
            if not self.accept(TokenType.PUNCTUATION, ","):
                break
        if time_budget is not None and (
            relative is not None or absolute is not None
        ):
            raise ParseError(
                "WITHIN cannot combine an error bound and a time budget "
                f"at position {start}",
                start,
            )
        if relative is not None and absolute is not None:
            raise ParseError(
                "WITHIN cannot combine relative and absolute error bounds "
                f"at position {start}",
                start,
            )
        confidence = None
        if self.accept(TokenType.KEYWORD, "AT"):
            position = self.current.position
            token = self.expect(TokenType.NUMBER)
            confidence = float(token.value)
            if self.accept(TokenType.OPERATOR, "%"):
                confidence /= 100.0
            self.expect(TokenType.KEYWORD, "CONFIDENCE")
            if not 0.0 < confidence < 1.0:
                raise ParseError(
                    f"confidence must lie in (0, 1), got {confidence} "
                    f"at position {position}",
                    position,
                )
        return ast.WithinClause(
            relative_error=relative,
            absolute_error=absolute,
            time_budget_seconds=time_budget,
            confidence=confidence,
        )

    def _parse_within_bound(self) -> tuple[str, float]:
        """One WITHIN bound: ``2%``, ``5.0``, ``500ms``, or ``2s``."""
        position = self.current.position
        negated = bool(self.accept(TokenType.OPERATOR, "-"))
        token = self.expect(TokenType.NUMBER)
        value = float(token.value)
        if negated or value <= 0:
            rendered = f"-{token.value}" if negated else token.value
            raise ParseError(
                f"WITHIN bound must be positive, got {rendered} "
                f"at position {position}",
                position,
            )
        if self.accept(TokenType.OPERATOR, "%"):
            if value > 100.0:
                raise ParseError(
                    f"relative error bound cannot exceed 100%, got "
                    f"{token.value}% at position {position}",
                    position,
                )
            return "relative", value / 100.0
        if self.check(TokenType.IDENTIFIER):
            unit = self.current.value.lower()
            if unit in ("ms", "s"):
                self.advance()
                return "time", value / 1e3 if unit == "ms" else value
            raise ParseError(
                f"unknown WITHIN time unit {self.current.value!r} "
                f"(expected 'ms' or 's') at position {self.current.position}",
                self.current.position,
            )
        return "absolute", value

    def _parse_select_item(self) -> ast.SelectItem:
        if self.check(TokenType.OPERATOR, "*") and self._next_ends_item():
            self.advance()
            return ast.SelectItem(ast.Star())
        expression = self.parse_expression()
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.check(TokenType.IDENTIFIER):
            alias = self.advance().value
        return ast.SelectItem(expression, alias)

    def _next_ends_item(self) -> bool:
        """Whether the token after the cursor terminates a select item.

        Distinguishes ``SELECT *`` from ``SELECT a * b``: the bare star is
        followed by a comma or FROM.
        """
        lookahead = self._tokens[self._index + 1]
        return lookahead.matches(TokenType.PUNCTUATION, ",") or lookahead.matches(
            TokenType.KEYWORD, "FROM"
        )

    def _parse_table_ref(self) -> ast.TableRef:
        if self.accept(TokenType.PUNCTUATION, "("):
            subquery = self.parse_select()
            self.expect(TokenType.PUNCTUATION, ")")
            name = None
        else:
            name = self.expect(TokenType.IDENTIFIER).value
            subquery = None
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.check(TokenType.IDENTIFIER):
            alias = self.advance().value
        sample = None
        if self.accept(TokenType.KEYWORD, "TABLESAMPLE"):
            self.expect(TokenType.KEYWORD, "POISSONIZED")
            self.expect(TokenType.PUNCTUATION, "(")
            rate_token = self.expect(TokenType.NUMBER)
            self.expect(TokenType.PUNCTUATION, ")")
            sample = ast.TableSample(rate=float(rate_token.value))
        return ast.TableRef(name=name, subquery=subquery, alias=alias, sample=sample)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self.accept(TokenType.KEYWORD, "DESC"):
            ascending = False
        else:
            self.accept(TokenType.KEYWORD, "ASC")
        return ast.OrderItem(expression, ascending)

    # -- expressions ----------------------------------------------------------
    def parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self.accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self.accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        if self.check(TokenType.OPERATOR) and self.current.value in _COMPARISON_OPS:
            op = self.advance().value
            if op == "<>":
                op = "!="
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = bool(self.accept(TokenType.KEYWORD, "NOT"))
        if self.accept(TokenType.KEYWORD, "IN"):
            return self._parse_in_list(left, negated)
        if self.accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._parse_additive()
            self.expect(TokenType.KEYWORD, "AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept(TokenType.KEYWORD, "LIKE"):
            pattern = self.expect(TokenType.STRING).value
            return ast.Like(left, pattern, negated)
        if negated:
            raise ParseError(
                "expected IN, BETWEEN, or LIKE after NOT at position "
                f"{self.current.position}",
                self.current.position,
            )
        if self.accept(TokenType.KEYWORD, "IS"):
            is_negated = bool(self.accept(TokenType.KEYWORD, "NOT"))
            self.expect(TokenType.KEYWORD, "NULL")
            return ast.IsNull(left, is_negated)
        return left

    def _parse_in_list(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self.expect(TokenType.PUNCTUATION, "(")
        items = [self.parse_expression()]
        while self.accept(TokenType.PUNCTUATION, ","):
            items.append(self.parse_expression())
        self.expect(TokenType.PUNCTUATION, ")")
        return ast.InList(operand, tuple(items), negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while self.check(TokenType.OPERATOR) and self.current.value in ("+", "-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while self.check(TokenType.OPERATOR) and self.current.value in ("*", "/", "%"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expression:
        if self.accept(TokenType.OPERATOR, "-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self.accept(TokenType.OPERATOR, "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            value = int(text) if text.isdigit() else float(text)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches(TokenType.KEYWORD, "CASE"):
            return self._parse_case()
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect(TokenType.PUNCTUATION, ")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position}",
            token.position,
        )

    def _parse_case(self) -> ast.Expression:
        self.expect(TokenType.KEYWORD, "CASE")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept(TokenType.KEYWORD, "WHEN"):
            condition = self.parse_expression()
            self.expect(TokenType.KEYWORD, "THEN")
            branches.append((condition, self.parse_expression()))
        if not branches:
            raise ParseError(
                f"CASE requires at least one WHEN at position "
                f"{self.current.position}",
                self.current.position,
            )
        default = None
        if self.accept(TokenType.KEYWORD, "ELSE"):
            default = self.parse_expression()
        self.expect(TokenType.KEYWORD, "END")
        return ast.CaseWhen(tuple(branches), default)

    def _parse_identifier_expression(self) -> ast.Expression:
        name = self.expect(TokenType.IDENTIFIER).value
        if self.accept(TokenType.PUNCTUATION, "("):
            return self._parse_call(name)
        if self.accept(TokenType.PUNCTUATION, "."):
            column = self.expect(TokenType.IDENTIFIER).value
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _parse_call(self, name: str) -> ast.Expression:
        distinct = bool(self.accept(TokenType.KEYWORD, "DISTINCT"))
        args: list[ast.Expression] = []
        if self.accept(TokenType.OPERATOR, "*"):
            args.append(ast.Star())
        elif not self.check(TokenType.PUNCTUATION, ")"):
            args.append(self.parse_expression())
            while self.accept(TokenType.PUNCTUATION, ","):
                args.append(self.parse_expression())
        self.expect(TokenType.PUNCTUATION, ")")
        return ast.FunctionCall(name.upper(), tuple(args), distinct)


def parse(text: str) -> ast.Statement:
    """Parse SQL ``text`` into an AST.

    Raises:
        TokenizeError: on lexical errors.
        ParseError: on grammatical errors.
    """
    return _Parser(tokenize(text)).parse_statement()


def parse_select(text: str) -> ast.SelectStatement:
    """Parse text that must be a single SELECT (no UNION ALL)."""
    statement = parse(text)
    if not isinstance(statement, ast.SelectStatement):
        raise ParseError("expected a single SELECT statement")
    return statement


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used in tests and plan construction)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_expression()
    parser.expect(TokenType.EOF)
    return expression
