"""Scalar function and UDF registries.

The analyzer consults a :class:`FunctionRegistry` to classify each
:class:`~repro.sql.ast.FunctionCall` as a built-in aggregate, a built-in
scalar function, a user-defined scalar function (UDF), or a user-defined
aggregate (UDAF).  UDFs matter to the paper because queries containing
them are never amenable to closed-form error estimation (§2.3.2) and are
a major failure category for the bootstrap (§3).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.engine.aggregates import (
    AggregateFunction,
    UserDefinedAggregate,
    aggregate_registry,
)
from repro.errors import AnalysisError

ScalarImpl = Callable[..., np.ndarray]


def _if_function(condition: np.ndarray, when_true: np.ndarray, when_false: np.ndarray) -> np.ndarray:
    return np.where(condition.astype(bool), when_true, when_false)


def _log_safe(values: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(values)


def _builtin_scalars() -> dict[str, ScalarImpl]:
    return {
        "ABS": np.abs,
        "SQRT": np.sqrt,
        "LOG": _log_safe,
        "LN": _log_safe,
        "EXP": np.exp,
        "FLOOR": np.floor,
        "CEIL": np.ceil,
        "ROUND": np.round,
        "SIGN": np.sign,
        "POW": np.power,
        "POWER": np.power,
        "GREATEST": np.maximum,
        "LEAST": np.minimum,
        "IF": _if_function,
        "LENGTH": np.vectorize(len, otypes=[np.int64]),
        "LOWER": np.vectorize(str.lower, otypes=[object]),
        "UPPER": np.vectorize(str.upper, otypes=[object]),
    }


@dataclass
class FunctionRegistry:
    """Registry of scalar functions, UDFs, and UDAFs for one engine.

    Built-in aggregates come from
    :data:`repro.engine.aggregates.aggregate_registry` and are shared;
    scalar UDFs and UDAFs are per-registry so that different
    :class:`~repro.core.pipeline.AQPEngine` instances can carry different
    user functions.
    """

    scalar_functions: dict[str, ScalarImpl] = field(default_factory=_builtin_scalars)
    scalar_udfs: dict[str, ScalarImpl] = field(default_factory=dict)
    udafs: dict[str, AggregateFunction] = field(default_factory=dict)

    # -- registration -----------------------------------------------------
    def register_udf(
        self, name: str, fn: Callable, vectorized: bool = True
    ) -> None:
        """Register a scalar user-defined function.

        Args:
            name: SQL-visible name (case-insensitive).
            fn: the implementation.  If ``vectorized`` it receives NumPy
                arrays; otherwise it is applied elementwise.
        """
        key = name.upper()
        if key in aggregate_registry:
            raise AnalysisError(
                f"cannot register UDF {name!r}: name collides with a "
                "built-in aggregate"
            )
        implementation = fn if vectorized else np.vectorize(fn)
        self.scalar_udfs[key] = implementation

    def register_udaf(
        self,
        name: str,
        fn: Callable[[np.ndarray], float],
        weighted_fn: Callable[[np.ndarray, np.ndarray], float] | None = None,
        outlier_sensitive: bool = False,
    ) -> None:
        """Register a user-defined aggregate (black-box statistic).

        UDAF queries are only approximable via the bootstrap; the analyzer
        marks them closed-form-incapable automatically.
        """
        key = name.upper()
        self.udafs[key] = UserDefinedAggregate(
            key, fn, weighted_fn, outlier_sensitive
        )

    # -- classification -----------------------------------------------------
    def is_aggregate(self, name: str) -> bool:
        key = name.upper()
        return key in aggregate_registry or key in self.udafs

    def is_udaf(self, name: str) -> bool:
        return name.upper() in self.udafs

    def is_scalar(self, name: str) -> bool:
        key = name.upper()
        return key in self.scalar_functions or key in self.scalar_udfs

    def is_scalar_udf(self, name: str) -> bool:
        return name.upper() in self.scalar_udfs

    def scalar_implementation(self, name: str) -> ScalarImpl:
        key = name.upper()
        if key in self.scalar_functions:
            return self.scalar_functions[key]
        if key in self.scalar_udfs:
            return self.scalar_udfs[key]
        raise AnalysisError(f"unknown scalar function {name!r}")

    def udaf_implementation(self, name: str) -> AggregateFunction:
        key = name.upper()
        if key not in self.udafs:
            raise AnalysisError(f"unknown UDAF {name!r}")
        return self.udafs[key]


def default_function_registry() -> FunctionRegistry:
    """A fresh registry with only the built-in scalar functions."""
    return FunctionRegistry()
