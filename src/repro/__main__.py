"""``python -m repro`` — the CSV AQP command line."""

import sys

from repro.cli import main

sys.exit(main())
