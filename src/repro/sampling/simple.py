"""Simple random sampling from a dataset.

The entry point of any S-AQP pipeline: draw ``S ⊆ D`` uniformly at random
(§2.1).  The paper assumes with-replacement sampling to simplify theory
and notes that without-replacement sampling is slightly more accurate in
practice; both are supported and without-replacement is the default used
by the sample catalog.
"""

from __future__ import annotations

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplingError


def simple_random_sample(
    dataset: Table,
    size: int | None = None,
    fraction: float | None = None,
    rng: np.random.Generator | None = None,
    replacement: bool = False,
) -> Table:
    """Draw a simple random sample from ``dataset``.

    Exactly one of ``size`` and ``fraction`` must be given.

    Args:
        dataset: the full dataset ``D``.
        size: absolute number of rows ``n = |S|``.
        fraction: sample size as a fraction of ``|D|``.
        rng: random generator; a fresh default generator when omitted.
        replacement: sample with replacement when true (the paper's
            theoretical setting); without replacement otherwise.

    Raises:
        SamplingError: on inconsistent or out-of-range parameters.
    """
    if (size is None) == (fraction is None):
        raise SamplingError("specify exactly one of size and fraction")
    if fraction is not None:
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(
                f"sample fraction must be in (0, 1], got {fraction}"
            )
        size = max(1, int(round(fraction * dataset.num_rows)))
    assert size is not None
    if size <= 0:
        raise SamplingError(f"sample size must be positive, got {size}")
    if not replacement and size > dataset.num_rows:
        raise SamplingError(
            f"cannot draw {size} rows without replacement from "
            f"{dataset.num_rows}"
        )
    rng = rng or np.random.default_rng()
    return dataset.sample_rows(size, rng, replacement=replacement)
