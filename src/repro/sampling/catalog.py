"""A BlinkDB-style catalog of tables and precomputed samples.

BlinkDB "precomputes and maintains a carefully chosen collection of
samples of input data [and] selects the best sample(s) at runtime for
answering each query" (§6).  :class:`SampleCatalog` is that component:
it owns base tables, builds named uniform samples of several sizes, and
answers "which sample should this query run on?" given a row budget.

Sample rows are stored shuffled, which is what lets the diagnostic slice
disjoint subsamples without an extra permutation (§5.3.1, footnote 10).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.engine.table import Table
from repro.errors import CatalogError
from repro.obs.trace import trace_span
from repro.sampling.simple import simple_random_sample

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SampleInfo:
    """Metadata for one stored sample.

    Attributes:
        name: sample name, unique per base table.
        table_name: the base table this sample was drawn from.
        rows: number of rows in the sample.
        dataset_rows: number of rows in the base table at creation time.
        cached_fraction: fraction of this sample resident in the simulated
            RAM cache (used by the cluster cost model; 1.0 = fully cached).
    """

    name: str
    table_name: str
    rows: int
    dataset_rows: int
    cached_fraction: float = 1.0

    @property
    def scale_factor(self) -> float:
        """``|D| / |S|`` — the factor extensive aggregates are scaled by."""
        return self.dataset_rows / self.rows

    @property
    def sampling_fraction(self) -> float:
        return self.rows / self.dataset_rows


@dataclass
class _TableEntry:
    table: Table
    samples: dict[str, tuple[SampleInfo, Table]] = field(default_factory=dict)


class SampleCatalog:
    """Owns base tables and their precomputed uniform samples."""

    def __init__(self, seed: int | None = None):
        self._entries: dict[str, _TableEntry] = {}
        self._rng = np.random.default_rng(seed)

    # -- base tables ---------------------------------------------------------
    def register_table(self, name: str, table: Table) -> None:
        """Register (or replace) a base table under ``name``."""
        self._entries[name] = _TableEntry(table=table)

    def table(self, name: str) -> Table:
        entry = self._entries.get(name)
        if entry is None:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._entries)}"
            )
        return entry.table

    def table_names(self) -> list[str]:
        return sorted(self._entries)

    def has_table(self, name: str) -> bool:
        return name in self._entries

    # -- samples ----------------------------------------------------------------
    def create_sample(
        self,
        table_name: str,
        size: int | None = None,
        fraction: float | None = None,
        name: str | None = None,
        replacement: bool = False,
        cached_fraction: float = 1.0,
    ) -> SampleInfo:
        """Draw, shuffle, and store a uniform sample of a base table.

        Args:
            table_name: base table to sample.
            size, fraction: sample size (exactly one must be given).
            name: sample name; defaults to ``"<table>_sample_<rows>"``.
            replacement: with-replacement sampling when true.
            cached_fraction: fraction assumed RAM-resident by the cluster
                cost model.
        """
        entry = self._entries.get(table_name)
        if entry is None:
            raise CatalogError(f"unknown table {table_name!r}")
        with trace_span("create_sample", table=table_name):
            sample = simple_random_sample(
                entry.table,
                size=size,
                fraction=fraction,
                rng=self._rng,
                replacement=replacement,
            )
            # Shuffling here is what makes "any subset is a random
            # sample" true downstream (diagnostic subsampling,
            # partition-level execution).
            sample = sample.shuffle(self._rng)
        if name is None:
            name = f"{table_name}_sample_{sample.num_rows}"
        info = SampleInfo(
            name=name,
            table_name=table_name,
            rows=sample.num_rows,
            dataset_rows=entry.table.num_rows,
            cached_fraction=cached_fraction,
        )
        entry.samples[name] = (info, sample)
        logger.info(
            "created sample %r: %d of %d rows of table %r",
            name,
            sample.num_rows,
            entry.table.num_rows,
            table_name,
        )
        return info

    def sample(self, table_name: str, sample_name: str) -> tuple[SampleInfo, Table]:
        entry = self._entries.get(table_name)
        if entry is None:
            raise CatalogError(f"unknown table {table_name!r}")
        stored = entry.samples.get(sample_name)
        if stored is None:
            raise CatalogError(
                f"table {table_name!r} has no sample {sample_name!r}; "
                f"available: {sorted(entry.samples)}"
            )
        return stored

    def samples_for(self, table_name: str) -> list[SampleInfo]:
        entry = self._entries.get(table_name)
        if entry is None:
            raise CatalogError(f"unknown table {table_name!r}")
        return [info for info, __ in entry.samples.values()]

    def select_sample(
        self, table_name: str, max_rows: int | None = None
    ) -> tuple[SampleInfo, Table]:
        """Pick the best sample for a query: the largest within budget.

        Larger samples give tighter error bars, so within the caller's row
        budget (a proxy for its response-time constraint) the largest
        available sample is best.  With no budget, returns the largest
        sample outright.

        Raises:
            CatalogError: if the table has no samples, or none fit.
        """
        entry = self._entries.get(table_name)
        if entry is None:
            raise CatalogError(f"unknown table {table_name!r}")
        if not entry.samples:
            raise CatalogError(
                f"table {table_name!r} has no samples; call create_sample first"
            )
        candidates = sorted(
            entry.samples.values(), key=lambda pair: pair[0].rows
        )
        if max_rows is not None:
            fitting = [pair for pair in candidates if pair[0].rows <= max_rows]
            if not fitting:
                raise CatalogError(
                    f"no sample of {table_name!r} fits within {max_rows} rows; "
                    f"smallest is {candidates[0][0].rows}"
                )
            return fitting[-1]
        return candidates[-1]
