"""Stratified sampling (the BlinkDB sample-collection substrate).

BlinkDB's "carefully chosen collection of samples" includes samples
stratified on filter columns, so that rare groups — which a uniform
sample would nearly miss — are guaranteed representation.  This module
implements cap-based stratified sampling: every distinct value of the
stratification column keeps up to ``cap`` rows (all of them when the
group is smaller).

Because strata are sampled at different rates, per-row scale factors
(``1 / sampling_rate`` of the row's stratum) are attached so that
extensive aggregates (SUM/COUNT) remain unbiased via Horvitz–Thompson
weighting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplingError

#: Name of the per-row scale-factor column attached to stratified samples.
SCALE_COLUMN = "_stratum_scale"


@dataclass(frozen=True)
class StratifiedSampleInfo:
    """Metadata for a stratified sample.

    Attributes:
        column: the stratification column.
        cap: per-stratum row cap.
        num_strata: distinct values seen.
        rows: total sample rows.
        dataset_rows: base-table rows at creation time.
    """

    column: str
    cap: int
    num_strata: int
    rows: int
    dataset_rows: int


def stratified_sample(
    dataset: Table,
    column: str,
    cap: int,
    rng: np.random.Generator | None = None,
) -> tuple[Table, StratifiedSampleInfo]:
    """Draw a cap-per-stratum stratified sample of ``dataset``.

    Args:
        dataset: the base table.
        column: column whose distinct values define strata.
        cap: maximum rows kept per stratum.
        rng: randomness source.

    Returns:
        ``(sample, info)``; the sample carries a ``_stratum_scale``
        column with each row's inverse sampling rate.
    """
    if cap <= 0:
        raise SamplingError(f"cap must be positive, got {cap}")
    rng = rng or np.random.default_rng()
    keys = dataset.column(column)
    unique_keys, inverse = np.unique(keys, return_inverse=True)

    kept_indices: list[np.ndarray] = []
    scales: list[np.ndarray] = []
    for stratum in range(len(unique_keys)):
        members = np.flatnonzero(inverse == stratum)
        if len(members) <= cap:
            chosen = members
            rate = 1.0
        else:
            chosen = rng.choice(members, size=cap, replace=False)
            rate = cap / len(members)
        kept_indices.append(chosen)
        scales.append(np.full(len(chosen), 1.0 / rate))

    order = np.concatenate(kept_indices)
    sample = dataset.take(order).with_column(
        SCALE_COLUMN, np.concatenate(scales)
    )
    # Shuffle so any prefix/partition is representative, like the
    # catalog's uniform samples.
    permutation = rng.permutation(sample.num_rows)
    sample = sample.take(permutation)
    info = StratifiedSampleInfo(
        column=column,
        cap=cap,
        num_strata=len(unique_keys),
        rows=sample.num_rows,
        dataset_rows=dataset.num_rows,
    )
    return sample, info


def stratified_estimate_sum(sample: Table, value_column: str) -> float:
    """Horvitz–Thompson estimate of the full-data SUM from a stratified
    sample: each row's value weighted by its inverse sampling rate."""
    values = sample.column(value_column).astype(np.float64)
    scales = sample.column(SCALE_COLUMN)
    return float((values * scales).sum())


def stratified_estimate_count(
    sample: Table, mask: np.ndarray | None = None
) -> float:
    """Horvitz–Thompson estimate of a full-data COUNT."""
    scales = sample.column(SCALE_COLUMN)
    if mask is not None:
        scales = scales[mask]
    return float(scales.sum())


def stratified_group_presence(sample: Table, column: str) -> int:
    """Number of distinct strata present — the guarantee uniform
    sampling cannot give for rare groups."""
    return len(np.unique(sample.column(column)))
