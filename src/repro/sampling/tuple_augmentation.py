"""Exact with-replacement resampling (the Tuple-Augmentation baseline).

Pol & Jermaine's Tuple Augmentation (TA) algorithm produces resamples
whose sizes are *exactly* ``|S|`` by drawing coupled per-row counts from
a multinomial distribution, then materialising each tuple the prescribed
number of times.  The paper reports that this exactness costs 8–9× the
runtime of the un-bootstrapped query and substantial memory (§5.1) —
Poissonization exists to remove that cost.

We keep TA as the comparison baseline for
``benchmarks/bench_resampling_methods.py``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplingError


def exact_resample_counts(
    num_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Coupled per-row resample counts summing to exactly ``num_rows``.

    Drawing ``Multinomial(n, uniform)`` is the count representation of an
    exact size-``n`` with-replacement resample.
    """
    if num_rows < 0:
        raise SamplingError(f"num_rows must be non-negative, got {num_rows}")
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64)
    probabilities = np.full(num_rows, 1.0 / num_rows)
    return rng.multinomial(num_rows, probabilities).astype(np.int64)


def materialize_exact_resample(
    sample: Table, rng: np.random.Generator
) -> Table:
    """Materialise one exact with-replacement resample of ``sample``.

    This performs the tuple duplication step of TA: every row is copied
    according to its multinomial count, producing a table of exactly
    ``sample.num_rows`` rows.
    """
    counts = exact_resample_counts(sample.num_rows, rng)
    indices = np.repeat(np.arange(sample.num_rows), counts)
    return sample.take(indices)


class TupleAugmentationResampler:
    """Generator of exact resamples, mimicking the TA execution pattern.

    Unlike :class:`~repro.sampling.poisson.PoissonizedResampler`, the
    count vector for each resample must be drawn *jointly* over all rows
    (the multinomial coupling), so resamples cannot be produced from
    independent row-local randomness and each one costs O(n) memory up
    front.  The class exposes both the count representation (for weighted
    aggregates, the fair comparison) and materialised tables (the
    classical TA behaviour).
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def count_vectors(self, num_rows: int, num_resamples: int) -> Iterator[np.ndarray]:
        """Yield ``num_resamples`` coupled count vectors of length ``num_rows``."""
        if num_resamples <= 0:
            raise SamplingError(
                f"num_resamples must be positive, got {num_resamples}"
            )
        for __ in range(num_resamples):
            yield exact_resample_counts(num_rows, self._rng)

    def count_matrix(self, num_rows: int, num_resamples: int) -> np.ndarray:
        """Materialise all count vectors as an ``(n, K)`` matrix."""
        return np.stack(
            list(self.count_vectors(num_rows, num_resamples)), axis=1
        )

    def materialized_resamples(
        self, sample: Table, num_resamples: int
    ) -> Iterator[Table]:
        """Yield ``num_resamples`` fully materialised resample tables."""
        if num_resamples <= 0:
            raise SamplingError(
                f"num_resamples must be positive, got {num_resamples}"
            )
        for __ in range(num_resamples):
            yield materialize_exact_resample(sample, self._rng)
