"""Poissonized resampling (§5.1).

The bootstrap needs *K* resamples of size ``n`` drawn with replacement
from the sample ``S``.  Materialising exact resamples couples the per-row
counts through a multinomial constraint (their sum must be exactly ``n``),
which costs O(n) memory per resample and serialises the computation.

Poissonization drops the constraint: each row independently receives a
``Poisson(1)`` count per resample.  The resample size then concentrates
sharply around ``n`` (``Normal(n, sqrt(n))``), and the statistical error
introduced is negligible for moderate ``n`` — the paper quotes
``P(size in [9500, 10500]) ≈ 0.9999994`` for ``n = 10000``.  In exchange,
weight generation is streaming, embarrassingly parallel, and memory-free
when pipelined into weighted aggregates.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplingError

#: Default ceiling on the bytes a single materialised weight matrix may
#: occupy.  Poisson(1) counts comfortably fit ``int32`` (overflow would
#: need a count of 2³¹ in one cell), so the audit standardised every
#: weight-matrix default on ``int32`` — half the footprint of the old
#: ``int64`` default — and this guard turns a would-be NumPy OOM into a
#: diagnosable :class:`~repro.errors.SamplingError`.  Override per call
#: with ``max_bytes`` or globally via ``REPRO_WEIGHT_MATRIX_BUDGET``
#: (bytes).
DEFAULT_WEIGHT_MATRIX_BUDGET = 2 * 1024**3

WEIGHT_BUDGET_ENV = "REPRO_WEIGHT_MATRIX_BUDGET"


def weight_matrix_budget() -> int:
    """The active weight-matrix byte budget (env override or default)."""
    raw = os.environ.get(WEIGHT_BUDGET_ENV, "").strip()
    return int(raw) if raw else DEFAULT_WEIGHT_MATRIX_BUDGET


def _check_weight_budget(
    num_rows: int,
    num_resamples: int,
    dtype: np.dtype | type,
    max_bytes: int | None,
) -> None:
    # Per-matrix defence in depth.  The process-wide generalisation of
    # this guard is :class:`repro.governor.memory.MemoryAccountant`,
    # which reserves a whole operation's footprint (all matrices,
    # shared segments, result buffers) against one shared budget before
    # anything is allocated; this local check stays as a backstop for
    # direct callers and deliberately keeps raising
    # :class:`~repro.errors.SamplingError` (its long-standing contract).
    budget = weight_matrix_budget() if max_bytes is None else max_bytes
    required = num_rows * num_resamples * np.dtype(dtype).itemsize
    if required > budget:
        raise SamplingError(
            f"weight matrix of {num_rows} rows × {num_resamples} resamples "
            f"({np.dtype(dtype).name}) needs {required:,} bytes, exceeding "
            f"the {budget:,}-byte budget; stream it in blocks "
            f"(PoissonizedResampler), lower K, or raise the budget via "
            f"{WEIGHT_BUDGET_ENV} or max_bytes"
        )


def poisson_weights(
    num_rows: int,
    rng: np.random.Generator,
    rate: float = 1.0,
    dtype: np.dtype | type = np.int32,
) -> np.ndarray:
    """One vector of independent ``Poisson(rate)`` resampling weights.

    Args:
        num_rows: number of sample rows.
        rng: random generator.
        rate: Poisson rate; 1.0 reproduces the ordinary bootstrap.
            (The paper's SQL surface expresses this as the rate × 100,
            e.g. ``TABLESAMPLE POISSONIZED (100)``.)
        dtype: output dtype; small integer types cut the memory cost of
            large weight matrices.
    """
    if num_rows < 0:
        raise SamplingError(f"num_rows must be non-negative, got {num_rows}")
    if rate <= 0:
        raise SamplingError(f"Poisson rate must be positive, got {rate}")
    return rng.poisson(rate, size=num_rows).astype(dtype, copy=False)


def poisson_weight_matrix(
    num_rows: int,
    num_resamples: int,
    rng: np.random.Generator,
    rate: float = 1.0,
    dtype: np.dtype | type = np.int32,
    max_bytes: int | None = None,
) -> np.ndarray:
    """A ``(num_rows, num_resamples)`` matrix of independent Poisson weights.

    This is the consolidated-scan representation (§5.3.1): one column per
    resample, generated in a single pass and fed to weighted aggregates.

    Raises:
        SamplingError: when the materialised matrix would exceed the
            byte budget (``max_bytes``, or the
            ``REPRO_WEIGHT_MATRIX_BUDGET`` env default) — a clear error
            instead of a NumPy out-of-memory crash.
    """
    if num_resamples <= 0:
        raise SamplingError(
            f"num_resamples must be positive, got {num_resamples}"
        )
    if num_rows < 0:
        raise SamplingError(f"num_rows must be non-negative, got {num_rows}")
    if rate <= 0:
        raise SamplingError(f"Poisson rate must be positive, got {rate}")
    _check_weight_budget(num_rows, num_resamples, dtype, max_bytes)
    return rng.poisson(rate, size=(num_rows, num_resamples)).astype(
        dtype, copy=False
    )


def chunked_poisson_weight_matrices(
    num_rows: int,
    chunk_resamples: Sequence[int],
    streams: Sequence[np.random.SeedSequence | np.random.Generator],
    rate: float = 1.0,
    dtype: np.dtype | type = np.int32,
    max_bytes: int | None = None,
) -> Iterator[np.ndarray]:
    """Column-chunked weight matrices, one independent RNG stream each.

    This is the §5.1 "streaming, embarrassingly parallel" form made
    reproducible: chunk ``i`` of ``chunk_resamples[i]`` resample columns
    is generated from ``streams[i]`` regardless of which process runs
    it, so a fanned-out bootstrap sees exactly the weights a serial one
    would.
    """
    if len(chunk_resamples) != len(streams):
        raise SamplingError(
            f"{len(chunk_resamples)} chunks but {len(streams)} RNG streams"
        )
    for count, stream in zip(chunk_resamples, streams):
        rng = (
            stream
            if isinstance(stream, np.random.Generator)
            else np.random.default_rng(stream)
        )
        yield poisson_weight_matrix(
            num_rows, count, rng, rate, dtype, max_bytes
        )


def chunked_weight_streams(
    num_rows: int,
    chunk_resamples: Sequence[int],
    streams: Sequence[np.random.SeedSequence | np.random.Generator],
    rate: float = 1.0,
    dtype: np.dtype | type = np.int32,
    max_bytes: int | None = None,
) -> Iterator[tuple[np.ndarray, np.random.Generator]]:
    """Column-chunked weight matrices *with* their continuing RNG streams.

    Like :func:`chunked_poisson_weight_matrices`, but each yielded pair
    also exposes the chunk's generator positioned immediately after the
    matrix draw.  The grouped-bootstrap kernel needs this: extensive
    aggregates draw one unmatched-weight total per resample column from
    the *same* stream that produced the column's weights, so chunk ``i``
    consumes stream ``i`` identically whether it runs inline or on any
    worker — the invariant behind bit-identical results at any worker
    count.
    """
    if len(chunk_resamples) != len(streams):
        raise SamplingError(
            f"{len(chunk_resamples)} chunks but {len(streams)} RNG streams"
        )
    for count, stream in zip(chunk_resamples, streams):
        rng = (
            stream
            if isinstance(stream, np.random.Generator)
            else np.random.default_rng(stream)
        )
        yield (
            poisson_weight_matrix(num_rows, count, rng, rate, dtype, max_bytes),
            rng,
        )


def materialize_poisson_resample(
    sample: Table, rng: np.random.Generator, rate: float = 1.0
) -> Table:
    """Materialise one Poissonized resample as an actual table.

    Only used where a downstream operator cannot consume weights (e.g. a
    truly black-box per-table UDF); the weighted path is always preferred.
    """
    weights = poisson_weights(sample.num_rows, rng, rate)
    indices = np.repeat(np.arange(sample.num_rows), weights)
    return sample.take(indices)


class PoissonizedResampler:
    """Streaming generator of Poissonized weight blocks.

    Mirrors the paper's operator: the sample streams through in blocks
    and each block is augmented with ``num_resamples`` weight columns.
    Keeping block size bounded caps peak memory at
    ``block_rows × num_resamples`` integers regardless of ``|S|``.

    Args:
        num_resamples: number of weight columns per block (the K of the
            bootstrap, or a diagnostic weight-group size).
        rng: random generator.
        rate: Poisson rate (1.0 for the ordinary bootstrap).
        block_rows: rows per streamed block.
        dtype: weight dtype.
    """

    def __init__(
        self,
        num_resamples: int,
        rng: np.random.Generator,
        rate: float = 1.0,
        block_rows: int = 65536,
        dtype: np.dtype | type = np.int32,
    ):
        if num_resamples <= 0:
            raise SamplingError(
                f"num_resamples must be positive, got {num_resamples}"
            )
        if block_rows <= 0:
            raise SamplingError(f"block_rows must be positive, got {block_rows}")
        self.num_resamples = num_resamples
        self.rate = rate
        self.block_rows = block_rows
        self._rng = rng
        self._dtype = dtype

    def weight_blocks(self, num_rows: int) -> Iterator[np.ndarray]:
        """Yield ``(block, num_resamples)`` weight matrices covering ``num_rows``."""
        produced = 0
        while produced < num_rows:
            block = min(self.block_rows, num_rows - produced)
            yield poisson_weight_matrix(
                block, self.num_resamples, self._rng, self.rate, self._dtype
            )
            produced += block

    def full_matrix(self, num_rows: int) -> np.ndarray:
        """Materialise the full weight matrix (concatenated blocks)."""
        _check_weight_budget(num_rows, self.num_resamples, self._dtype, None)
        blocks = list(self.weight_blocks(num_rows))
        if not blocks:
            return np.zeros((0, self.num_resamples), dtype=self._dtype)
        return np.concatenate(blocks, axis=0)
