"""Poissonized resampling (§5.1).

The bootstrap needs *K* resamples of size ``n`` drawn with replacement
from the sample ``S``.  Materialising exact resamples couples the per-row
counts through a multinomial constraint (their sum must be exactly ``n``),
which costs O(n) memory per resample and serialises the computation.

Poissonization drops the constraint: each row independently receives a
``Poisson(1)`` count per resample.  The resample size then concentrates
sharply around ``n`` (``Normal(n, sqrt(n))``), and the statistical error
introduced is negligible for moderate ``n`` — the paper quotes
``P(size in [9500, 10500]) ≈ 0.9999994`` for ``n = 10000``.  In exchange,
weight generation is streaming, embarrassingly parallel, and memory-free
when pipelined into weighted aggregates.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.engine.table import Table
from repro.errors import SamplingError


def poisson_weights(
    num_rows: int,
    rng: np.random.Generator,
    rate: float = 1.0,
    dtype: np.dtype | type = np.int64,
) -> np.ndarray:
    """One vector of independent ``Poisson(rate)`` resampling weights.

    Args:
        num_rows: number of sample rows.
        rng: random generator.
        rate: Poisson rate; 1.0 reproduces the ordinary bootstrap.
            (The paper's SQL surface expresses this as the rate × 100,
            e.g. ``TABLESAMPLE POISSONIZED (100)``.)
        dtype: output dtype; small integer types cut the memory cost of
            large weight matrices.
    """
    if num_rows < 0:
        raise SamplingError(f"num_rows must be non-negative, got {num_rows}")
    if rate <= 0:
        raise SamplingError(f"Poisson rate must be positive, got {rate}")
    return rng.poisson(rate, size=num_rows).astype(dtype, copy=False)


def poisson_weight_matrix(
    num_rows: int,
    num_resamples: int,
    rng: np.random.Generator,
    rate: float = 1.0,
    dtype: np.dtype | type = np.int64,
) -> np.ndarray:
    """A ``(num_rows, num_resamples)`` matrix of independent Poisson weights.

    This is the consolidated-scan representation (§5.3.1): one column per
    resample, generated in a single pass and fed to weighted aggregates.
    """
    if num_resamples <= 0:
        raise SamplingError(
            f"num_resamples must be positive, got {num_resamples}"
        )
    if num_rows < 0:
        raise SamplingError(f"num_rows must be non-negative, got {num_rows}")
    if rate <= 0:
        raise SamplingError(f"Poisson rate must be positive, got {rate}")
    return rng.poisson(rate, size=(num_rows, num_resamples)).astype(
        dtype, copy=False
    )


def materialize_poisson_resample(
    sample: Table, rng: np.random.Generator, rate: float = 1.0
) -> Table:
    """Materialise one Poissonized resample as an actual table.

    Only used where a downstream operator cannot consume weights (e.g. a
    truly black-box per-table UDF); the weighted path is always preferred.
    """
    weights = poisson_weights(sample.num_rows, rng, rate)
    indices = np.repeat(np.arange(sample.num_rows), weights)
    return sample.take(indices)


class PoissonizedResampler:
    """Streaming generator of Poissonized weight blocks.

    Mirrors the paper's operator: the sample streams through in blocks
    and each block is augmented with ``num_resamples`` weight columns.
    Keeping block size bounded caps peak memory at
    ``block_rows × num_resamples`` integers regardless of ``|S|``.

    Args:
        num_resamples: number of weight columns per block (the K of the
            bootstrap, or a diagnostic weight-group size).
        rng: random generator.
        rate: Poisson rate (1.0 for the ordinary bootstrap).
        block_rows: rows per streamed block.
        dtype: weight dtype.
    """

    def __init__(
        self,
        num_resamples: int,
        rng: np.random.Generator,
        rate: float = 1.0,
        block_rows: int = 65536,
        dtype: np.dtype | type = np.int32,
    ):
        if num_resamples <= 0:
            raise SamplingError(
                f"num_resamples must be positive, got {num_resamples}"
            )
        if block_rows <= 0:
            raise SamplingError(f"block_rows must be positive, got {block_rows}")
        self.num_resamples = num_resamples
        self.rate = rate
        self.block_rows = block_rows
        self._rng = rng
        self._dtype = dtype

    def weight_blocks(self, num_rows: int) -> Iterator[np.ndarray]:
        """Yield ``(block, num_resamples)`` weight matrices covering ``num_rows``."""
        produced = 0
        while produced < num_rows:
            block = min(self.block_rows, num_rows - produced)
            yield poisson_weight_matrix(
                block, self.num_resamples, self._rng, self.rate, self._dtype
            )
            produced += block

    def full_matrix(self, num_rows: int) -> np.ndarray:
        """Materialise the full weight matrix (concatenated blocks)."""
        blocks = list(self.weight_blocks(num_rows))
        if not blocks:
            return np.zeros((0, self.num_resamples), dtype=self._dtype)
        return np.concatenate(blocks, axis=0)
