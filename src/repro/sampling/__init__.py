"""Sampling and resampling: the data-reduction substrate of S-AQP.

Implements the paper's sampling stack:

* simple random sampling for building samples from the full dataset
  (:mod:`repro.sampling.simple`);
* **Poissonized resampling** (§5.1), the streaming, decoupled resampling
  scheme that makes the bootstrap and the diagnostic single-pass
  (:mod:`repro.sampling.poisson`);
* the exact Tuple-Augmentation baseline of Pol & Jermaine, kept as the
  comparator the paper cites as 8–9× slower
  (:mod:`repro.sampling.tuple_augmentation`);
* disjoint subsample partitioning for the diagnostic
  (:mod:`repro.sampling.subsample`);
* a BlinkDB-style sample catalog (:mod:`repro.sampling.catalog`).
"""

from repro.sampling.simple import simple_random_sample
from repro.sampling.poisson import (
    poisson_weights,
    poisson_weight_matrix,
    materialize_poisson_resample,
    PoissonizedResampler,
)
from repro.sampling.tuple_augmentation import (
    exact_resample_counts,
    materialize_exact_resample,
    TupleAugmentationResampler,
)
from repro.sampling.subsample import disjoint_subsamples, subsample_index_blocks
from repro.sampling.catalog import SampleCatalog, SampleInfo
from repro.sampling.stratified import (
    SCALE_COLUMN,
    StratifiedSampleInfo,
    stratified_estimate_count,
    stratified_estimate_sum,
    stratified_group_presence,
    stratified_sample,
)

__all__ = [
    "simple_random_sample",
    "poisson_weights",
    "poisson_weight_matrix",
    "materialize_poisson_resample",
    "PoissonizedResampler",
    "exact_resample_counts",
    "materialize_exact_resample",
    "TupleAugmentationResampler",
    "disjoint_subsamples",
    "subsample_index_blocks",
    "SampleCatalog",
    "SampleInfo",
    "SCALE_COLUMN",
    "StratifiedSampleInfo",
    "stratified_estimate_count",
    "stratified_estimate_sum",
    "stratified_group_presence",
    "stratified_sample",
]
