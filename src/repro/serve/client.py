"""A small blocking client for the serving tier's line protocol.

:class:`ServeClient` is what the remote REPL, the benchmark drivers,
and the chaos harness speak — a thin socket wrapper that turns wire
envelopes back into the library's typed exceptions, so code written
against :class:`~repro.governor.admission.QueryGovernor` semantics
(catch :class:`~repro.errors.AdmissionRejectedError`, read
``.reason`` / ``.retry_after_seconds``) works unchanged against a
remote server.

The client is deliberately synchronous: every caller here is either a
human REPL or a closed-loop load generator thread, and a blocking
socket with a deadline is the honest model for both.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Optional

from repro.errors import AdmissionRejectedError, ProtocolError, ReproError
from repro.serve.protocol import MAX_LINE_BYTES, TERMINAL_STATES

__all__ = ["RemoteQueryError", "ServeClient"]


class RemoteQueryError(ReproError):
    """An accepted query resolved to a non-``done`` terminal state.

    Attributes:
        state: the terminal state (``error``, ``cancelled``,
            ``rejected``, ``lost``).
        payload: the full poll payload, including any typed ``reason``
            and ``retry_after_seconds``.
    """

    def __init__(self, message: str, state: str, payload: dict):
        super().__init__(message)
        self.state = state
        self.payload = payload


class ServeClient:
    """Blocking line-protocol client.

    Args:
        host / port: the server address.
        tenant: tenant name stamped on every submission.
        timeout: socket timeout for a single request/response exchange;
            long-polls extend it by their ``wait_seconds``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection --------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self._connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire --------------------------------------------------------------
    def request(
        self, message: dict, timeout: Optional[float] = None
    ) -> dict:
        """One request/response exchange; reconnects once on a dead socket."""
        payload = (
            json.dumps(message, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        for attempt in (0, 1):
            self._connect()
            try:
                self._sock.settimeout(
                    self.timeout if timeout is None else timeout
                )
                self._sock.sendall(payload)
                line = self._file.readline(MAX_LINE_BYTES + 1024)
                if not line:
                    raise ConnectionError("server closed the connection")
                break
            except (ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                f"undecodable response from server: {error}"
            ) from None
        if not isinstance(response, dict):
            raise ProtocolError("server response is not a JSON object")
        return response

    @staticmethod
    def _raise_for(response: dict) -> dict:
        """Map an ``ok: false`` envelope back to a typed exception."""
        if response.get("ok"):
            return response
        code = response.get("error", "internal")
        message = response.get("message", "request failed")
        if code == "admission_rejected":
            raise AdmissionRejectedError(
                message,
                reason=response.get("reason", "rejected"),
                retry_after_seconds=response.get("retry_after_seconds"),
            )
        raise ProtocolError(f"{code}: {message}")

    # -- operations --------------------------------------------------------
    def ping(self) -> dict:
        return self._raise_for(self.request({"op": "ping"}))

    def stats(self) -> dict:
        return self._raise_for(self.request({"op": "stats"}))

    def submit(
        self,
        sql: str,
        deadline_seconds: Optional[float] = None,
        deadline_unix: Optional[float] = None,
        **options: Any,
    ) -> str:
        """Submit ``sql``; return the server-assigned query id.

        Raises :class:`~repro.errors.AdmissionRejectedError` (with the
        server's typed reason and retry-after) when shed.
        """
        message: dict[str, Any] = {
            "op": "submit",
            "sql": sql,
            "tenant": self.tenant,
        }
        if deadline_seconds is not None:
            message["deadline_seconds"] = deadline_seconds
        if deadline_unix is not None:
            message["deadline_unix"] = deadline_unix
        message.update(options)
        return self._raise_for(self.request(message))["query_id"]

    def poll(
        self, query_id: str, wait_seconds: Optional[float] = None
    ) -> dict:
        message: dict[str, Any] = {"op": "poll", "query_id": query_id}
        timeout = None
        if wait_seconds is not None:
            message["wait_seconds"] = wait_seconds
            timeout = self.timeout + wait_seconds
        return self._raise_for(self.request(message, timeout=timeout))

    def cancel(self, query_id: str) -> dict:
        return self._raise_for(
            self.request({"op": "cancel", "query_id": query_id})
        )

    def drain(self, budget_seconds: Optional[float] = None) -> dict:
        message: dict[str, Any] = {"op": "drain"}
        if budget_seconds is not None:
            message["budget_seconds"] = budget_seconds
        return self._raise_for(self.request(message, timeout=self.timeout + (budget_seconds or 30.0)))

    def wait(
        self,
        query_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 5.0,
    ) -> dict:
        """Long-poll until ``query_id`` is terminal; return the payload."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = poll_seconds
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    raise TimeoutError(
                        f"query {query_id} still "
                        "unresolved past the client wait timeout"
                    )
            payload = self.poll(query_id, wait_seconds=max(0.05, remaining))
            if payload.get("state") in TERMINAL_STATES:
                return payload

    def run(
        self,
        sql: str,
        deadline_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        **options: Any,
    ) -> dict:
        """Submit + wait; return the result payload of a ``done`` query.

        Raises:
            AdmissionRejectedError: shed at submission, or accepted and
                then shed (queue deadline, drain) — the server's typed
                reason and retry-after ride along either way.
            RemoteQueryError: the query resolved to ``error``,
                ``cancelled``, or ``lost``.
        """
        query_id = self.submit(
            sql, deadline_seconds=deadline_seconds, **options
        )
        try:
            payload = self.wait(query_id, timeout=timeout)
        except KeyboardInterrupt:
            # The remote-REPL satellite: Ctrl-C while waiting cancels
            # the submitted query server-side (a queued entry is
            # removed without ever executing) before re-raising.
            try:
                self.cancel(query_id)
            except ReproError:
                pass
            raise
        state = payload["state"]
        if state == "done":
            return payload
        if state == "rejected":
            raise AdmissionRejectedError(
                payload.get("message", "query rejected after acceptance"),
                reason=payload.get("reason", "rejected"),
                retry_after_seconds=payload.get("retry_after_seconds"),
            )
        raise RemoteQueryError(
            payload.get("message", f"query resolved to {state!r}"),
            state=state,
            payload=payload,
        )
