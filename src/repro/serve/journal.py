"""Crash-consistent serving journal: no accepted query is ever silent.

The serving tier promises that every *accepted* query resolves to a
result, a typed rejection, or an honest cancelled/lost outcome — even
across a process crash.  The journal is how that promise survives a
restart: one JSONL line per state transition, fsynced on acceptance and
on terminal outcomes, so after a crash the next server generation can
enumerate exactly which queries were in flight and report them as
``lost`` (honest) instead of answering polls with silence or
``unknown_query`` (indistinguishable from a client typo).

Durability reuses the catalog's staging pattern
(:mod:`repro.catalog.store`): appends are fsynced in place, and
:meth:`ServingJournal.compact` rewrites the whole journal through
``staging/`` with a ``write → fsync → os.replace → dir fsync``
sequence, so a crash mid-compaction leaves either the old journal or
the new one, never a torn hybrid.  Loading tolerates a torn final line
(the one append a crash can tear) by ignoring it.

Record schema (one JSON object per line)::

    {"v": 1, "id": "...", "state": "accepted", "tenant": "...",
     "ts": <unix>, ...extra}

Terminal states mirror the protocol: ``done``, ``error``,
``cancelled``, ``rejected``, ``lost``.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.catalog.store import fsync_dir, write_durable
from repro.serve.protocol import TERMINAL_STATES

__all__ = ["ServingJournal"]

logger = logging.getLogger(__name__)

#: Journal record schema version.
JOURNAL_VERSION = 1

_JOURNAL_NAME = "serving_journal.jsonl"


class ServingJournal:
    """Append-only, fsynced, atomically compactable outcome journal.

    Args:
        directory: journal home; created if missing.  ``staging/`` is
            used for atomic compaction.
        fsync: fsync each appended record (default).  Turning this off
            trades crash-honesty for throughput — only do it in
            benchmarks measuring the difference.
        clock: wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fsync: bool = True,
        clock: Callable[[], float] = time.time,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / "staging").mkdir(exist_ok=True)
        self._fsync = fsync
        self._clock = clock
        self._path = self.directory / _JOURNAL_NAME
        self._handle = open(self._path, "ab")
        self.records_written = 0

    # -- writing -----------------------------------------------------------
    def record(self, query_id: str, state: str, **extra: Any) -> None:
        """Append one state transition; best-effort durable.

        A full disk (or any OSError) must never fail the query the
        record describes — the journal degrades to in-memory honesty
        and logs the failure once per incident.
        """
        entry = {
            "v": JOURNAL_VERSION,
            "id": query_id,
            "state": state,
            "ts": round(self._clock(), 3),
        }
        entry.update(extra)
        line = (json.dumps(entry, separators=(",", ":")) + "\n").encode()
        try:
            self._handle.write(line)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            self.records_written += 1
        except OSError as error:  # pragma: no cover - disk-full path
            logger.error("serving journal append failed: %s", error)

    # -- recovery ----------------------------------------------------------
    def recover(self) -> dict[str, dict]:
        """Fold the journal; return entries with no terminal outcome.

        Each returned value is the *latest* non-terminal record for
        that query id — what the server needs to register an honest
        ``lost`` outcome.  A torn final line (crash mid-append) is
        skipped; any other undecodable line is skipped with a warning
        (a corrupt journal degrades to fewer recoveries, never to a
        crash or a wrong answer).
        """
        open_entries: dict[str, dict] = {}
        try:
            raw = self._path.read_bytes()
        except OSError:
            return {}
        lines = raw.split(b"\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if index == len(lines) - 1 or (
                    index == len(lines) - 2 and not lines[-1].strip()
                ):
                    logger.warning(
                        "serving journal: torn final line ignored"
                    )
                else:
                    logger.warning(
                        "serving journal: undecodable line %d ignored",
                        index + 1,
                    )
                continue
            query_id = entry.get("id")
            state = entry.get("state")
            if not isinstance(query_id, str) or not isinstance(state, str):
                continue
            if state in TERMINAL_STATES:
                open_entries.pop(query_id, None)
            else:
                open_entries[query_id] = entry
        return open_entries

    # -- compaction --------------------------------------------------------
    def compact(self, keep: dict[str, dict] | None = None) -> None:
        """Atomically rewrite the journal to just ``keep``'s records.

        Stage → fsync → replace → dir fsync, exactly like catalog
        artifact promotion: a reader (or the next generation's
        :meth:`recover`) observes either the old journal or the new
        one.  Called after recovery (the lost outcomes are terminal —
        nothing open remains) and after a graceful drain.
        """
        keep = keep or {}
        payload = b"".join(
            (json.dumps(entry, separators=(",", ":")) + "\n").encode()
            for entry in keep.values()
        )
        staged = self.directory / "staging" / _JOURNAL_NAME
        try:
            self._handle.close()
            write_durable(staged, payload)
            os.replace(staged, self._path)
            fsync_dir(self.directory)
        except OSError as error:  # pragma: no cover - disk-full path
            logger.error("serving journal compaction failed: %s", error)
        finally:
            self._handle = open(self._path, "ab")

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover
            pass
